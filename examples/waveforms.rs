//! Dump switch-level waveforms to a VCD file: run a write/read pair on
//! the RAM, sampling the interesting nodes after every phase, and write
//! `fmossim_ram.vcd` for viewing in GTKWave or any VCD viewer.
//!
//! ```sh
//! cargo run --release --example waveforms && gtkwave fmossim_ram.vcd
//! ```

use fmossim::circuits::Ram;
use fmossim::sim::{LogicSim, Trace};
use fmossim::testgen::RamOps;

fn main() -> std::io::Result<()> {
    let ram = Ram::new(4, 4);
    let net = ram.network();
    let io = ram.io();
    let ops = RamOps::new(&ram);

    // Watch the pins, the column-0 bit lines, cell (0,0) and the read
    // path.
    let by_name = |n: &str| net.find_node(n).expect("node exists");
    let watch = vec![
        io.phi1,
        io.phi2,
        io.phi3,
        io.we,
        io.din,
        io.dout,
        ram.bit_lines()[0].0, // WBL0
        ram.bit_lines()[0].1, // RBL0
        ram.cell(0, 0),
        by_name("RBUS"),
        by_name("SENSE"),
        by_name("DSTORE"),
    ];
    let mut trace = Trace::new(net, watch);
    let mut sim = LogicSim::new(net);
    sim.settle();
    let mut t = 0u64;
    trace.sample(t, sim.state());

    for pattern in [
        ops.write(0, true),
        ops.read(0),
        ops.write(0, false),
        ops.read(0),
    ] {
        println!("pattern: {}", pattern.label);
        for phase in &pattern.phases {
            for &(n, v) in &phase.inputs {
                sim.set_input(n, v);
            }
            sim.settle();
            t += 1;
            trace.sample(t, sim.state());
        }
    }

    let vcd = trace.to_vcd("1 us");
    std::fs::write("fmossim_ram.vcd", &vcd)?;
    println!(
        "\nwrote fmossim_ram.vcd ({} samples, {} bytes) — open with GTKWave",
        trace.len(),
        vcd.len()
    );
    // Show the data-out transitions inline too.
    println!("DOUT changes: {:?}", trace.changes(io.dout));
    Ok(())
}
