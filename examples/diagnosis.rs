//! Fault diagnosis with a fault dictionary — the flip side of fault
//! simulation: given the syndrome a failing chip shows on the tester,
//! which faults could explain it?
//!
//! Builds the full-syndrome dictionary for a small RAM under the
//! marching test, then plays "tester": picks a secret fault, simulates
//! its observable misbehaviour, and asks the dictionary for candidates.
//!
//! ```sh
//! cargo run --release --example diagnosis
//! ```

use fmossim::campaign::universe_from_spec;
use fmossim::circuits::Ram;
use fmossim::concurrent::{ConcurrentConfig, FaultDictionary};
use fmossim::faults::FaultId;
use fmossim::testgen::TestSequence;

fn main() {
    let ram = Ram::new(4, 4);
    let universe = universe_from_spec(ram.network(), "stuck-nodes").expect("known spec");
    let seq = TestSequence::full(&ram);
    println!(
        "building dictionary: {} faults x {} patterns...",
        universe.len(),
        seq.len()
    );
    let dict = FaultDictionary::build(
        ram.network(),
        universe.faults(),
        seq.patterns(),
        ram.observed_outputs(),
        ConcurrentConfig::default(),
    );

    // How well does the march distinguish faults?
    let classes = dict.equivalence_classes();
    let distinguishable = classes.iter().filter(|c| c.len() == 1).count();
    let largest = classes.iter().map(Vec::len).max().unwrap_or(0);
    println!(
        "{} faults fall into {} distinguishable classes ({} singletons, largest class {})",
        universe.len(),
        classes.len(),
        distinguishable,
        largest
    );
    for class in classes.iter().filter(|c| c.len() > 1).take(4) {
        let names: Vec<String> = class
            .iter()
            .map(|&f| universe.fault(f).describe(ram.network()))
            .collect();
        println!("  indistinguishable: {}", names.join("  ==  "));
    }

    // Play tester: the "defective part" has fault #17.
    let secret = FaultId(17 % u32::try_from(universe.len()).expect("nonempty"));
    let observed = dict.signature(secret).to_vec();
    println!(
        "\nsecret fault: {} ({} syndrome entries)",
        universe.fault(secret).describe(ram.network()),
        observed.len()
    );
    let candidates = dict.diagnose(&observed);
    println!("diagnosis candidates ({}):", candidates.len());
    for c in &candidates {
        println!(
            "  {}{}",
            universe.fault(*c).describe(ram.network()),
            if *c == secret {
                "   <-- the actual fault"
            } else {
                ""
            }
        );
    }
    assert!(candidates.contains(&secret), "diagnosis must include truth");
}
