//! The paper's headline workload: concurrent fault simulation of a
//! 3-transistor dynamic RAM under a marching test.
//!
//! Reproduces the Figure-1 experiment at adjustable scale and shows the
//! head/tail structure of the run: severe control/bus faults are
//! detected quickly and dropped ("the simulation of that circuit is
//! dropped"), after which the simulator runs only a few times slower
//! than the good circuit alone even with a hundred faulty circuits
//! still in flight.
//!
//! ```sh
//! cargo run --release --example ram_fault_sim
//! ```

use fmossim::campaign::{universe_from_spec, Campaign};
use fmossim::circuits::Ram;
use fmossim::faults::{inject, FaultUniverse};
use fmossim::testgen::TestSequence;

fn main() {
    // RAM64: 8x8 single-bit 3T-DRAM array with decoders, precharged
    // bit lines and a single data output.
    let mut ram = Ram::new(8, 8);
    println!("circuit: {}", ram.stats());

    // The paper's fault classes: node stuck-at faults plus adjacent
    // bit-line bridge shorts (inserted as high-strength fault
    // transistors — no modelling capability beyond the switch level).
    let bridges: Vec<_> = ram
        .adjacent_bitline_pairs()
        .into_iter()
        .enumerate()
        .map(|(i, (x, y))| inject::insert_bridge(ram.network_mut(), x, y, &format!("bl{i}")))
        .collect();
    let universe = universe_from_spec(ram.network(), "stuck-nodes")
        .expect("known spec")
        .union(FaultUniverse::from_faults(bridges));
    println!("fault universe: {} faults", universe.len());

    // Sequence 1: control test, row march, column march, array march.
    let seq = TestSequence::full(&ram);
    println!(
        "test sequence: {} patterns ({})",
        seq.len(),
        seq.sections()
            .iter()
            .map(|s| format!("{} {}", s.len, s.name))
            .collect::<Vec<_>>()
            .join(" + ")
    );

    let campaign_report = Campaign::new(ram.network())
        .faults(universe.clone())
        .patterns(seq.patterns())
        .outputs(ram.observed_outputs())
        .run();
    let report = &campaign_report.run;

    println!(
        "\ndetected {}/{} faults ({:.1}% coverage) in {:.3} s",
        report.detected(),
        report.num_faults,
        report.coverage() * 100.0,
        report.total_seconds
    );
    let head = seq.head_len();
    println!(
        "head/tail: {:.0}% of time in the first {head} patterns (paper: 71%)",
        report.head_time_fraction(head) * 100.0
    );

    // Print the two Figure-1 curves, decimated.
    let cum = report.cumulative_detections();
    let spp = report.seconds_per_pattern();
    println!("\npattern  detected  live  sec/pattern");
    for i in (0..seq.len()).step_by(seq.len() / 20) {
        println!(
            "{:>7}  {:>8}  {:>4}  {:.6}",
            i + 1,
            cum[i],
            report.patterns[i].live_before,
            spp[i]
        );
    }

    // Undetected faults (if any) point at coverage holes — the paper's
    // conclusion: the simulator "quickly directs the designer to those
    // areas of the circuit that require further tests".
    let detected: std::collections::HashSet<_> =
        report.detections.iter().map(|d| d.fault).collect();
    let missed: Vec<String> = universe
        .iter()
        .filter(|(id, _)| !detected.contains(id))
        .map(|(_, f)| f.describe(ram.network()))
        .collect();
    if missed.is_empty() {
        println!("\nno undetected faults — the sequence fully tests the RAM");
    } else {
        println!("\nundetected faults ({}):", missed.len());
        for m in missed.iter().take(10) {
            println!("  {m}");
        }
    }
}
