//! Quickstart: build a circuit, simulate it, then fault-simulate it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fmossim::campaign::universe_from_spec;
use fmossim::campaign::Campaign;
use fmossim::concurrent::{Pattern, Phase};
use fmossim::netlist::{Drive, Logic, Network, Size, TransistorType};
use fmossim::sim::LogicSim;

fn main() {
    // 1. Describe a CMOS NAND gate at the switch level: nodes connected
    //    by bidirectional transistor switches.
    let mut net = Network::new();
    let vdd = net.add_input("Vdd", Logic::H);
    let gnd = net.add_input("Gnd", Logic::L);
    let a = net.add_input("A", Logic::L);
    let b = net.add_input("B", Logic::L);
    let out = net.add_storage("OUT", Size::S1);
    let mid = net.add_storage("MID", Size::S1);
    net.add_transistor(TransistorType::P, Drive::D2, a, vdd, out);
    net.add_transistor(TransistorType::P, Drive::D2, b, vdd, out);
    net.add_transistor(TransistorType::N, Drive::D2, a, out, mid);
    net.add_transistor(TransistorType::N, Drive::D2, b, mid, gnd);
    net.validate().expect("well-formed netlist");

    // 2. Logic-simulate the fault-free circuit.
    let mut sim = LogicSim::new(&net);
    sim.settle();
    println!("NAND truth table (switch-level):");
    for (va, vb) in [
        (Logic::L, Logic::L),
        (Logic::L, Logic::H),
        (Logic::H, Logic::L),
        (Logic::H, Logic::H),
    ] {
        sim.set_input(a, va);
        sim.set_input(b, vb);
        sim.settle();
        println!("  A={va} B={vb} -> OUT={}", sim.get(out));
    }

    // 3. Fault-simulate: every storage node stuck-at-0/1 and every
    //    transistor stuck-open/closed, as one campaign on the default
    //    (concurrent) backend. Swapping in the serial baseline or a
    //    fault-parallel pool is a one-line `.backend(..)` change — see
    //    `examples/campaign.rs`.
    let universe = universe_from_spec(&net, "all").expect("known spec");
    let patterns: Vec<Pattern> = [
        (Logic::L, Logic::L),
        (Logic::L, Logic::H),
        (Logic::H, Logic::L),
        (Logic::H, Logic::H),
    ]
    .into_iter()
    .map(|(va, vb)| Pattern::new(vec![Phase::strobe(vec![(a, va), (b, vb)])]))
    .collect();

    let report = Campaign::new(&net)
        .faults(universe.clone())
        .patterns(&patterns)
        .outputs(&[out])
        .run();
    println!(
        "\nfault simulation: {}/{} faults detected ({:.0}% coverage) in {} patterns",
        report.detected(),
        report.run.num_faults,
        report.coverage() * 100.0,
        patterns.len()
    );
    for d in report.detections() {
        println!(
            "  pattern {:>2}: {} (good {} vs faulty {})",
            d.pattern + 1,
            universe.fault(d.fault).describe(&net),
            d.good,
            d.faulty
        );
    }
}
