//! Netlist round-tripping and hand-written circuits: write the RAM64
//! benchmark to the text netlist format, read it back, and fault-
//! simulate a hand-authored nMOS circuit parsed from a string.
//!
//! ```sh
//! cargo run --release --example netlist_io
//! ```

use fmossim::campaign::{universe_from_spec, Campaign};
use fmossim::circuits::Ram;
use fmossim::concurrent::{Pattern, Phase};
use fmossim::netlist::{parse_netlist, write_netlist, Logic, NetworkStats};

const HAND_WRITTEN: &str = "\
; an nMOS set-reset latch: two cross-coupled NOR gates
input Vdd 1
input Gnd 0
input SET 0
input RESET 0
node Q
node QB
; NOR(SET, QB) -> Q        (depletion load + two pulldowns)
d Q Vdd Q strength 1
n SET Q Gnd
n QB Q Gnd
; NOR(RESET, Q) -> QB
d QB Vdd QB strength 1
n RESET QB Gnd
n Q QB Gnd
";

fn main() {
    // 1. Generate RAM64 and round-trip it through the text format.
    let ram = Ram::new(8, 8);
    let text = write_netlist(ram.network());
    println!(
        "RAM64 serialises to {} netlist lines ({} bytes)",
        text.lines().count(),
        text.len()
    );
    let back = parse_netlist(&text).expect("canonical output parses");
    assert_eq!(back.num_nodes(), ram.network().num_nodes());
    assert_eq!(back.num_transistors(), ram.network().num_transistors());
    println!("round-trip OK: {}", NetworkStats::of(&back));

    // 2. Parse a hand-written latch and fault-simulate it.
    let latch = parse_netlist(HAND_WRITTEN).expect("hand-written netlist parses");
    latch.validate().expect("well-formed");
    let set = latch.find_node("SET").expect("pin");
    let reset = latch.find_node("RESET").expect("pin");
    let q = latch.find_node("Q").expect("pin");

    // Exercise set, hold, reset, hold.
    let patterns = vec![
        Pattern::labelled(vec![Phase::strobe(vec![(set, Logic::H)])], "set"),
        Pattern::labelled(vec![Phase::strobe(vec![(set, Logic::L)])], "hold 1"),
        Pattern::labelled(vec![Phase::strobe(vec![(reset, Logic::H)])], "reset"),
        Pattern::labelled(vec![Phase::strobe(vec![(reset, Logic::L)])], "hold 0"),
    ];
    let universe = universe_from_spec(&latch, "all").expect("known spec");
    let report = Campaign::new(&latch)
        .faults(universe.clone())
        .patterns(&patterns)
        .outputs(&[q])
        .run();
    println!(
        "\nSR-latch fault simulation: {}/{} faults detected observing Q alone",
        report.detected(),
        report.run.num_faults
    );
    for d in report.detections() {
        println!(
            "  '{}' detects {}",
            patterns[d.pattern].label,
            universe.fault(d.fault).describe(&latch)
        );
    }
}
