//! One campaign, three execution strategies — the paper's comparison
//! as a single API.
//!
//! Builds the paper's RAM workload once, then runs it through the
//! serial baseline, the concurrent algorithm, and a fault-parallel
//! worker pool by swapping one `backend(..)` line; streams progress
//! events from the concurrent run; shows run control
//! (`stop_at_coverage`) cutting a campaign short; and round-trips the
//! JSON report artifact.
//!
//! ```sh
//! cargo run --release --example campaign
//! ```

use fmossim::campaign::{
    Backend, Campaign, CampaignReport, ConcurrentConfig, ParallelConfig, SerialConfig, SimEvent,
};
use fmossim::circuits::Ram;
use fmossim::faults::FaultUniverse;
use fmossim::testgen::TestSequence;

fn main() {
    let ram = Ram::new(8, 8);
    let universe = FaultUniverse::stuck_nodes(ram.network());
    let seq = TestSequence::full(&ram);
    println!(
        "workload: {} ({} faults, {} patterns)\n",
        ram.stats(),
        universe.len(),
        seq.len()
    );

    // The campaign setup is written once; only the backend varies.
    let campaign = || {
        Campaign::new(ram.network())
            .faults(universe.clone())
            .patterns(seq.patterns())
            .outputs(ram.observed_outputs())
    };

    println!("backend        detected  coverage   wall");
    let mut reports = Vec::new();
    for backend in [
        Backend::Serial(SerialConfig::paper()),
        Backend::Concurrent(ConcurrentConfig::paper()),
        // Jobs::Auto under the hood: pool sized from the workload.
        Backend::Parallel(ParallelConfig::auto()),
    ] {
        let report = campaign().backend(backend).run();
        println!(
            "{:<14} {:>8}  {:>7.1}%  {:>6.3}s",
            report.backend,
            report.detected(),
            report.coverage() * 100.0,
            report.wall_seconds
        );
        reports.push(report);
    }
    assert!(
        reports
            .windows(2)
            .all(|w| w[0].detected() == w[1].detected()),
        "every backend grades the same workload to the same verdicts"
    );

    // Streaming observer: watch the expensive head of the sequence
    // drain the live-fault population (the paper's Figure 1 shape).
    println!("\nconcurrent run, live faults at selected patterns:");
    let mut last_live = universe.len();
    let report = campaign()
        .backend(Backend::Concurrent(ConcurrentConfig::paper()))
        .on_event(|e| {
            if let SimEvent::PatternStart { pattern, live } = e {
                if live < last_live && pattern % 20 == 0 {
                    println!("  pattern {pattern:>3}: {live:>3} live");
                    last_live = live;
                }
            }
        })
        .run();
    println!("  final: {} detected", report.detected());

    // Run control: stop once 90% coverage is reached instead of
    // grading the tail of the sequence.
    let early = campaign()
        .backend(Backend::Concurrent(ConcurrentConfig::paper()))
        .stop_at_coverage(0.9)
        .run();
    println!(
        "\nstop_at_coverage(0.9): {:.1}% after {} of {} patterns ({:?})",
        early.coverage() * 100.0,
        early.run.patterns.len(),
        seq.len(),
        early.stop
    );

    // The report is one stable JSON artifact for every backend.
    let json = early.to_json();
    let back = CampaignReport::from_json(&json).expect("round-trips");
    assert_eq!(early, back);
    println!(
        "JSON artifact round-trips ({} bytes); detections survive intact: {}",
        json.len(),
        back.detections().len()
    );
}
