//! The paper's test-quality lesson (Figure 2): *the shortest test
//! sequence for a set of faults may not give the shortest simulation
//! time* — and the penalty is worse for concurrent simulation than for
//! serial.
//!
//! Runs the same fault set under sequence 1 (with row/column marches,
//! 407 patterns) and sequence 2 (without, 327 patterns) and compares
//! simulation time, detection profile and the concurrent:serial ratio.
//!
//! ```sh
//! cargo run --release --example test_quality
//! ```

use fmossim::campaign::Campaign;
use fmossim::circuits::Ram;
use fmossim::concurrent::RunReport;
use fmossim::faults::{inject, FaultUniverse};
use fmossim::testgen::TestSequence;

fn summarize(name: &str, report: &RunReport, good_avg: f64) -> (f64, f64) {
    let serial_est: f64 = report
        .patterns_to_detect()
        .iter()
        .map(|&p| p as f64 * good_avg)
        .sum();
    let cum = report.cumulative_detections();
    println!("{name}:");
    println!("  patterns:            {}", report.patterns.len());
    println!(
        "  detected:            {}/{}",
        report.detected(),
        report.num_faults
    );
    println!("  detected by pat 7:   {}", cum[6]);
    println!("  detected by pat 87:  {}", cum[86.min(cum.len() - 1)]);
    println!("  concurrent time:     {:.3} s", report.total_seconds);
    println!("  serial estimate:     {serial_est:.3} s");
    println!(
        "  serial/concurrent:   {:.1}x",
        serial_est / report.total_seconds
    );
    (report.total_seconds, serial_est)
}

fn main() {
    let mut ram = Ram::new(8, 8);
    let bridges: Vec<_> = ram
        .adjacent_bitline_pairs()
        .into_iter()
        .enumerate()
        .map(|(i, (x, y))| inject::insert_bridge(ram.network_mut(), x, y, &format!("bl{i}")))
        .collect();
    let universe =
        FaultUniverse::stuck_nodes(ram.network()).union(FaultUniverse::from_faults(bridges));

    let seq1 = TestSequence::full(&ram);
    let seq2 = TestSequence::march_only(&ram);

    // A common good-circuit cost basis for the serial estimator.
    let serial = fmossim::concurrent::SerialSim::new(
        ram.network(),
        fmossim::concurrent::SerialConfig::paper(),
    );
    let good1 = serial.observe_good(seq1.patterns(), ram.observed_outputs());
    let good2 = serial.observe_good(seq2.patterns(), ram.observed_outputs());

    let concurrent = |patterns: &[fmossim::concurrent::Pattern]| {
        Campaign::new(ram.network())
            .faults(universe.clone())
            .patterns(patterns)
            .outputs(ram.observed_outputs())
            .run()
            .run
    };
    let r1 = concurrent(seq1.patterns());
    let (c1, _s1) = summarize(
        "sequence 1 (control + row/col marches + array march)",
        &r1,
        good1.avg_pattern_seconds(),
    );

    println!();
    let r2 = concurrent(seq2.patterns());
    let (c2, _s2) = summarize(
        "sequence 2 (row/col marches omitted)",
        &r2,
        good2.avg_pattern_seconds(),
    );

    println!();
    println!(
        "sequence 2 is {} patterns shorter yet takes {:.2}x the concurrent time",
        seq1.len() - seq2.len(),
        c2 / c1
    );
    println!("(the paper observed 49 min vs 21.9 min = 2.2x: faults that cause behaviour");
    println!(" very different from the good machine stay live much longer without the");
    println!(" row/column marches, so every pattern pays for them)");
}
