//! Criterion micro-benchmarks of the simulation kernels: steady-state
//! solving, settle scheduling, and good-circuit pattern throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmossim_circuits::Ram;
use fmossim_netlist::{Drive, Logic, Network, Size, TransistorType};
use fmossim_switch::{DenseState, LogicSim, Scratch};
use fmossim_testgen::TestSequence;

/// Solve one inverter vicinity — the smallest interesting group.
fn bench_solve_inverter(c: &mut Criterion) {
    let mut net = Network::new();
    let vdd = net.add_input("Vdd", Logic::H);
    let gnd = net.add_input("Gnd", Logic::L);
    let a = net.add_input("A", Logic::H);
    let out = net.add_storage("OUT", Size::S1);
    net.add_transistor(TransistorType::D, Drive::D1, out, vdd, out);
    net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
    let st = DenseState::new(&net);
    let mut scr = Scratch::new(net.num_nodes(), net.num_transistors());
    c.bench_function("solve/inverter_group", |b| {
        b.iter(|| std::hint::black_box(scr.solve_group(&st, out, false)));
    });
}

/// Solve a wide bus vicinity (one RAM column read path) — the paper's
/// "bit lines act as large global busses" hard case.
fn bench_solve_bitline(c: &mut Criterion) {
    let ram = Ram::new(8, 8);
    let net = ram.network();
    let mut sim = LogicSim::new(net);
    sim.settle();
    // Activate a read so the bit-line group is at its largest.
    let io = ram.io();
    sim.set_input(io.phi1, Logic::H);
    sim.settle();
    sim.set_input(io.phi1, Logic::L);
    sim.settle();
    sim.set_input(io.phi2, Logic::H);
    sim.settle();
    let rbl = ram.bit_lines()[0].1;
    let (state, _) = sim.into_parts();
    let mut scr = Scratch::new(net.num_nodes(), net.num_transistors());
    c.bench_function("solve/bitline_group", |b| {
        b.iter(|| std::hint::black_box(scr.solve_group(&state, rbl, false)));
    });
}

/// Full-network settle from reset (every storage node X → stable).
fn bench_initial_settle(c: &mut Criterion) {
    let ram64 = Ram::new(8, 8);
    let ram256 = Ram::new(16, 16);
    let mut g = c.benchmark_group("settle/initial");
    for (label, ram) in [("ram64", &ram64), ("ram256", &ram256)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), ram, |b, ram| {
            b.iter(|| {
                let mut sim = LogicSim::new(ram.network());
                std::hint::black_box(sim.settle())
            });
        });
    }
    g.finish();
}

/// Good-circuit throughput over the paper's sequence 1 — the paper's
/// "simulation of the good circuit alone" baseline (2.7 min for RAM64,
/// 25.3 min for RAM256 on the VAX 11/780).
fn bench_good_sequence(c: &mut Criterion) {
    let mut g = c.benchmark_group("good_sim/sequence1");
    g.sample_size(10);
    for dim in [8usize, 16] {
        let ram = Ram::new(dim, dim);
        let seq = TestSequence::full(&ram);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("ram{}", dim * dim)),
            &(&ram, &seq),
            |b, (ram, seq)| {
                b.iter(|| {
                    let mut sim = LogicSim::new(ram.network());
                    sim.settle();
                    for pattern in seq.patterns() {
                        for phase in &pattern.phases {
                            for &(n, v) in &phase.inputs {
                                sim.set_input(n, v);
                            }
                            sim.settle();
                        }
                    }
                    std::hint::black_box(sim.get(ram.io().dout))
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_solve_inverter,
    bench_solve_bitline,
    bench_initial_settle,
    bench_good_sequence
);
criterion_main!(benches);
