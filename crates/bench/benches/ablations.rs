//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **Dynamic vs. static locality** — the paper (§4) contrasts
//!   MOSSIM II's conduction-bounded vicinities against earlier
//!   simulators partitioning "only according to DC-connected
//!   components". Static locality is functionally identical but solves
//!   far larger groups.
//! * **Sorted state lists vs. hash maps** — the paper keeps per-node
//!   state lists "sorted according to the circuit ID's … to minimize
//!   the time spent searching these lists".
//! * **Fault dropping on/off** — detected circuits are dropped; without
//!   dropping, the cheap tail disappears and every pattern pays for all
//!   428 circuits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmossim_bench::{paper_universe, ram_with_bridges, SEED};
use fmossim_core::{ConcurrentConfig, ConcurrentSim, StateListStore};
use fmossim_switch::{EngineConfig, LocalityMode, LogicSim};
use fmossim_testgen::TestSequence;

fn bench_locality(c: &mut Criterion) {
    let ram = fmossim_circuits::Ram::new(8, 8);
    let seq = TestSequence::full(&ram);
    let mut g = c.benchmark_group("ablation_locality/good_sim_ram64");
    g.sample_size(10);
    for (label, mode) in [
        ("dynamic", LocalityMode::Dynamic),
        ("static", LocalityMode::Static),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| {
                let mut sim = LogicSim::with_config(
                    ram.network(),
                    EngineConfig {
                        locality: mode,
                        ..EngineConfig::default()
                    },
                );
                sim.settle();
                for pattern in seq.patterns() {
                    for phase in &pattern.phases {
                        for &(n, v) in &phase.inputs {
                            sim.set_input(n, v);
                        }
                        sim.settle();
                    }
                }
                std::hint::black_box(sim.get(ram.io().dout))
            });
        });
    }
    g.finish();
}

fn bench_statelist(c: &mut Criterion) {
    let (ram, bridges) = ram_with_bridges(8, 8);
    let universe = paper_universe(&ram, bridges).sample(428, SEED);
    let seq = TestSequence::full(&ram);
    let mut g = c.benchmark_group("ablation_statelist/ram64_428_faults");
    g.sample_size(10);
    for (label, store) in [
        ("sorted_vec", StateListStore::SortedVec),
        ("hash_map", StateListStore::Hash),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &store, |b, &store| {
            b.iter(|| {
                let mut sim = ConcurrentSim::new(
                    ram.network(),
                    universe.faults(),
                    ConcurrentConfig {
                        store,
                        ..ConcurrentConfig::paper()
                    },
                );
                std::hint::black_box(sim.run(seq.patterns(), ram.observed_outputs()).detected())
            });
        });
    }
    g.finish();
}

fn bench_dropping(c: &mut Criterion) {
    let (ram, bridges) = ram_with_bridges(8, 8);
    let universe = paper_universe(&ram, bridges).sample(428, SEED);
    let seq = TestSequence::full(&ram);
    let mut g = c.benchmark_group("ablation_dropping/ram64_428_faults");
    g.sample_size(10);
    for (label, drop) in [("drop_on_detect", true), ("keep_all", false)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &drop, |b, &drop| {
            b.iter(|| {
                let mut sim = ConcurrentSim::new(
                    ram.network(),
                    universe.faults(),
                    ConcurrentConfig {
                        drop_on_detect: drop,
                        ..ConcurrentConfig::paper()
                    },
                );
                std::hint::black_box(sim.run(seq.patterns(), ram.observed_outputs()).detected())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_locality, bench_statelist, bench_dropping);
criterion_main!(benches);
