//! Criterion benches of the paper's figure workloads (the regenerating
//! binaries in `src/bin/` print the full series; these benches time the
//! same workloads reproducibly).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmossim_bench::{paper_universe, ram_with_bridges, SEED};
use fmossim_core::{ConcurrentConfig, ConcurrentSim};
use fmossim_testgen::TestSequence;

/// Figure 1 workload: RAM64, sequence 1, 428 sampled faults.
fn bench_fig1(c: &mut Criterion) {
    let (ram, bridges) = ram_with_bridges(8, 8);
    let universe = paper_universe(&ram, bridges).sample(428, SEED);
    let seq = TestSequence::full(&ram);
    let mut g = c.benchmark_group("fig1_ram64_seq1");
    g.sample_size(10);
    g.bench_function("concurrent_428_faults", |b| {
        b.iter(|| {
            let mut sim =
                ConcurrentSim::new(ram.network(), universe.faults(), ConcurrentConfig::paper());
            std::hint::black_box(sim.run(seq.patterns(), ram.observed_outputs()).detected())
        });
    });
    g.finish();
}

/// Figure 2 workload: RAM64, sequence 2 (shorter but slower — the
/// paper's test-quality lesson shows up as a *higher* time here than
/// fig1 despite 80 fewer patterns).
fn bench_fig2(c: &mut Criterion) {
    let (ram, bridges) = ram_with_bridges(8, 8);
    let universe = paper_universe(&ram, bridges).sample(428, SEED);
    let seq = TestSequence::march_only(&ram);
    let mut g = c.benchmark_group("fig2_ram64_seq2");
    g.sample_size(10);
    g.bench_function("concurrent_428_faults", |b| {
        b.iter(|| {
            let mut sim =
                ConcurrentSim::new(ram.network(), universe.faults(), ConcurrentConfig::paper());
            std::hint::black_box(sim.run(seq.patterns(), ram.observed_outputs()).detected())
        });
    });
    g.finish();
}

/// Figure 3 workload: RAM256 concurrent time at increasing fault-sample
/// sizes (linearity in the fault count).
fn bench_fig3_sweep(c: &mut Criterion) {
    let (ram, bridges) = ram_with_bridges(16, 16);
    let universe = paper_universe(&ram, bridges);
    let seq = TestSequence::full(&ram);
    let mut g = c.benchmark_group("fig3_ram256_fault_sweep");
    g.sample_size(10);
    for frac in [4usize, 2, 1] {
        let k = universe.len() / frac;
        let sample = universe.sample(k, SEED);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{k}_faults")),
            &sample,
            |b, sample| {
                b.iter(|| {
                    let mut sim = ConcurrentSim::new(
                        ram.network(),
                        sample.faults(),
                        ConcurrentConfig::paper(),
                    );
                    std::hint::black_box(sim.run(seq.patterns(), ram.observed_outputs()).detected())
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig1, bench_fig2, bench_fig3_sweep);
criterion_main!(benches);
