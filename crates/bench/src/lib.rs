//! Shared benchmark harness for reproducing the paper's evaluation.
//!
//! Every table and figure of Bryant & Schuster (DAC 1985, §5) has a
//! regenerating binary in `src/bin/`:
//!
//! | Paper item | Binary | What it prints |
//! |------------|--------|----------------|
//! | Table 1    | `table1` | transistor state vs. gate state |
//! | Figure 1   | `fig1_ram64` | RAM64, sequence 1: cumulative detections and sec/pattern, head/tail split, concurrent vs. serial totals |
//! | Figure 2   | `fig2_ram64` | RAM64, sequence 2: the same series without the row/column marches |
//! | Figure 3   | `fig3_ram256` | RAM256: average sec/pattern vs. number of sampled faults, concurrent and serial |
//! | §5 scaling | `scaling` | RAM64 → RAM256 good/concurrent/serial scale factors |
//!
//! Criterion benches (`benches/`) cover the solver kernels, good-sim
//! throughput, figure workloads, and the three design-choice ablations
//! called out in DESIGN.md (locality, state-list backend, fault
//! dropping).
//!
//! Absolute times are host-dependent; the binaries therefore print the
//! *shape* metrics next to the paper's published values so the
//! comparison in EXPERIMENTS.md can be regenerated with one command.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fmossim_circuits::Ram;
use fmossim_core::{Pattern, RunReport};
use fmossim_faults::{Fault, FaultUniverse};

pub mod stats;

/// The random seed used everywhere (the paper's publication date).
pub const SEED: u64 = 850_715;

/// Builds a RAM with bridge-fault devices inserted on every adjacent
/// bit-line pair, returning the circuit and the bridge faults.
#[must_use]
pub fn ram_with_bridges(rows: usize, cols: usize) -> (Ram, Vec<Fault>) {
    let mut ram = Ram::new(rows, cols);
    let pairs = ram.adjacent_bitline_pairs();
    let bridges = pairs
        .into_iter()
        .enumerate()
        .map(|(i, (a, b))| {
            fmossim_faults::inject::insert_bridge(ram.network_mut(), a, b, &format!("bl{i}"))
        })
        .collect();
    (ram, bridges)
}

/// The paper's fault universe for a RAM: "single storage nodes
/// stuck-at-zero, single storage nodes stuck-at-one, and single pairs
/// of adjacent bit lines shorted together".
#[must_use]
pub fn paper_universe(ram: &Ram, bridges: Vec<Fault>) -> FaultUniverse {
    FaultUniverse::stuck_nodes(ram.network()).union(FaultUniverse::from_faults(bridges))
}

/// The paper's §5 validation universe: stuck-open and stuck-closed
/// transistors.
#[must_use]
pub fn transistor_universe(ram: &Ram) -> FaultUniverse {
    FaultUniverse::stuck_transistors(ram.network())
}

/// Prints the two curves of Figures 1/2 as CSV:
/// `pattern,seconds,cumulative_detected,live_before`.
pub fn print_figure_csv(report: &RunReport) {
    println!("pattern,seconds,cumulative_detected,live_before");
    let cum = report.cumulative_detections();
    for (i, p) in report.patterns.iter().enumerate() {
        println!("{},{:.6},{},{}", i + 1, p.seconds, cum[i], p.live_before);
    }
}

/// Sums the seconds of a pattern range.
#[must_use]
pub fn seconds_in(report: &RunReport, range: std::ops::Range<usize>) -> f64 {
    report.patterns[range].iter().map(|p| p.seconds).sum()
}

/// Formats a `measured vs. paper` comparison row.
#[must_use]
pub fn compare_row(metric: &str, ours: String, paper: &str) -> String {
    format!("{metric:<44} ours: {ours:<14} paper: {paper}")
}

/// Parses a `--flag value`-style option from `std::env::args`.
#[must_use]
pub fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// True if `--flag` is present in `std::env::args`.
#[must_use]
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Convenience: run the good circuit alone over the patterns and
/// return `(total_seconds, avg_seconds_per_pattern)`.
#[must_use]
pub fn good_only_seconds(ram: &Ram, patterns: &[Pattern]) -> (f64, f64) {
    let sim = fmossim_core::SerialSim::new(ram.network(), fmossim_core::SerialConfig::paper());
    let trace = sim.observe_good(patterns, ram.observed_outputs());
    (trace.total_seconds, trace.avg_pattern_seconds())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_universe_has_expected_classes() {
        let (ram, bridges) = ram_with_bridges(4, 4);
        let n_bridges = bridges.len();
        assert_eq!(n_bridges, 2 * 4 - 1);
        let u = paper_universe(&ram, bridges);
        // 2 faults per storage node plus the bridges.
        let storage = ram.stats().storage;
        assert_eq!(u.len(), 2 * storage + n_bridges);
    }

    #[test]
    fn transistor_universe_excludes_fault_devices() {
        let (ram, _bridges) = ram_with_bridges(4, 4);
        let u = transistor_universe(&ram);
        // Each functional transistor twice; bridge devices excluded.
        let functional = ram.stats().transistors - (2 * 4 - 1);
        assert_eq!(u.len(), 2 * functional);
    }

    #[test]
    fn helpers() {
        assert!(compare_row("x", "1".into(), "2").contains("paper: 2"));
        assert!(!arg_flag("--definitely-not-present"));
        assert_eq!(arg_value("--definitely-not-present"), None);
    }
}
