//! Shared summary statistics for the bench binaries.
//!
//! `scaling_par` and `evalsuite` summarise the same quantities — mean
//! per-batch imbalance, max/mean shard ratios, work fractions, medians
//! over repetitions — and previously each carried its own inline
//! arithmetic. One definition here keeps the two artifacts comparable.

/// Arithmetic mean; `0.0` for an empty iterator.
///
/// ```
/// use fmossim_bench::stats::mean;
///
/// assert_eq!(mean([1.0, 2.0, 6.0]), 3.0);
/// assert_eq!(mean([]), 0.0);
/// ```
#[must_use]
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// The element with the median `key` (the upper median for an even
/// count) — used to pick a representative repetition out of noisy
/// timing runs without averaging away its internal consistency.
///
/// # Panics
///
/// Panics on an empty vector.
///
/// ```
/// use fmossim_bench::stats::median_by;
///
/// let runs = vec![("a", 9.0), ("b", 1.0), ("c", 4.0)];
/// assert_eq!(median_by(runs, |r| r.1).0, "c");
/// ```
#[must_use]
pub fn median_by<T>(mut items: Vec<T>, key: impl Fn(&T) -> f64) -> T {
    assert!(!items.is_empty(), "median of an empty set");
    items.sort_by(|a, b| key(a).total_cmp(&key(b)));
    let mid = items.len() / 2;
    items.swap_remove(mid)
}

/// The load-imbalance ratio `max / mean` (`1.0` = perfectly balanced;
/// `>= 1` whenever the inputs come from the same population). A
/// non-positive mean — an empty or all-zero measurement — reports the
/// balanced `1.0` rather than dividing by zero, matching the adaptive
/// backend's per-batch telemetry convention.
///
/// ```
/// use fmossim_bench::stats::imbalance;
///
/// assert_eq!(imbalance(2.0, 1.0), 2.0);
/// assert_eq!(imbalance(0.0, 0.0), 1.0);
/// ```
#[must_use]
pub fn imbalance(max: f64, mean: f64) -> f64 {
    if mean > 0.0 {
        max / mean
    } else {
        1.0
    }
}

/// The share `part / whole`, guarded against a zero denominator and
/// clamped to `[0, 1]` — for work fractions like the good machine's
/// share of solver effort.
///
/// ```
/// use fmossim_bench::stats::fraction;
///
/// assert_eq!(fraction(1.0, 4.0), 0.25);
/// assert_eq!(fraction(0.0, 0.0), 0.0);
/// ```
#[must_use]
pub fn fraction(part: f64, whole: f64) -> f64 {
    (part / whole.max(f64::MIN_POSITIVE)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_handles_empty_and_singleton() {
        assert_eq!(mean([]), 0.0);
        assert_eq!(mean([7.5]), 7.5);
    }

    #[test]
    fn median_by_even_count_takes_upper() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(median_by(xs, |&x| x), 3.0);
    }

    #[test]
    #[should_panic(expected = "median of an empty set")]
    fn median_by_rejects_empty() {
        let _ = median_by(Vec::<f64>::new(), |&x| x);
    }

    #[test]
    fn imbalance_is_guarded() {
        assert_eq!(imbalance(3.0, 1.5), 2.0);
        assert_eq!(imbalance(0.0, -1.0), 1.0);
    }

    #[test]
    fn fraction_is_clamped() {
        assert_eq!(fraction(5.0, 4.0), 1.0);
        assert_eq!(fraction(-1.0, 4.0), 0.0);
    }
}
