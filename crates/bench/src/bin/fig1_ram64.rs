//! Regenerates **Figure 1** of the paper: RAM64, test sequence 1.
//!
//! The paper simulates RAM64 with 428 faults over 407 patterns
//! (7 control + 40 row march + 40 column march + 320 array march) and
//! reports:
//!
//! * the rising curve — cumulative faults detected per pattern;
//! * the falling curve — CPU seconds per pattern, splitting into an
//!   expensive "head" (first 87 patterns, 71% of total time) and a
//!   cheap "tail" (running ~3× the good-circuit-alone speed);
//! * totals: good alone 2.7 min; concurrent 21.9 min; serial
//!   (estimated) 404 min; concurrent/serial performance ratio 18.
//!
//! Usage: `fig1_ram64 [--faults N] [--csv] [--fault-mix] [--measure-serial]`
//!
//! `--fault-mix` adds stuck-open/closed transistor faults to the
//! sampled universe (the paper's §5 validation that their performance
//! characteristics "did not differ significantly from those of node
//! faults"). `--measure-serial` also runs the true serial simulator
//! rather than only the paper's estimator.

use fmossim_bench::{
    arg_flag, arg_value, compare_row, good_only_seconds, paper_universe, print_figure_csv,
    ram_with_bridges, seconds_in, transistor_universe, SEED,
};
use fmossim_campaign::{Backend, Campaign, SerialConfig};
use fmossim_core::ConcurrentConfig;
use fmossim_testgen::TestSequence;

fn main() {
    let n_faults: usize = arg_value("--faults")
        .map(|v| v.parse().expect("--faults takes a number"))
        .unwrap_or(428);
    let (ram, bridges) = ram_with_bridges(8, 8);
    let mut universe = paper_universe(&ram, bridges);
    if arg_flag("--fault-mix") {
        universe = universe.union(transistor_universe(&ram));
    }
    let universe = universe.sample(n_faults, SEED);
    let seq = TestSequence::full(&ram);
    eprintln!(
        "RAM64 ({}), sequence 1 ({} patterns), {} faults",
        ram.stats(),
        seq.len(),
        universe.len()
    );

    let (good_total, good_avg) = good_only_seconds(&ram, seq.patterns());
    let campaign_report = Campaign::new(ram.network())
        .faults(universe.clone())
        .patterns(seq.patterns())
        .outputs(ram.observed_outputs())
        .backend(Backend::Concurrent(ConcurrentConfig::paper()))
        .run();
    let report = &campaign_report.run;

    if arg_flag("--csv") {
        print_figure_csv(report);
    }

    let head = seq.head_len();
    let tail_patterns = report.patterns.len() - head;
    let tail_secs = seconds_in(report, head..report.patterns.len());
    let tail_per_pattern = tail_secs / tail_patterns as f64;
    let serial_est: f64 = report
        .patterns_to_detect()
        .iter()
        .map(|&p| p as f64 * good_avg)
        .sum();

    println!("== Figure 1: RAM64, test sequence 1 ==");
    println!(
        "{}",
        compare_row(
            "faults detected",
            format!("{}/{}", report.detected(), report.num_faults),
            "428/428 (fully tested)"
        )
    );
    println!(
        "{}",
        compare_row(
            "good circuit alone",
            format!("{good_total:.3} s"),
            "2.7 min"
        )
    );
    println!(
        "{}",
        compare_row(
            "concurrent fault simulation",
            format!("{:.3} s", report.total_seconds),
            "21.9 min"
        )
    );
    println!(
        "{}",
        compare_row(
            "serial (paper estimator)",
            format!("{serial_est:.3} s"),
            "404 min"
        )
    );
    println!(
        "{}",
        compare_row(
            "concurrent : good ratio",
            format!("{:.1}x", report.total_seconds / good_total),
            "8.1x"
        )
    );
    println!(
        "{}",
        compare_row(
            "serial : concurrent ratio",
            format!("{:.1}x", serial_est / report.total_seconds),
            "18x"
        )
    );
    println!(
        "{}",
        compare_row(
            &format!("time in head (first {head} patterns)"),
            format!("{:.0}%", report.head_time_fraction(head) * 100.0),
            "71%"
        )
    );
    println!(
        "{}",
        compare_row(
            "tail sec/pattern : good sec/pattern",
            format!("{:.1}x", tail_per_pattern / good_avg),
            "~3x"
        )
    );

    if arg_flag("--measure-serial") {
        let sreport = Campaign::new(ram.network())
            .faults(universe)
            .patterns(seq.patterns())
            .outputs(ram.observed_outputs())
            .backend(Backend::Serial(SerialConfig::paper()))
            .run();
        println!(
            "{}",
            compare_row(
                "serial (measured)",
                format!("{:.3} s", sreport.run.total_seconds),
                "(404 min est.)"
            )
        );
        println!(
            "{}",
            compare_row(
                "serial(measured) : concurrent ratio",
                format!("{:.1}x", sreport.run.total_seconds / report.total_seconds),
                "18x"
            )
        );
    }
}
