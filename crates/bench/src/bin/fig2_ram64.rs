//! Regenerates **Figure 2** of the paper: RAM64, test sequence 2.
//!
//! Sequence 2 omits the row and column marching tests (327 patterns).
//! "Except for the 65 faults detected during the first seven patterns,
//! all other faults are detected slowly as the marching test of the
//! memory array proceeds, including faults in the address decoding and
//! bus control logic. The time per pattern drops more slowly than
//! before" — total 49 min concurrent vs. 448 min serial, a performance
//! ratio of only 9 (vs. 18 for sequence 1), "due largely to the lack of
//! a tail end effect".
//!
//! Usage: `fig2_ram64 [--faults N] [--csv]`

use fmossim_bench::{
    arg_flag, arg_value, compare_row, good_only_seconds, paper_universe, print_figure_csv,
    ram_with_bridges, SEED,
};
use fmossim_campaign::{Backend, Campaign};
use fmossim_core::ConcurrentConfig;
use fmossim_testgen::TestSequence;

fn main() {
    let n_faults: usize = arg_value("--faults")
        .map(|v| v.parse().expect("--faults takes a number"))
        .unwrap_or(428);
    let (ram, bridges) = ram_with_bridges(8, 8);
    let universe = paper_universe(&ram, bridges).sample(n_faults, SEED);
    let seq1 = TestSequence::full(&ram);
    let seq2 = TestSequence::march_only(&ram);
    eprintln!(
        "RAM64, sequence 2 ({} patterns vs. {} in sequence 1), {} faults",
        seq2.len(),
        seq1.len(),
        universe.len()
    );

    let concurrent = |patterns: &[fmossim_core::Pattern]| {
        Campaign::new(ram.network())
            .faults(universe.clone())
            .patterns(patterns)
            .outputs(ram.observed_outputs())
            .backend(Backend::Concurrent(ConcurrentConfig::paper()))
            .run()
            .run
    };

    // Sequence 2 run.
    let (good2, good2_avg) = good_only_seconds(&ram, seq2.patterns());
    let report2 = concurrent(seq2.patterns());
    if arg_flag("--csv") {
        print_figure_csv(&report2);
    }
    let serial2: f64 = report2
        .patterns_to_detect()
        .iter()
        .map(|&p| p as f64 * good2_avg)
        .sum();

    // Sequence 1 reference (for the ratio-of-ratios comparison).
    let (_, good1_avg) = good_only_seconds(&ram, seq1.patterns());
    let report1 = concurrent(seq1.patterns());
    let serial1: f64 = report1
        .patterns_to_detect()
        .iter()
        .map(|&p| p as f64 * good1_avg)
        .sum();
    let ratio1 = serial1 / report1.total_seconds;
    let ratio2 = serial2 / report2.total_seconds;

    let cum = report2.cumulative_detections();
    println!("== Figure 2: RAM64, test sequence 2 (row/column marches omitted) ==");
    println!(
        "{}",
        compare_row("detected in first 7 patterns", format!("{}", cum[6]), "65")
    );
    println!(
        "{}",
        compare_row(
            "faults detected",
            format!("{}/{}", report2.detected(), report2.num_faults),
            "(all eventually)"
        )
    );
    println!(
        "{}",
        compare_row("good circuit alone", format!("{good2:.3} s"), "—")
    );
    println!(
        "{}",
        compare_row(
            "concurrent fault simulation",
            format!("{:.3} s", report2.total_seconds),
            "49 min (vs. 21.9 for seq 1!)"
        )
    );
    println!(
        "{}",
        compare_row(
            "serial (paper estimator)",
            format!("{serial2:.3} s"),
            "448 min"
        )
    );
    println!(
        "{}",
        compare_row(
            "serial : concurrent ratio (seq 2)",
            format!("{ratio2:.1}x"),
            "9x"
        )
    );
    println!(
        "{}",
        compare_row(
            "serial : concurrent ratio (seq 1)",
            format!("{ratio1:.1}x"),
            "18x"
        )
    );
    println!(
        "{}",
        compare_row(
            "seq-1 advantage (ratio1/ratio2)",
            format!("{:.1}x", ratio1 / ratio2),
            "2x"
        )
    );
    println!(
        "{}",
        compare_row(
            "concurrent seq2 : seq1 time",
            format!("{:.2}x", report2.total_seconds / report1.total_seconds),
            "2.2x (49/21.9) despite fewer patterns"
        )
    );
}
