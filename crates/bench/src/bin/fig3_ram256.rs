//! Regenerates **Figure 3** of the paper: RAM256, average time per
//! pattern vs. number of (randomly sampled) faults.
//!
//! The paper sweeps the fault count from 0 to all 1382 single stuck-at
//! and bus-short faults and finds both concurrent and serial simulation
//! time linear in the number of faults, with serial about 85× slower
//! (note Figure 3's serial axis is scaled 100:1). Linearity of the
//! concurrent curve shows "we pay no penalty for the overhead of
//! maintaining the node states as lists that must be searched".
//!
//! Usage: `fig3_ram256 [--steps N] [--measure-serial] [--small]`
//!
//! `--small` runs the sweep on RAM64 instead (quick check).
//! Serial times default to the paper's estimator; `--measure-serial`
//! runs the true serial simulator as well (slow: O(faults × patterns)).

use fmossim_bench::{arg_flag, arg_value, compare_row, paper_universe, ram_with_bridges, SEED};
use fmossim_campaign::{Backend, Campaign, SerialConfig};
use fmossim_core::{ConcurrentConfig, SerialSim};
use fmossim_testgen::TestSequence;

fn main() {
    let steps: usize = arg_value("--steps")
        .map(|v| v.parse().expect("--steps takes a number"))
        .unwrap_or(6);
    let (rows, cols) = if arg_flag("--small") {
        (8, 8)
    } else {
        (16, 16)
    };
    let (ram, bridges) = ram_with_bridges(rows, cols);
    let universe = paper_universe(&ram, bridges);
    let seq = TestSequence::full(&ram);
    let total = universe.len();
    eprintln!(
        "RAM{} ({}), sequence 1 ({} patterns), sweeping 0..={} faults in {} steps",
        rows * cols,
        ram.stats(),
        seq.len(),
        total,
        steps
    );

    let serial_ref = SerialSim::new(ram.network(), SerialConfig::paper());
    let good = serial_ref.observe_good(seq.patterns(), ram.observed_outputs());
    let good_avg = good.avg_pattern_seconds();
    let n_patterns = seq.len() as f64;

    println!("faults,concurrent_sec_per_pattern,serial_est_sec_per_pattern,serial_measured_sec_per_pattern,detected");
    let mut rowstats: Vec<(usize, f64, f64)> = Vec::new();
    for i in 0..=steps {
        let k = total * i / steps;
        let sample = universe.sample(k, SEED + i as u64);
        let report = Campaign::new(ram.network())
            .faults(sample.clone())
            .patterns(seq.patterns())
            .outputs(ram.observed_outputs())
            .backend(Backend::Concurrent(ConcurrentConfig::paper()))
            .run()
            .run;
        let conc_pp = report.total_seconds / n_patterns;
        let serial_est: f64 = report
            .patterns_to_detect()
            .iter()
            .map(|&p| p as f64 * good_avg)
            .sum();
        let serial_est_pp = serial_est / n_patterns;
        let measured_pp = if arg_flag("--measure-serial") {
            let sreport = Campaign::new(ram.network())
                .faults(sample)
                .patterns(seq.patterns())
                .outputs(ram.observed_outputs())
                .backend(Backend::Serial(SerialConfig::paper()))
                .run();
            format!("{:.6}", sreport.run.total_seconds / n_patterns)
        } else {
            String::from("")
        };
        println!(
            "{k},{conc_pp:.6},{serial_est_pp:.6},{measured_pp},{}",
            report.detected()
        );
        rowstats.push((k, conc_pp, serial_est_pp));
    }

    // Linearity + slope-ratio summary over the sweep (skip the 0 point).
    let (k1, c1, s1) = rowstats[1];
    let (kn, cn, sn) = *rowstats.last().expect("at least two steps");
    let conc_slope = (cn - c1) / (kn - k1) as f64;
    let serial_slope = (sn - s1) / (kn - k1) as f64;
    println!();
    println!("== Figure 3 summary ==");
    println!(
        "{}",
        compare_row(
            "serial slope : concurrent slope",
            format!("{:.0}x", serial_slope / conc_slope),
            "~85x (serial axis is 100:1 in the figure)"
        )
    );
    // Linearity check: middle point vs. linear interpolation of ends.
    let mid = rowstats[rowstats.len() / 2];
    let interp = c1 + conc_slope * (mid.0 - k1) as f64;
    println!(
        "{}",
        compare_row(
            "concurrent linearity (mid/interp)",
            format!("{:.2}", mid.1 / interp),
            "1.0 (linear)"
        )
    );
}
