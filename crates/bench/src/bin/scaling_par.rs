//! Fault-parallel scaling sweep: wall-clock speedup vs. worker count,
//! with a record/replay A/B over the good-machine tape.
//!
//! Runs the paper's RAM workload (stuck nodes + bit-line bridges over
//! the full marching sequence) through [`fmossim_par::ParallelSim`] at
//! increasing `--jobs`, and emits one JSON document with wall-clock
//! seconds, aggregate CPU seconds, speedup relative to one job, the
//! (job-count-invariant) coverage — and, per point, the *good-machine
//! fraction*: how much of the total work went into simulating the
//! fault-free circuit. With the tape (`replay on`) that fraction is one
//! record pass regardless of the shard count; without it (`replay
//! off`) every shard re-settles the good circuit, so the fraction
//! grows with K. The JSON is the artifact the ROADMAP scaling work
//! tracks over time (`BENCH_replay.json`).
//!
//! Usage:
//! `scaling_par [--dim 8] [--jobs-list 1,2,4,8] [--strategy round-robin]
//!              [--sample K] [--replay on|off|ab]`
//!
//! `--replay ab` (the default) measures both modes per point and
//! asserts their detection sets are bit-identical. Wall-clock speedup
//! saturates at the machine's hardware parallelism (reported as
//! `hardware_threads`); the good-machine fraction does not — it is a
//! work ratio, not a wall-clock ratio.

use fmossim_bench::{arg_value, paper_universe, ram_with_bridges, SEED};
use fmossim_campaign::{Backend, Campaign, CampaignReport};
use fmossim_core::{ConcurrentConfig, GoodTape};
use fmossim_par::{Jobs, ParallelConfig, ShardStrategy};
use fmossim_testgen::TestSequence;

/// One replay mode's measurements at one job count.
struct ModePoint {
    wall_seconds: f64,
    cpu_seconds: f64,
    /// Seconds of the one-time tape record pass (`None` when the tape
    /// was not used: replay off, or a single shard).
    tape_record_seconds: Option<f64>,
    /// Good-machine seconds / total work seconds for this mode.
    good_fraction: f64,
    detected: usize,
}

struct Point {
    jobs: usize,
    shards: usize,
    /// Critical path of the plan, measured uncontended (shards run
    /// back to back on one thread): the longest single shard.
    max_shard_seconds: f64,
    replay_on: Option<ModePoint>,
    replay_off: Option<ModePoint>,
    coverage: f64,
}

fn fmt_mode(p: &Option<ModePoint>) -> String {
    match p {
        None => "null".into(),
        Some(m) => format!(
            "{{\"wall_seconds\": {:.4}, \"cpu_seconds\": {:.4}, \
             \"tape_record_seconds\": {}, \"good_fraction\": {:.4}, \
             \"detected\": {}}}",
            m.wall_seconds,
            m.cpu_seconds,
            m.tape_record_seconds
                .map_or("null".into(), |s| format!("{s:.4}")),
            m.good_fraction,
            m.detected,
        ),
    }
}

fn main() {
    let dim: usize = arg_value("--dim")
        .map(|s| s.parse().expect("--dim takes a number"))
        .unwrap_or(8);
    let jobs_list: Vec<usize> = arg_value("--jobs-list")
        .unwrap_or_else(|| "1,2,4,8".into())
        .split(',')
        .map(|s| s.trim().parse().expect("--jobs-list takes numbers"))
        .collect();
    let strategy = match arg_value("--strategy") {
        None => ShardStrategy::default(),
        Some(s) => ShardStrategy::parse(&s).expect("round-robin|contiguous|cost"),
    };
    let replay_mode = arg_value("--replay").unwrap_or_else(|| "ab".into());
    let (run_on, run_off) = match replay_mode.as_str() {
        "on" => (true, false),
        "off" => (false, true),
        "ab" => (true, true),
        other => panic!("--replay takes on|off|ab, not `{other}`"),
    };

    let (ram, bridges) = ram_with_bridges(dim, dim);
    let mut universe = paper_universe(&ram, bridges);
    if let Some(k) = arg_value("--sample") {
        let k: usize = k.parse().expect("--sample takes a number");
        universe = universe.sample(k, SEED);
    }
    let seq = TestSequence::full(&ram);
    let outputs = ram.observed_outputs();

    // One pure good-machine pass: the unit of the good-fraction
    // estimate for recompute mode (each shard embeds one such pass).
    let good_pass_seconds = GoodTape::record(
        ram.network(),
        seq.patterns(),
        ConcurrentConfig::paper().engine,
    )
    .record_seconds();

    let campaign = |config: ParallelConfig| {
        Campaign::new(ram.network())
            .faults(universe.clone())
            .patterns(seq.patterns())
            .outputs(outputs)
            .backend(Backend::Parallel(config))
            .reuse_good_tape(config.reuse_good_tape)
            .run()
    };
    let cpu_of = |r: &CampaignReport| -> f64 { r.run.patterns.iter().map(|p| p.seconds).sum() };
    let mode_point = |r: &CampaignReport| -> ModePoint {
        let cpu = cpu_of(r);
        let shards = r.shards.expect("parallel backend reports shards") as f64;
        // Replay: the good machine ran once (the record pass), on top
        // of the shards' faulty-only CPU. Recompute: every shard's CPU
        // already embeds one good pass.
        let (good_seconds, total_work) = match r.tape_record_seconds {
            Some(record) => (record, cpu + record),
            None => (shards * good_pass_seconds, cpu),
        };
        ModePoint {
            wall_seconds: r.run.total_seconds,
            cpu_seconds: cpu,
            tape_record_seconds: r.tape_record_seconds,
            good_fraction: (good_seconds / total_work.max(f64::MIN_POSITIVE)).clamp(0.0, 1.0),
            detected: r.detected(),
        }
    };

    let points: Vec<Point> = jobs_list
        .iter()
        .map(|&jobs| {
            let config = ParallelConfig {
                jobs: Jobs::Fixed(jobs),
                strategy,
                sim: ConcurrentConfig::paper(),
                ..ParallelConfig::default()
            };
            let on = run_on.then(|| campaign(config));
            let off = run_off.then(|| {
                campaign(ParallelConfig {
                    reuse_good_tape: false,
                    ..config
                })
            });
            let primary = on.as_ref().or(off.as_ref()).expect("one mode runs");
            let shards = primary.shards.expect("parallel backend reports shards");
            if let (Some(a), Some(b)) = (&on, &off) {
                assert_eq!(
                    a.detections(),
                    b.detections(),
                    "jobs={jobs}: replay must be bit-identical to recompute"
                );
            }
            // Re-run the same plan on one thread: shard times free of
            // scheduling contention, for the machine-independent
            // critical-path metric.
            let sequential = campaign(ParallelConfig {
                jobs: Jobs::Fixed(1),
                shards: Some(shards),
                ..config
            });
            assert_eq!(sequential.detected(), primary.detected());
            Point {
                jobs,
                shards,
                max_shard_seconds: sequential
                    .max_shard_seconds
                    .expect("parallel backend reports the critical path"),
                coverage: primary.coverage(),
                replay_on: on.as_ref().map(&mode_point),
                replay_off: off.as_ref().map(&mode_point),
            }
        })
        .collect();

    let wall_of = |p: &Point| -> f64 {
        p.replay_on
            .as_ref()
            .or(p.replay_off.as_ref())
            .expect("one mode ran")
            .wall_seconds
    };
    let base = points
        .iter()
        .find(|p| p.jobs == 1)
        .map_or_else(|| wall_of(&points[0]), wall_of);
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"jobs\": {}, \"shards\": {}, \"speedup\": {:.3}, \
                 \"max_shard_seconds\": {:.4}, \"ideal_speedup\": {:.3}, \
                 \"coverage\": {:.4}, \"replay_on\": {}, \"replay_off\": {}}}",
                p.jobs,
                p.shards,
                base / wall_of(p),
                p.max_shard_seconds,
                base / p.max_shard_seconds,
                p.coverage,
                fmt_mode(&p.replay_on),
                fmt_mode(&p.replay_off),
            )
        })
        .collect();
    println!("{{");
    println!("  \"circuit\": \"RAM{} ({})\",", dim * dim, ram.stats());
    println!("  \"faults\": {},", universe.len());
    println!("  \"patterns\": {},", seq.len());
    println!("  \"strategy\": \"{strategy}\",");
    println!("  \"replay\": \"{replay_mode}\",");
    println!("  \"good_pass_seconds\": {good_pass_seconds:.4},");
    println!(
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    println!("  \"results\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");

    // Sanity: neither sharding nor the tape may change the verdicts,
    // and at K >= 2 the tape must shrink the good-machine fraction.
    let baseline = points.first().expect("at least one job count");
    let detected_of = |p: &Point| {
        p.replay_on
            .as_ref()
            .or(p.replay_off.as_ref())
            .expect("one mode ran")
            .detected
    };
    for p in &points[1..] {
        assert_eq!(
            detected_of(p),
            detected_of(baseline),
            "jobs={} changed the detection count",
            p.jobs
        );
    }
    for p in &points {
        if let (Some(a), Some(b)) = (&p.replay_on, &p.replay_off) {
            if p.shards >= 2 {
                assert!(
                    a.good_fraction < b.good_fraction,
                    "jobs={}: replay-on good fraction {:.4} must undercut \
                     replay-off {:.4}",
                    p.jobs,
                    a.good_fraction,
                    b.good_fraction
                );
            }
        }
    }
}
