//! Fault-parallel scaling sweep: wall-clock speedup vs. worker count.
//!
//! Runs the paper's RAM workload (stuck nodes + bit-line bridges over
//! the full marching sequence) through [`fmossim_par::ParallelSim`] at
//! increasing `--jobs`, and emits one JSON document with wall-clock
//! seconds, aggregate CPU seconds, speedup relative to one job, and the
//! (job-count-invariant) coverage. The JSON is the artifact the ROADMAP
//! scaling work tracks over time.
//!
//! Usage:
//! `scaling_par [--dim 8] [--jobs-list 1,2,4,8] [--strategy round-robin] [--sample K]`
//!
//! Speedup saturates at the machine's hardware parallelism (reported as
//! `hardware_threads`): on a single-core container every job count
//! measures the same work plus scheduling overhead.

use fmossim_bench::{arg_value, paper_universe, ram_with_bridges, SEED};
use fmossim_campaign::{Backend, Campaign};
use fmossim_core::ConcurrentConfig;
use fmossim_par::{Jobs, ParallelConfig, ShardStrategy};
use fmossim_testgen::TestSequence;

struct Point {
    jobs: usize,
    shards: usize,
    wall_seconds: f64,
    cpu_seconds: f64,
    /// Critical path of the plan, measured uncontended (shards run
    /// back to back on one thread): the longest single shard.
    max_shard_seconds: f64,
    detected: usize,
    coverage: f64,
}

fn main() {
    let dim: usize = arg_value("--dim")
        .map(|s| s.parse().expect("--dim takes a number"))
        .unwrap_or(8);
    let jobs_list: Vec<usize> = arg_value("--jobs-list")
        .unwrap_or_else(|| "1,2,4,8".into())
        .split(',')
        .map(|s| s.trim().parse().expect("--jobs-list takes numbers"))
        .collect();
    let strategy = match arg_value("--strategy") {
        None => ShardStrategy::default(),
        Some(s) => ShardStrategy::parse(&s).expect("round-robin|contiguous|cost"),
    };

    let (ram, bridges) = ram_with_bridges(dim, dim);
    let mut universe = paper_universe(&ram, bridges);
    if let Some(k) = arg_value("--sample") {
        let k: usize = k.parse().expect("--sample takes a number");
        universe = universe.sample(k, SEED);
    }
    let seq = TestSequence::full(&ram);
    let outputs = ram.observed_outputs();

    let campaign = |config: ParallelConfig| {
        Campaign::new(ram.network())
            .faults(universe.clone())
            .patterns(seq.patterns())
            .outputs(outputs)
            .backend(Backend::Parallel(config))
            .run()
    };
    let points: Vec<Point> = jobs_list
        .iter()
        .map(|&jobs| {
            let config = ParallelConfig {
                jobs: Jobs::Fixed(jobs),
                strategy,
                sim: ConcurrentConfig::paper(),
                ..ParallelConfig::default()
            };
            let report = campaign(config);
            let shards = report.shards.expect("parallel backend reports shards");
            // Re-run the same plan on one thread: shard times free of
            // scheduling contention, for the machine-independent
            // critical-path metric.
            let sequential = campaign(ParallelConfig {
                jobs: Jobs::Fixed(1),
                shards: Some(shards),
                ..config
            });
            assert_eq!(sequential.detected(), report.detected());
            Point {
                jobs,
                shards,
                wall_seconds: report.run.total_seconds,
                cpu_seconds: report.run.patterns.iter().map(|p| p.seconds).sum(),
                max_shard_seconds: sequential
                    .max_shard_seconds
                    .expect("parallel backend reports the critical path"),
                detected: report.detected(),
                coverage: report.coverage(),
            }
        })
        .collect();

    let base = points
        .iter()
        .find(|p| p.jobs == 1)
        .map_or_else(|| points[0].wall_seconds, |p| p.wall_seconds);
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"jobs\": {}, \"shards\": {}, \"wall_seconds\": {:.4}, \
                 \"cpu_seconds\": {:.4}, \"speedup\": {:.3}, \
                 \"max_shard_seconds\": {:.4}, \"ideal_speedup\": {:.3}, \
                 \"detected\": {}, \"coverage\": {:.4}}}",
                p.jobs,
                p.shards,
                p.wall_seconds,
                p.cpu_seconds,
                base / p.wall_seconds,
                p.max_shard_seconds,
                base / p.max_shard_seconds,
                p.detected,
                p.coverage
            )
        })
        .collect();
    println!("{{");
    println!("  \"circuit\": \"RAM{} ({})\",", dim * dim, ram.stats());
    println!("  \"faults\": {},", universe.len());
    println!("  \"patterns\": {},", seq.len());
    println!("  \"strategy\": \"{strategy}\",");
    println!(
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    println!("  \"results\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");

    // Sanity: sharding must never change the verdicts.
    let baseline = points.first().expect("at least one job count");
    for p in &points[1..] {
        assert_eq!(
            p.detected, baseline.detected,
            "jobs={} changed the detection count",
            p.jobs
        );
    }
}
