//! Fault-parallel scaling sweep: wall-clock speedup vs. worker count,
//! with a record/replay A/B over the good-machine tape.
//!
//! Runs the paper's RAM workload (stuck nodes + bit-line bridges over
//! the full marching sequence) through [`fmossim_par::ParallelSim`] at
//! increasing `--jobs`, and emits one JSON document with wall-clock
//! seconds, aggregate CPU seconds, speedup relative to one job, the
//! (job-count-invariant) coverage — and, per point, the *good-machine
//! fraction*: how much of the total work went into simulating the
//! fault-free circuit. With the tape (`replay on`) that fraction is one
//! record pass regardless of the shard count; without it (`replay
//! off`) every shard re-settles the good circuit, so the fraction
//! grows with K. The JSON is the artifact the ROADMAP scaling work
//! tracks over time (`BENCH_replay.json`).
//!
//! Usage:
//! `scaling_par [--dim 8] [--jobs-list 1,2,4,8] [--strategy round-robin]
//!              [--sample K] [--replay on|off|ab]
//!              [--backend parallel|adaptive] [--batch 16]`
//!
//! `--replay ab` (the default) measures both modes per point and
//! asserts their detection sets are bit-identical. Wall-clock speedup
//! saturates at the machine's hardware parallelism (reported as
//! `hardware_threads`); the good-machine fraction does not — it is a
//! work ratio, not a wall-clock ratio.
//!
//! `--backend adaptive` switches to the batch-rebalancing A/B: per job
//! count it runs the adaptive backend in both modes — re-planning
//! shards from measured times between batches (`rebalanced`) vs. the
//! same batched loop with the initial cost-LPT plan frozen (`static`)
//! — and asserts both detection sets are bit-identical to the one-shot
//! parallel backend. Batch 0 runs the identical plan in both modes
//! (nothing has been measured yet) and is excluded from both
//! aggregates.
//!
//! The headline `*_imbalance` is the mean over rebalanced batches of
//! each batch's ratio `max_shard_seconds / mean_shard_seconds`
//! (1.0 = perfectly balanced): plan quality at each re-planning point,
//! every batch an equal observation — the quantity the re-planner
//! controls. The `*_weighted_imbalance` companion is
//! `Σ max / Σ mean` over the same batches; it is dominated by the few
//! burst batches whose max is a *single* fault's intrinsic cost (the
//! RAM march activates individual faults for milliseconds while the
//! rest idle), which no partition can split, so it is reported but not
//! gated on. Both are medians over `--reps 5` repetitions — late
//! batches run in microseconds and a single measurement is
//! noise-limited. The JSON is the `BENCH_adaptive.json` artifact; at
//! K ≥ 2 the rebalanced ratio must undercut the static one.

use fmossim_bench::{arg_value, paper_universe, ram_with_bridges, stats, SEED};
use fmossim_campaign::{AdaptiveConfig, Backend, Campaign, CampaignReport};
use fmossim_core::{ConcurrentConfig, GoodTape};
use fmossim_par::{Jobs, ParallelConfig, ShardStrategy};
use fmossim_testgen::TestSequence;

/// One replay mode's measurements at one job count.
struct ModePoint {
    wall_seconds: f64,
    cpu_seconds: f64,
    /// Seconds of the one-time tape record pass (`None` when the tape
    /// was not used: replay off, or a single shard).
    tape_record_seconds: Option<f64>,
    /// Good-machine seconds / total work seconds for this mode.
    good_fraction: f64,
    detected: usize,
}

struct Point {
    jobs: usize,
    shards: usize,
    /// Critical path of the plan, measured uncontended (shards run
    /// back to back on one thread): the longest single shard.
    max_shard_seconds: f64,
    replay_on: Option<ModePoint>,
    replay_off: Option<ModePoint>,
    coverage: f64,
}

fn fmt_mode(p: &Option<ModePoint>) -> String {
    match p {
        None => "null".into(),
        Some(m) => format!(
            "{{\"wall_seconds\": {:.4}, \"cpu_seconds\": {:.4}, \
             \"tape_record_seconds\": {}, \"good_fraction\": {:.4}, \
             \"detected\": {}}}",
            m.wall_seconds,
            m.cpu_seconds,
            m.tape_record_seconds
                .map_or("null".into(), |s| format!("{s:.4}")),
            m.good_fraction,
            m.detected,
        ),
    }
}

fn main() {
    let dim: usize = arg_value("--dim")
        .map(|s| s.parse().expect("--dim takes a number"))
        .unwrap_or(8);
    let jobs_list: Vec<usize> = arg_value("--jobs-list")
        .unwrap_or_else(|| "1,2,4,8".into())
        .split(',')
        .map(|s| s.trim().parse().expect("--jobs-list takes numbers"))
        .collect();
    let strategy = match arg_value("--strategy") {
        None => ShardStrategy::default(),
        Some(s) => ShardStrategy::parse(&s).expect("round-robin|contiguous|cost"),
    };
    match arg_value("--backend").as_deref() {
        None | Some("parallel") => {}
        Some("adaptive") => {
            let batch: usize = arg_value("--batch")
                .map(|s| s.parse().expect("--batch takes a number"))
                .unwrap_or(16);
            assert!(
                batch > 0,
                "--backend adaptive needs --batch > 0: a single whole-sequence batch has no \
                 rebalanced batches to compare"
            );
            assert!(
                arg_value("--replay").is_none(),
                "--replay does not apply to --backend adaptive (the batch loop is tape-based)"
            );
            // The A/B defaults to the strongest static baseline
            // (cost-LPT); an explicit --strategy overrides it.
            let initial = match arg_value("--strategy") {
                None => ShardStrategy::CostEstimated,
                Some(_) => strategy,
            };
            adaptive_ab(dim, &jobs_list, batch, initial);
            return;
        }
        Some(other) => panic!("--backend takes parallel|adaptive, not `{other}`"),
    }
    let replay_mode = arg_value("--replay").unwrap_or_else(|| "ab".into());
    let (run_on, run_off) = match replay_mode.as_str() {
        "on" => (true, false),
        "off" => (false, true),
        "ab" => (true, true),
        other => panic!("--replay takes on|off|ab, not `{other}`"),
    };

    let (ram, bridges) = ram_with_bridges(dim, dim);
    let mut universe = paper_universe(&ram, bridges);
    if let Some(k) = arg_value("--sample") {
        let k: usize = k.parse().expect("--sample takes a number");
        universe = universe.sample(k, SEED);
    }
    let seq = TestSequence::full(&ram);
    let outputs = ram.observed_outputs();

    // One pure good-machine pass: the unit of the good-fraction
    // estimate for recompute mode (each shard embeds one such pass).
    let good_pass_seconds = GoodTape::record(
        ram.network(),
        seq.patterns(),
        ConcurrentConfig::paper().engine,
    )
    .record_seconds();

    let campaign = |config: ParallelConfig| {
        Campaign::new(ram.network())
            .faults(universe.clone())
            .patterns(seq.patterns())
            .outputs(outputs)
            .backend(Backend::Parallel(config))
            .reuse_good_tape(config.reuse_good_tape)
            .run()
    };
    let cpu_of = |r: &CampaignReport| -> f64 { r.run.patterns.iter().map(|p| p.seconds).sum() };
    let mode_point = |r: &CampaignReport| -> ModePoint {
        let cpu = cpu_of(r);
        let shards = r.shards.expect("parallel backend reports shards") as f64;
        // Replay: the good machine ran once (the record pass), on top
        // of the shards' faulty-only CPU. Recompute: every shard's CPU
        // already embeds one good pass.
        let (good_seconds, total_work) = match r.tape_record_seconds {
            Some(record) => (record, cpu + record),
            None => (shards * good_pass_seconds, cpu),
        };
        ModePoint {
            wall_seconds: r.run.total_seconds,
            cpu_seconds: cpu,
            tape_record_seconds: r.tape_record_seconds,
            good_fraction: stats::fraction(good_seconds, total_work),
            detected: r.detected(),
        }
    };

    let points: Vec<Point> = jobs_list
        .iter()
        .map(|&jobs| {
            let config = ParallelConfig {
                jobs: Jobs::Fixed(jobs),
                strategy,
                sim: ConcurrentConfig::paper(),
                ..ParallelConfig::default()
            };
            let on = run_on.then(|| campaign(config));
            let off = run_off.then(|| {
                campaign(ParallelConfig {
                    reuse_good_tape: false,
                    ..config
                })
            });
            let primary = on.as_ref().or(off.as_ref()).expect("one mode runs");
            let shards = primary.shards.expect("parallel backend reports shards");
            if let (Some(a), Some(b)) = (&on, &off) {
                assert_eq!(
                    a.detections(),
                    b.detections(),
                    "jobs={jobs}: replay must be bit-identical to recompute"
                );
            }
            // Re-run the same plan on one thread: shard times free of
            // scheduling contention, for the machine-independent
            // critical-path metric.
            let sequential = campaign(ParallelConfig {
                jobs: Jobs::Fixed(1),
                shards: Some(shards),
                ..config
            });
            assert_eq!(sequential.detected(), primary.detected());
            Point {
                jobs,
                shards,
                max_shard_seconds: sequential
                    .max_shard_seconds
                    .expect("parallel backend reports the critical path"),
                coverage: primary.coverage(),
                replay_on: on.as_ref().map(&mode_point),
                replay_off: off.as_ref().map(&mode_point),
            }
        })
        .collect();

    let wall_of = |p: &Point| -> f64 {
        p.replay_on
            .as_ref()
            .or(p.replay_off.as_ref())
            .expect("one mode ran")
            .wall_seconds
    };
    let base = points
        .iter()
        .find(|p| p.jobs == 1)
        .map_or_else(|| wall_of(&points[0]), wall_of);
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"jobs\": {}, \"shards\": {}, \"speedup\": {:.3}, \
                 \"max_shard_seconds\": {:.4}, \"ideal_speedup\": {:.3}, \
                 \"coverage\": {:.4}, \"replay_on\": {}, \"replay_off\": {}}}",
                p.jobs,
                p.shards,
                base / wall_of(p),
                p.max_shard_seconds,
                base / p.max_shard_seconds,
                p.coverage,
                fmt_mode(&p.replay_on),
                fmt_mode(&p.replay_off),
            )
        })
        .collect();
    println!("{{");
    println!("  \"circuit\": \"RAM{} ({})\",", dim * dim, ram.stats());
    println!("  \"faults\": {},", universe.len());
    println!("  \"patterns\": {},", seq.len());
    println!("  \"strategy\": \"{strategy}\",");
    println!("  \"replay\": \"{replay_mode}\",");
    println!("  \"good_pass_seconds\": {good_pass_seconds:.4},");
    println!(
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    println!("  \"results\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");

    // Sanity: neither sharding nor the tape may change the verdicts,
    // and at K >= 2 the tape must shrink the good-machine fraction.
    let baseline = points.first().expect("at least one job count");
    let detected_of = |p: &Point| {
        p.replay_on
            .as_ref()
            .or(p.replay_off.as_ref())
            .expect("one mode ran")
            .detected
    };
    for p in &points[1..] {
        assert_eq!(
            detected_of(p),
            detected_of(baseline),
            "jobs={} changed the detection count",
            p.jobs
        );
    }
    for p in &points {
        if let (Some(a), Some(b)) = (&p.replay_on, &p.replay_off) {
            if p.shards >= 2 {
                assert!(
                    a.good_fraction < b.good_fraction,
                    "jobs={}: replay-on good fraction {:.4} must undercut \
                     replay-off {:.4}",
                    p.jobs,
                    a.good_fraction,
                    b.good_fraction
                );
            }
        }
    }
}

/// One adaptive mode's aggregate measurements at one job count.
struct AdaptiveMode {
    /// Mean over the rebalanced batches of each batch's imbalance
    /// ratio `max_shard_seconds / mean_shard_seconds` (1.0 = every
    /// plan perfectly balanced) — plan quality at each re-planning
    /// point, every batch an equal observation.
    imbalance: f64,
    /// `Σ max_shard_seconds / Σ mean_shard_seconds` over the same
    /// batches: the seconds-weighted companion, dominated by the few
    /// heavy early batches.
    weighted_imbalance: f64,
    batches: usize,
    moved_faults: usize,
    cpu_seconds: f64,
}

/// The batch-rebalancing A/B (`--backend adaptive`): measured-cost
/// re-planning vs. the frozen initial plan (both planned with
/// `strategy` for batch 0), both bit-identical to the one-shot
/// parallel backend.
fn adaptive_ab(dim: usize, jobs_list: &[usize], batch: usize, strategy: ShardStrategy) {
    let (ram, bridges) = ram_with_bridges(dim, dim);
    let mut universe = paper_universe(&ram, bridges);
    if let Some(k) = arg_value("--sample") {
        let k: usize = k.parse().expect("--sample takes a number");
        universe = universe.sample(k, SEED);
    }
    let seq = TestSequence::full(&ram);
    let outputs = ram.observed_outputs();

    let campaign = |backend: Backend| {
        Campaign::new(ram.network())
            .faults(universe.clone())
            .patterns(seq.patterns())
            .outputs(outputs)
            .backend(backend)
            .run()
    };
    let reps: usize = arg_value("--reps")
        .map(|s| s.parse().expect("--reps takes a number"))
        .unwrap_or(5)
        .max(1);
    let mode = |r: &CampaignReport| -> AdaptiveMode {
        // Batch 0 runs the identical initial plan in both modes (no
        // measurement exists yet to re-plan from); the before/after
        // comparison is over the batches a rebalance could have
        // touched, so it is excluded from both aggregates.
        assert!(
            r.batches.len() >= 2,
            "the A/B needs at least one rebalanced batch; lower --batch \
             (got {} batch(es) of {batch} patterns)",
            r.batches.len()
        );
        let rebalanced = &r.batches[1..];
        let max_sum: f64 = rebalanced.iter().map(|b| b.max_shard_seconds).sum();
        let mean_sum: f64 = rebalanced.iter().map(|b| b.mean_shard_seconds).sum();
        AdaptiveMode {
            imbalance: stats::mean(rebalanced.iter().map(|b| b.imbalance)),
            weighted_imbalance: stats::imbalance(max_sum, mean_sum),
            batches: r.batches.len(),
            moved_faults: r.batches.iter().map(|b| b.moved_faults).sum(),
            cpu_seconds: r.run.patterns.iter().map(|p| p.seconds).sum(),
        }
    };
    let median = |modes: Vec<AdaptiveMode>| stats::median_by(modes, |m| m.imbalance);

    let rows: Vec<String> = jobs_list
        .iter()
        .map(|&jobs| {
            let config = AdaptiveConfig {
                jobs: Jobs::Fixed(jobs),
                initial_strategy: strategy,
                ..AdaptiveConfig::paper(batch)
            };
            let reference = campaign(Backend::Parallel(ParallelConfig {
                jobs: Jobs::Fixed(jobs),
                strategy,
                sim: ConcurrentConfig::paper(),
                ..ParallelConfig::default()
            }));
            let measure = |backend_config: AdaptiveConfig| -> AdaptiveMode {
                median(
                    (0..reps)
                        .map(|_| {
                            let report = campaign(Backend::Adaptive(backend_config));
                            assert_eq!(
                                report.detections(),
                                reference.detections(),
                                "jobs={jobs} rebalance={}: batching changed the detection set",
                                backend_config.rebalance
                            );
                            mode(&report)
                        })
                        .collect(),
                )
            };
            let re = measure(config);
            let st = measure(AdaptiveConfig {
                rebalance: false,
                ..config
            });
            // The acceptance gate: at K >= 2 measured-cost re-planning
            // must beat the frozen static plan.
            if jobs >= 2 {
                assert!(
                    re.imbalance < st.imbalance,
                    "jobs={jobs}: rebalanced imbalance {:.4} must undercut static {:.4}",
                    re.imbalance,
                    st.imbalance
                );
            }
            format!(
                "    {{\"jobs\": {jobs}, \"batches\": {}, \
                 \"static_imbalance\": {:.4}, \"rebalanced_imbalance\": {:.4}, \
                 \"static_weighted_imbalance\": {:.4}, \
                 \"rebalanced_weighted_imbalance\": {:.4}, \
                 \"moved_faults\": {}, \"static_cpu_seconds\": {:.4}, \
                 \"rebalanced_cpu_seconds\": {:.4}, \"coverage\": {:.4}}}",
                re.batches,
                st.imbalance,
                re.imbalance,
                st.weighted_imbalance,
                re.weighted_imbalance,
                re.moved_faults,
                st.cpu_seconds,
                re.cpu_seconds,
                reference.coverage(),
            )
        })
        .collect();
    println!("{{");
    println!("  \"circuit\": \"RAM{} ({})\",", dim * dim, ram.stats());
    println!("  \"faults\": {},", universe.len());
    println!("  \"patterns\": {},", seq.len());
    println!("  \"batch\": {batch},");
    println!(
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    println!("  \"results\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
