//! Regenerates **Table 1** of the paper: transistor state as a
//! function of gate node state, for n-, p- and d-type devices.

use fmossim_netlist::{Logic, TransistorType};

fn main() {
    println!("Table 1: Transistor State as Function of Gate Node State");
    println!();
    println!("gate state   n-type   p-type   d-type");
    for gate in [Logic::L, Logic::H, Logic::X] {
        let row: Vec<String> = TransistorType::ALL
            .iter()
            .map(|t| t.conduction(gate).to_string())
            .collect();
        println!(
            "    {}            {}        {}        {}",
            gate, row[0], row[1], row[2]
        );
    }
    println!();
    println!("(paper values: 0→0,1,1   1→1,0,1   X→X,X,1 — matched by construction,");
    println!(" asserted exhaustively in fmossim-netlist::ttype::tests::table_1)");
}
