//! Telemetry instrumentation overhead: the same campaign with an
//! active registry vs. the null registry, on one zoo circuit.
//!
//! The telemetry layer is wired through the hot paths of every layer
//! (engine settles, concurrent event scheduling, shard loops), so its
//! cost budget is explicit: **< 3% patterns/second regression** with a
//! registry attached. This binary measures it — each repetition runs
//! the modes in ABBA order (null, active, active, null) so linear
//! machine drift cancels out of the per-rep ratio, the budget is
//! asserted on the median ratio — and prints the
//! `BENCH_telemetry.json` artifact.
//!
//! Usage: `telemetry_overhead [--circuit ram64] [--reps 5] [--sample N]`
//!
//! Both modes must also grade identically (telemetry never changes
//! results); the binary asserts detection equality per repetition.

use fmossim_bench::{arg_value, stats};
use fmossim_campaign::{Backend, Campaign, CampaignReport, ConcurrentConfig, Registry};
use fmossim_faults::FaultUniverse;
use fmossim_testgen::zoo::{build_zoo, ZOO_SEED};

/// The budget asserted on the median patterns/second ratio.
const MAX_REGRESSION: f64 = 0.03;

fn main() {
    let circuit = arg_value("--circuit").unwrap_or_else(|| "ram64".into());
    let reps: usize = arg_value("--reps")
        .map(|s| s.parse().expect("--reps takes a number"))
        .unwrap_or(5)
        .max(1);
    let w = build_zoo(&circuit).expect("zoo member (see `fmossim zoo`)");
    let mut universe = FaultUniverse::stuck_nodes(&w.net);
    if let Some(k) = arg_value("--sample") {
        let k: usize = k.parse().expect("--sample takes a number");
        universe = universe.sample(k, ZOO_SEED);
    }

    let run = |registry: &Registry| -> CampaignReport {
        Campaign::new(&w.net)
            .faults(universe.clone())
            .patterns(&w.patterns)
            .outputs(&w.outputs)
            .backend(Backend::Concurrent(ConcurrentConfig::paper()))
            .with_telemetry(registry)
            .run()
    };
    let pps = |r: &CampaignReport| r.patterns_total as f64 / r.wall_seconds.max(f64::MIN_POSITIVE);

    // One warmup (page cache, allocator), then ABBA per repetition:
    // null, active, active, null. Averaging the two runs of each mode
    // cancels linear machine drift out of the per-rep ratio, which the
    // raw interleaved ordering does not.
    let warmup = run(&Registry::null());
    let mut rep_pps = Vec::with_capacity(reps);
    for rep in 0..reps {
        let n1 = run(&Registry::null());
        let a1 = run(&Registry::new());
        let a2 = run(&Registry::new());
        let n2 = run(&Registry::null());
        for r in [&n1, &a1, &a2, &n2] {
            assert_eq!(
                r.detections(),
                warmup.detections(),
                "rep {rep}: telemetry changed the detection set"
            );
        }
        assert!(
            n1.metrics.counters.is_empty() && n2.metrics.counters.is_empty(),
            "null registry must record nothing"
        );
        assert!(
            !a1.metrics.counters.is_empty(),
            "active registry must record"
        );
        assert_eq!(
            a1.metrics.counters, a2.metrics.counters,
            "rep {rep}: counters must be run-to-run deterministic"
        );
        let null_pps = (pps(&n1) + pps(&n2)) / 2.0;
        let active_pps = (pps(&a1) + pps(&a2)) / 2.0;
        rep_pps.push((null_pps, active_pps));
        eprintln!(
            "rep {rep}: null {null_pps:.1} patterns/s, active {active_pps:.1} patterns/s \
             (ratio {:.3})",
            active_pps / null_pps.max(f64::MIN_POSITIVE)
        );
    }

    // The rep with the median active/null ratio is the representative
    // measurement; report its absolute rates alongside.
    let (null_median, active_median) =
        stats::median_by(rep_pps, |&(n, a)| a / n.max(f64::MIN_POSITIVE));
    let regression = 1.0 - active_median / null_median.max(f64::MIN_POSITIVE);

    println!("{{");
    println!("  \"format\": \"fmossim-telemetry-overhead\",");
    println!("  \"version\": 1,");
    println!("  \"circuit\": \"{circuit}\",");
    println!("  \"faults\": {},", universe.len());
    println!("  \"patterns\": {},", w.patterns.len());
    println!("  \"reps\": {reps},");
    println!("  \"null_patterns_per_second\": {null_median:.2},");
    println!("  \"active_patterns_per_second\": {active_median:.2},");
    println!("  \"regression\": {regression:.4},");
    println!("  \"budget\": {MAX_REGRESSION}");
    println!("}}");

    assert!(
        regression < MAX_REGRESSION,
        "telemetry overhead {:.2}% exceeds the {:.0}% budget \
         (null {null_median:.1} vs active {active_median:.1} patterns/s)",
        regression * 100.0,
        MAX_REGRESSION * 100.0,
    );
    eprintln!(
        "telemetry overhead {:.2}% — within the {:.0}% budget",
        regression * 100.0,
        MAX_REGRESSION * 100.0
    );
}
