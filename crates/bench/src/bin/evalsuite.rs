//! The paper-style evaluation suite over the benchmark circuit zoo:
//! every zoo circuit × every backend (serial / concurrent / parallel /
//! adaptive) × every worker count, one campaign each, one JSON
//! artifact (`BENCH_suite.json`).
//!
//! The source paper argues FMOSSIM's worth by relating simulation cost
//! to concurrent fault-list activity across a spread of MOS circuits;
//! this binary is that methodology for the reproduction. Per run it
//! records the paper's shape metrics — patterns per second, the
//! good-machine fraction of solver work, mean concurrent fault-list
//! activity (live faulty circuits per pattern), mean faulty vicinities
//! per pattern — plus the re-planner's per-batch imbalance for the
//! adaptive backend, and it **asserts cross-backend conformance**: the
//! canonical detection set of every run of a circuit must be
//! bit-identical (the suite aborts otherwise), with the shared
//! fingerprint archived per circuit.
//!
//! Usage:
//! `evalsuite [--smoke] [--circuit name] [--jobs-list 2,4]
//!            [--sample N] [--pattern-limit N] [--batch N]
//!            [--metrics <path>]`
//!
//! `evalsuite --packing [--smoke] [--circuit name] [--sample N]
//! [--reps N]` runs the bit-parallel packing A/B instead (the
//! `BENCH_packed.json` artifact): per zoo circuit, the concurrent
//! backend with `ConcurrentConfig::packing` off and on, median wall
//! time over `--reps` repetitions each. Detections must be
//! bit-identical (the suite aborts otherwise); the packed row archives
//! the lane statistics (`switch.packed_solves`,
//! `switch.scalar_fallbacks`, mean lanes per packed solve) next to the
//! patterns-per-second ratio. The win scales with fault *density* —
//! lanes share work where two machines' propagation fronts meet, so
//! members whose patterns trigger many faulty circuits in the same
//! region at once (the RAMs, the PLA) pack many lanes per solve,
//! while sparse universes mostly fall back to the scalar path and
//! break even. `--sample` defaults much higher here (192) than in the
//! main suite: lane occupancy *is* the mechanism under test, and it
//! rises with the number of live fault machines per circuit region.
//!
//! `evalsuite --collapse [--smoke] [--circuit name] [--reps N]` runs
//! the fault-collapsing A/B instead (the `BENCH_collapse.json`
//! artifact): per zoo circuit, the concurrent backend over the **full**
//! stuck-node ∪ stuck-transistor universe with campaign-level
//! collapsing (static equivalence classes + dynamic activity gating)
//! off and on, median wall time over `--reps` repetitions each.
//! Detections must be bit-identical (the suite aborts otherwise) — the
//! collapsed run fans every representative's detections back out to
//! its class, so the FNV fingerprint doubles as the end-to-end proof
//! that fan-out reconstructs the uncollapsed result. No `--sample`
//! here: sampling would break up the structural pairs (parallel twins,
//! series stuck-opens, dominated drivers) that collapsing exists to
//! find, understating the reduction. Each row archives the class
//! statistics (`total_faults`, `simulated_faults`, `classes`), the
//! gating counter (`core.gated_skips`), and the patterns-per-second
//! ratio.
//!
//! `evalsuite --serve [--circuit name] [--requests N]` runs the
//! server A/B instead (the `BENCH_serve.json` artifact): N campaigns
//! of one zoo circuit served concurrently by an in-process
//! `fmossim-serve` instance (first submission warms the good-tape
//! cache, the rest hit it) against the same N campaigns run
//! sequentially offline, each paying its own record pass. Both sides
//! must grade identically; the row archives wall times and the
//! measured cache-hit rate. The pool is sized from the host
//! (`hardware_threads` is archived with the row): on a few-core host
//! the served side cannot beat sequential wall time — its measured
//! win is the seven retired record passes (`tape_record_seconds`)
//! and request multiplexing, while wall-time speedup needs real
//! cores to spend the freed cycles on.
//!
//! Every campaign runs with a fresh telemetry registry; each run's row
//! embeds the registry's counter snapshot (`metrics`), and `--metrics
//! <path>` additionally writes the whole suite's merged registry as
//! one Prometheus text-format snapshot — the artifact CI lints and
//! uploads.
//!
//! All campaigns run under `DetectionPolicy::DefiniteOnly` — the
//! policy under which detection sets are provably schedule-independent
//! (see `tests/campaign_api.rs`) — so equality across backends is a
//! hard invariant, not a statistical one. `--smoke` shrinks every
//! workload (few faults, few patterns) for CI; the archived
//! `BENCH_suite.json` is a full run.

use fmossim_bench::{arg_flag, arg_value, stats};
use fmossim_campaign::{
    AdaptiveConfig, Backend, Campaign, CampaignReport, ConcurrentConfig, DetectionPolicy, Jobs,
    MetricsSnapshot, ParallelConfig, Registry, SerialConfig,
};
use fmossim_faults::FaultUniverse;
use fmossim_testgen::zoo::{build_zoo, ZooWorkload, ZOO, ZOO_SEED};

/// One campaign's row in the suite.
struct Run {
    backend: &'static str,
    jobs: Option<usize>,
    wall_seconds: f64,
    patterns_per_second: f64,
    cpu_seconds: f64,
    /// Good-machine share of solver work:
    /// `good_groups / (good_groups + faulty_groups)`. `None` for
    /// serial, which has no vicinity counters.
    good_fraction: Option<f64>,
    /// Mean live faulty circuits per pattern — the paper's
    /// "concurrent fault-list activity".
    mean_live: Option<f64>,
    /// Mean faulty vicinities solved per pattern.
    mean_faulty_groups: Option<f64>,
    /// Mean per-batch imbalance ratio (adaptive only).
    mean_batch_imbalance: Option<f64>,
    detected: usize,
    fingerprint: u64,
    /// The run's telemetry registry snapshot (every campaign runs with
    /// a fresh registry; counters are archived per run).
    metrics: MetricsSnapshot,
}

/// FNV-1a over the canonical detection sequence: two runs share the
/// fingerprint iff their detection sets are bit-identical.
fn detection_fingerprint(r: &CampaignReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for d in r.detections() {
        eat(d.canonical_key().as_bytes());
        eat(b";");
    }
    h
}

fn measure(report: &CampaignReport, jobs: Option<usize>, backend: &'static str) -> Run {
    let cpu: f64 = report.run.patterns.iter().map(|p| p.seconds).sum();
    let good_groups: usize = report.run.patterns.iter().map(|p| p.good_groups).sum();
    let faulty_groups: usize = report.run.patterns.iter().map(|p| p.faulty_groups).sum();
    let has_counters = good_groups + faulty_groups > 0;
    let mean_batch_imbalance = (!report.batches.is_empty())
        .then(|| stats::mean(report.batches.iter().map(|b| b.imbalance)));
    Run {
        backend,
        jobs,
        wall_seconds: report.wall_seconds,
        patterns_per_second: report.patterns_total as f64
            / report.wall_seconds.max(f64::MIN_POSITIVE),
        cpu_seconds: cpu,
        good_fraction: has_counters
            .then(|| stats::fraction(good_groups as f64, (good_groups + faulty_groups) as f64)),
        mean_live: has_counters
            .then(|| stats::mean(report.run.patterns.iter().map(|p| p.live_before as f64))),
        mean_faulty_groups: has_counters
            .then(|| stats::mean(report.run.patterns.iter().map(|p| p.faulty_groups as f64))),
        mean_batch_imbalance,
        detected: report.detected(),
        fingerprint: detection_fingerprint(report),
        metrics: report.metrics.clone(),
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or("null".into(), |x| format!("{x:.4}"))
}

fn fmt_run(r: &Run) -> String {
    // Counters only: they are deterministic measurements; the
    // registry's gauges/histograms are timing-shaped and live in the
    // merged --metrics snapshot instead.
    let counters: Vec<String> = r
        .metrics
        .counters
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect();
    format!(
        "      {{\"backend\": \"{}\", \"jobs\": {}, \"wall_seconds\": {:.4}, \
         \"patterns_per_second\": {:.2}, \"cpu_seconds\": {:.4}, \
         \"good_fraction\": {}, \"mean_live\": {}, \"mean_faulty_groups\": {}, \
         \"mean_batch_imbalance\": {}, \"detected\": {}, \
         \"detections_fnv1a\": \"{:016x}\",\n       \"metrics\": {{{}}}}}",
        r.backend,
        r.jobs.map_or("null".into(), |j| j.to_string()),
        r.wall_seconds,
        r.patterns_per_second,
        r.cpu_seconds,
        fmt_opt(r.good_fraction),
        fmt_opt(r.mean_live),
        fmt_opt(r.mean_faulty_groups),
        fmt_opt(r.mean_batch_imbalance),
        r.detected,
        r.fingerprint,
        counters.join(", "),
    )
}

fn main() {
    if arg_flag("--serve") {
        serve_ab();
        return;
    }
    if arg_flag("--packing") {
        packing_ab();
        return;
    }
    if arg_flag("--collapse") {
        collapse_ab();
        return;
    }
    let smoke = arg_flag("--smoke");
    let only = arg_value("--circuit");
    let jobs_list: Vec<usize> = arg_value("--jobs-list")
        .unwrap_or_else(|| if smoke { "2".into() } else { "2,4".into() })
        .split(',')
        .map(|s| s.trim().parse().expect("--jobs-list takes numbers"))
        .collect();
    // Universe caps keep the serial baseline tractable on the big
    // members; sampling is seeded, so the suite is reproducible.
    let sample: usize = arg_value("--sample")
        .map(|s| s.parse().expect("--sample takes a number"))
        .unwrap_or(if smoke { 12 } else { 48 });
    let pattern_limit: Option<usize> = arg_value("--pattern-limit")
        .map(|s| s.parse().expect("--pattern-limit takes a number"))
        .or(if smoke { Some(24) } else { None });
    let batch: usize = arg_value("--batch")
        .map(|s| s.parse().expect("--batch takes a number"))
        .unwrap_or(if smoke { 8 } else { 16 });

    let metrics_path = arg_value("--metrics");
    let policy = DetectionPolicy::DefiniteOnly;
    let sim = ConcurrentConfig {
        policy,
        ..ConcurrentConfig::paper()
    };

    // The whole suite's telemetry, merged run by run, for the
    // `--metrics` Prometheus snapshot.
    let suite_registry = Registry::new();
    let mut circuit_rows = Vec::new();
    for (name, _) in ZOO {
        if only.as_deref().is_some_and(|o| o != name) {
            continue;
        }
        let w: ZooWorkload = build_zoo(name).expect("registry member builds");
        let full_universe = FaultUniverse::stuck_nodes(&w.net);
        let (universe, sampled) = if full_universe.len() > sample {
            (full_universe.sample(sample, ZOO_SEED), true)
        } else {
            (full_universe, false)
        };
        let campaign = |backend: Backend| -> CampaignReport {
            // Fresh registry per run: each row's snapshot stands alone,
            // and the suite registry accumulates the merged total.
            let registry = Registry::new();
            let mut c = Campaign::new(&w.net)
                .faults(universe.clone())
                .patterns(&w.patterns)
                .outputs(&w.outputs)
                .backend(backend)
                .with_telemetry(&registry);
            if let Some(n) = pattern_limit {
                c = c.pattern_limit(n);
            }
            let report = c.run();
            suite_registry.merge(&registry);
            report
        };

        let mut runs = Vec::new();
        runs.push(measure(
            &campaign(Backend::Serial(SerialConfig {
                policy,
                ..SerialConfig::paper()
            })),
            None,
            "serial",
        ));
        runs.push(measure(
            &campaign(Backend::Concurrent(sim)),
            None,
            "concurrent",
        ));
        for &jobs in &jobs_list {
            runs.push(measure(
                &campaign(Backend::Parallel(ParallelConfig {
                    jobs: Jobs::Fixed(jobs),
                    sim,
                    ..ParallelConfig::default()
                })),
                Some(jobs),
                "parallel",
            ));
            runs.push(measure(
                &campaign(Backend::Adaptive(AdaptiveConfig {
                    jobs: Jobs::Fixed(jobs),
                    sim,
                    ..AdaptiveConfig::paper(batch)
                })),
                Some(jobs),
                "adaptive",
            ));
        }

        // The conformance gate: every run of this circuit must grade
        // identically — backends and worker counts move time, never
        // results.
        let reference = &runs[0];
        for r in &runs[1..] {
            assert_eq!(
                (r.detected, r.fingerprint),
                (reference.detected, reference.fingerprint),
                "{name}: {} (jobs {:?}) diverged from {} — cross-backend parity broken",
                r.backend,
                r.jobs,
                reference.backend,
            );
        }

        let stats = w.stats();
        let patterns_used = pattern_limit.map_or(w.patterns.len(), |n| n.min(w.patterns.len()));
        eprintln!(
            "{name}: {} faults{} x {} patterns, {} runs, {} detected — parity ok",
            universe.len(),
            if sampled { " (sampled)" } else { "" },
            patterns_used,
            runs.len(),
            reference.detected,
        );
        circuit_rows.push(format!(
            "    {{\"name\": \"{name}\", \"description\": \"{}\",\n     \
             \"nodes\": {}, \"transistors\": {}, \"storage\": {}, \
             \"faults\": {}, \"sampled\": {}, \"patterns\": {},\n     \
             \"detected\": {}, \"coverage\": {:.4},\n     \"runs\": [\n{}\n    ]}}",
            w.description,
            stats.nodes,
            stats.transistors,
            stats.storage,
            universe.len(),
            sampled,
            patterns_used,
            reference.detected,
            reference.detected as f64 / universe.len().max(1) as f64,
            runs.iter().map(fmt_run).collect::<Vec<_>>().join(",\n"),
        ));
    }
    assert!(
        !circuit_rows.is_empty(),
        "--circuit filtered everything out (see fmossim_testgen::zoo::ZOO)"
    );

    println!("{{");
    println!("  \"format\": \"fmossim-evalsuite\",");
    println!("  \"version\": 1,");
    println!("  \"smoke\": {smoke},");
    println!("  \"policy\": \"definite-only\",");
    println!("  \"sample_cap\": {sample},");
    println!(
        "  \"pattern_limit\": {},",
        pattern_limit.map_or("null".into(), |n| n.to_string())
    );
    println!("  \"jobs_list\": [{}],", {
        let s: Vec<String> = jobs_list.iter().map(ToString::to_string).collect();
        s.join(", ")
    });
    println!(
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    println!("  \"circuits\": [");
    println!("{}", circuit_rows.join(",\n"));
    println!("  ]");
    println!("}}");

    if let Some(path) = metrics_path {
        let snap = suite_registry.snapshot();
        let text = snap.to_prometheus();
        MetricsSnapshot::lint_prometheus(&text).unwrap_or_else(|(line, msg)| {
            panic!("exporter produced bad text (line {line}): {msg}")
        });
        std::fs::write(&path, &text).expect("writable --metrics path");
        eprintln!(
            "metrics: merged {} counter(s), {} gauge(s), {} histogram(s) -> {path}",
            snap.counters.len(),
            snap.gauges.len(),
            snap.histograms.len(),
        );
    }
}

/// The `--packing` A/B: per zoo circuit, the concurrent backend with
/// the bit-parallel packed path off and on, `--reps` repetitions each
/// (median wall time), with bit-identical detections as the hard gate.
/// Emits the `BENCH_packed.json` document on stdout.
fn packing_ab() {
    let smoke = arg_flag("--smoke");
    let only = arg_value("--circuit");
    let reps: usize = arg_value("--reps")
        .map(|s| s.parse().expect("--reps takes a number"))
        .unwrap_or(if smoke { 2 } else { 5 });
    assert!(reps >= 1, "--reps needs at least one repetition");
    // Much higher default cap than the main suite: packing wins by
    // settling many simultaneously-triggered fault machines per bitwise
    // pass, so the fault population is the independent variable here —
    // on the big RAMs, occupancy (and the packed win) grows with it.
    let sample: usize = arg_value("--sample")
        .map(|s| s.parse().expect("--sample takes a number"))
        .unwrap_or(if smoke { 12 } else { 192 });
    let pattern_limit: Option<usize> = arg_value("--pattern-limit")
        .map(|s| s.parse().expect("--pattern-limit takes a number"))
        .or(if smoke { Some(24) } else { None });
    let policy = DetectionPolicy::DefiniteOnly;

    let mut circuit_rows = Vec::new();
    for (name, _) in ZOO {
        if only.as_deref().is_some_and(|o| o != name) {
            continue;
        }
        let w: ZooWorkload = build_zoo(name).expect("registry member builds");
        let full_universe = FaultUniverse::stuck_nodes(&w.net);
        let (universe, sampled) = if full_universe.len() > sample {
            (full_universe.sample(sample, ZOO_SEED), true)
        } else {
            (full_universe, false)
        };
        let run_once = |packing: bool| -> CampaignReport {
            let registry = Registry::new();
            let mut c = Campaign::new(&w.net)
                .faults(universe.clone())
                .patterns(&w.patterns)
                .outputs(&w.outputs)
                .backend(Backend::Concurrent(ConcurrentConfig {
                    policy,
                    packing,
                    ..ConcurrentConfig::paper()
                }))
                .with_telemetry(&registry);
            if let Some(n) = pattern_limit {
                c = c.pattern_limit(n);
            }
            c.run()
        };

        let scalar_reps: Vec<CampaignReport> = (0..reps).map(|_| run_once(false)).collect();
        let packed_reps: Vec<CampaignReport> = (0..reps).map(|_| run_once(true)).collect();
        let reference = detection_fingerprint(&scalar_reps[0]);
        let detected = scalar_reps[0].detected();
        for r in scalar_reps.iter().chain(&packed_reps) {
            assert_eq!(
                (r.detected(), detection_fingerprint(r)),
                (detected, reference),
                "{name}: packed/scalar parity broken"
            );
        }
        let scalar = stats::median_by(scalar_reps, |r| r.wall_seconds);
        let packed = stats::median_by(packed_reps, |r| r.wall_seconds);

        let pps =
            |r: &CampaignReport| r.patterns_total as f64 / r.wall_seconds.max(f64::MIN_POSITIVE);
        let counter = |r: &CampaignReport, k: &str| r.metrics.counters.get(k).copied().unwrap_or(0);
        let packed_solves = counter(&packed, "switch.packed_solves");
        let scalar_fallbacks = counter(&packed, "switch.scalar_fallbacks");
        let occupancy = packed.metrics.histograms.get("switch.lane.occupancy");
        let mean_lanes = occupancy
            .filter(|h| h.count > 0)
            .map(|h| h.sum as f64 / h.count as f64);
        let mean_faulty_groups =
            stats::mean(scalar.run.patterns.iter().map(|p| p.faulty_groups as f64));
        let speedup = pps(&packed) / pps(&scalar).max(f64::MIN_POSITIVE);
        eprintln!(
            "{name}: {} faults x {} patterns — scalar {:.2} pat/s, packed {:.2} pat/s \
             ({speedup:.2}x, {packed_solves} packed solves, mean lanes {}) — parity ok",
            universe.len(),
            scalar.patterns_total,
            pps(&scalar),
            pps(&packed),
            fmt_opt(mean_lanes),
        );
        circuit_rows.push(format!(
            "    {{\"name\": \"{name}\", \"faults\": {}, \"sampled\": {sampled}, \
             \"patterns\": {}, \"detected\": {detected}, \
             \"detections_fnv1a\": \"{reference:016x}\", \
             \"mean_faulty_groups\": {mean_faulty_groups:.4},\n     \
             \"scalar\": {{\"wall_seconds\": {:.4}, \"patterns_per_second\": {:.2}}},\n     \
             \"packed\": {{\"wall_seconds\": {:.4}, \"patterns_per_second\": {:.2}, \
             \"packed_solves\": {packed_solves}, \"scalar_fallbacks\": {scalar_fallbacks}, \
             \"mean_lane_occupancy\": {}}},\n     \
             \"packed_speedup\": {speedup:.4}}}",
            universe.len(),
            scalar.patterns_total,
            scalar.wall_seconds,
            pps(&scalar),
            packed.wall_seconds,
            pps(&packed),
            fmt_opt(mean_lanes),
        ));
    }
    assert!(
        !circuit_rows.is_empty(),
        "--circuit filtered everything out (see fmossim_testgen::zoo::ZOO)"
    );

    println!("{{");
    println!("  \"format\": \"fmossim-evalsuite-packing\",");
    println!("  \"version\": 1,");
    println!("  \"smoke\": {smoke},");
    println!("  \"policy\": \"definite-only\",");
    println!("  \"sample_cap\": {sample},");
    println!("  \"reps\": {reps},");
    println!(
        "  \"pattern_limit\": {},",
        pattern_limit.map_or("null".into(), |n| n.to_string())
    );
    println!(
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    println!("  \"circuits\": [");
    println!("{}", circuit_rows.join(",\n"));
    println!("  ]");
    println!("}}");
}

/// The `--collapse` A/B: per zoo circuit, the concurrent backend over
/// the full stuck-node ∪ stuck-transistor universe with campaign-level
/// fault collapsing off and on, `--reps` repetitions each (median wall
/// time), with bit-identical detections as the hard gate. Emits the
/// `BENCH_collapse.json` document on stdout.
fn collapse_ab() {
    let smoke = arg_flag("--smoke");
    let only = arg_value("--circuit");
    let reps: usize = arg_value("--reps")
        .map(|s| s.parse().expect("--reps takes a number"))
        .unwrap_or(if smoke { 1 } else { 3 });
    assert!(reps >= 1, "--reps needs at least one repetition");
    // Deliberately no --sample: seeded sampling keeps either member of
    // a structural pair with independent probability, so almost every
    // equivalence class collapses to a singleton and the measured
    // reduction evaporates. The full universe is the honest workload.
    let pattern_limit: Option<usize> = arg_value("--pattern-limit")
        .map(|s| s.parse().expect("--pattern-limit takes a number"))
        .or(if smoke { Some(16) } else { None });
    let policy = DetectionPolicy::DefiniteOnly;

    let mut circuit_rows = Vec::new();
    for (name, _) in ZOO {
        if only.as_deref().is_some_and(|o| o != name) {
            continue;
        }
        let w: ZooWorkload = build_zoo(name).expect("registry member builds");
        let universe =
            FaultUniverse::stuck_nodes(&w.net).union(FaultUniverse::stuck_transistors(&w.net));
        let run_once = |collapse: bool| -> CampaignReport {
            let registry = Registry::new();
            let mut c = Campaign::new(&w.net)
                .faults(universe.clone())
                .patterns(&w.patterns)
                .outputs(&w.outputs)
                .backend(Backend::Concurrent(ConcurrentConfig {
                    policy,
                    ..ConcurrentConfig::paper()
                }))
                .collapse(collapse)
                .with_telemetry(&registry);
            if let Some(n) = pattern_limit {
                c = c.pattern_limit(n);
            }
            c.run()
        };

        let plain_reps: Vec<CampaignReport> = (0..reps).map(|_| run_once(false)).collect();
        let collapsed_reps: Vec<CampaignReport> = (0..reps).map(|_| run_once(true)).collect();
        // The hard gate: a collapsed campaign must grade exactly like
        // the plain one — same detections, same coverage, same faults.
        let reference = detection_fingerprint(&plain_reps[0]);
        let detected = plain_reps[0].detected();
        for r in plain_reps.iter().chain(&collapsed_reps) {
            assert_eq!(
                (r.run.num_faults, r.detected(), detection_fingerprint(r)),
                (universe.len(), detected, reference),
                "{name}: collapsed/plain parity broken"
            );
        }
        let plain = stats::median_by(plain_reps, |r| r.wall_seconds);
        let collapsed = stats::median_by(collapsed_reps, |r| r.wall_seconds);
        let cstats = collapsed
            .collapse
            .expect("a collapsed campaign archives its class statistics");
        assert!(
            cstats.simulated_faults < cstats.total_faults,
            "{name}: collapsing found no reduction ({} of {} faults simulated)",
            cstats.simulated_faults,
            cstats.total_faults,
        );

        let pps =
            |r: &CampaignReport| r.patterns_total as f64 / r.wall_seconds.max(f64::MIN_POSITIVE);
        let counter = |r: &CampaignReport, k: &str| r.metrics.counters.get(k).copied().unwrap_or(0);
        let gated_skips = counter(&collapsed, "core.gated_skips");
        let reduction = cstats.simulated_faults as f64 / cstats.total_faults as f64;
        let speedup = pps(&collapsed) / pps(&plain).max(f64::MIN_POSITIVE);
        eprintln!(
            "{name}: {} -> {} faults ({} classes), {} patterns — plain {:.2} pat/s, \
             collapsed {:.2} pat/s ({speedup:.2}x, {gated_skips} gated skips) — parity ok",
            cstats.total_faults,
            cstats.simulated_faults,
            cstats.classes,
            plain.patterns_total,
            pps(&plain),
            pps(&collapsed),
        );
        circuit_rows.push(format!(
            "    {{\"name\": \"{name}\", \"faults\": {}, \"patterns\": {}, \
             \"detected\": {detected}, \"detections_fnv1a\": \"{reference:016x}\",\n     \
             \"plain\": {{\"wall_seconds\": {:.4}, \"patterns_per_second\": {:.2}}},\n     \
             \"collapsed\": {{\"wall_seconds\": {:.4}, \"patterns_per_second\": {:.2}, \
             \"total_faults\": {}, \"simulated_faults\": {}, \"classes\": {}, \
             \"gated_skips\": {gated_skips}}},\n     \
             \"fault_reduction\": {reduction:.4}, \"collapse_speedup\": {speedup:.4}}}",
            universe.len(),
            plain.patterns_total,
            plain.wall_seconds,
            pps(&plain),
            collapsed.wall_seconds,
            pps(&collapsed),
            cstats.total_faults,
            cstats.simulated_faults,
            cstats.classes,
        ));
    }
    assert!(
        !circuit_rows.is_empty(),
        "--circuit filtered everything out (see fmossim_testgen::zoo::ZOO)"
    );

    println!("{{");
    println!("  \"format\": \"fmossim-evalsuite-collapse\",");
    println!("  \"version\": 1,");
    println!("  \"smoke\": {smoke},");
    println!("  \"policy\": \"definite-only\",");
    println!("  \"universe\": \"all\",");
    println!("  \"reps\": {reps},");
    println!(
        "  \"pattern_limit\": {},",
        pattern_limit.map_or("null".into(), |n| n.to_string())
    );
    println!(
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    println!("  \"circuits\": [");
    println!("{}", circuit_rows.join(",\n"));
    println!("  ]");
    println!("}}");
}

/// The `--serve` A/B: N campaigns of one zoo circuit, served
/// concurrently with a warm good-tape cache versus run sequentially
/// offline with a per-run record pass. Emits the `BENCH_serve.json`
/// document on stdout and asserts served/offline grading parity.
fn serve_ab() {
    use fmossim_campaign::json;
    use fmossim_serve::{request, served_config, Server, ServerConfig};
    use std::time::{Duration, Instant};

    let circuit = arg_value("--circuit").unwrap_or_else(|| "ram4x4".into());
    let requests: usize = arg_value("--requests")
        .map(|s| s.parse().expect("--requests takes a number"))
        .unwrap_or(8);
    assert!(requests >= 2, "--requests needs at least a warmup + one");
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let workers = threads.min(4);
    // One shard per worker: every extra shard replays the whole tape
    // once more, so over-sharding only inflates CPU on a small host.
    let shards = workers;

    // B side: the same N campaigns back to back, offline — the
    // workflow the server replaces. Every run records its own tape.
    let w = build_zoo(&circuit).expect("zoo circuit");
    let universe = FaultUniverse::stuck_nodes(&w.net);
    let offline_one = || -> CampaignReport {
        Campaign::new(&w.net)
            .faults(universe.clone())
            .patterns(&w.patterns)
            .outputs(&w.outputs)
            .backend(Backend::Parallel(ParallelConfig {
                jobs: Jobs::Fixed(workers),
                sim: served_config(),
                shards: Some(shards),
                ..ParallelConfig::default()
            }))
            .run()
    };
    let offline_start = Instant::now();
    let offline_reports: Vec<CampaignReport> = (0..requests).map(|_| offline_one()).collect();
    let offline_wall = offline_start.elapsed().as_secs_f64();
    let reference = detection_fingerprint(&offline_reports[0]);
    let detected = offline_reports[0].detected();
    let offline_record: f64 = offline_reports
        .iter()
        .map(|r| r.tape_record_seconds.unwrap_or(0.0))
        .sum();

    // A side: an in-process server. The first submission warms the
    // tape cache; the remaining N-1 are issued concurrently and all
    // replay the cached tape.
    let server = Server::bind(&ServerConfig {
        workers,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    std::thread::spawn(move || server.run());

    let submit = |circuit: &str| -> String {
        let body = format!("{{\"circuit\":\"{circuit}\",\"shards\":{shards}}}");
        let resp = request(addr, "POST", "/campaigns", Some(&body)).expect("POST /campaigns");
        assert_eq!(resp.status, 202, "{}", resp.body_str().unwrap_or("?"));
        json::parse(resp.body_str().expect("utf8"))
            .expect("json")
            .get("id")
            .and_then(json::Value::as_str)
            .expect("id")
            .to_string()
    };
    let wait = |id: &str| -> json::Value {
        let deadline = Instant::now() + Duration::from_secs(300);
        loop {
            let resp = request(addr, "GET", &format!("/campaigns/{id}"), None).expect("GET status");
            let doc = json::parse(resp.body_str().expect("utf8")).expect("json");
            let status = doc
                .get("status")
                .and_then(json::Value::as_str)
                .unwrap_or("?");
            if matches!(status, "done" | "cancelled" | "failed") {
                assert_eq!(status, "done", "{id} ended {status}");
                return doc;
            }
            assert!(Instant::now() < deadline, "{id} stuck");
            std::thread::sleep(Duration::from_millis(10));
        }
    };
    let report_of = |doc: &json::Value| -> CampaignReport {
        CampaignReport::from_json(&doc.get("report").expect("report").to_string())
            .expect("report parses")
    };

    let served_start = Instant::now();
    let warm_doc = wait(&submit(&circuit));
    let warmup_seconds = served_start.elapsed().as_secs_f64();
    let ids: Vec<String> = (0..requests - 1).map(|_| submit(&circuit)).collect();
    let served_reports: Vec<CampaignReport> = {
        let mut reports = vec![report_of(&warm_doc)];
        reports.extend(ids.iter().map(|id| report_of(&wait(id))));
        reports
    };
    let served_wall = served_start.elapsed().as_secs_f64();

    // Grading parity is the hard gate, exactly as in the main suite.
    for (i, r) in served_reports.iter().enumerate() {
        assert_eq!(
            (r.detected(), detection_fingerprint(r)),
            (detected, reference),
            "served request {i} diverged from the offline reference"
        );
    }
    let warm_hits = served_reports[1..]
        .iter()
        .filter(|r| r.tape_record_seconds == Some(0.0))
        .count();

    let metrics = request(addr, "GET", "/metrics", None).expect("GET /metrics");
    let text = metrics.body_str().expect("utf8");
    MetricsSnapshot::lint_prometheus(text)
        .unwrap_or_else(|(line, msg)| panic!("/metrics lint failed (line {line}): {msg}"));
    let counter = |name: &str| -> u64 {
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let hits = counter("fmossim_serve_cache_hits");
    let misses = counter("fmossim_serve_cache_misses");

    eprintln!(
        "{circuit}: {requests} campaigns — served {served_wall:.3}s \
         (warmup {warmup_seconds:.3}s, {warm_hits} warm replays, cache {hits} hit / {misses} miss) \
         vs offline {offline_wall:.3}s ({offline_record:.3}s re-recording tapes) — parity ok"
    );
    println!("{{");
    println!("  \"format\": \"fmossim-evalsuite-serve\",");
    println!("  \"version\": 1,");
    println!("  \"circuit\": \"{circuit}\",");
    println!("  \"requests\": {requests},");
    println!("  \"hardware_threads\": {threads},");
    println!("  \"workers\": {workers},");
    println!("  \"shards\": {shards},");
    println!("  \"detected\": {detected},");
    println!("  \"detections_fnv1a\": \"{reference:016x}\",");
    println!(
        "  \"offline\": {{\"wall_seconds\": {offline_wall:.4}, \
         \"tape_record_seconds\": {offline_record:.4}}},"
    );
    println!(
        "  \"served\": {{\"wall_seconds\": {served_wall:.4}, \
         \"warmup_seconds\": {warmup_seconds:.4}, \"warm_replays\": {warm_hits}, \
         \"cache_hits\": {hits}, \"cache_misses\": {misses}, \
         \"cache_hit_rate\": {:.4}}},",
        hits as f64 / (hits + misses).max(1) as f64,
    );
    println!(
        "  \"served_speedup\": {:.4}",
        offline_wall / served_wall.max(f64::MIN_POSITIVE)
    );
    println!("}}");
}
