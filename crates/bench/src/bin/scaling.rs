//! Regenerates the paper's §5 scaling comparison (text, p. 718–719):
//!
//! > "Comparing these results to the time required for RAM64, we see
//! > that both the time to simulate the good circuit alone and the time
//! > for concurrent simulation has scaled up by a factor of 9, while
//! > the time for serial simulation has scaled by a factor of 37. …
//! > concurrent simulation time scales as the size of the circuit times
//! > the number of patterns, assuming the number of faults is
//! > proportional to the circuit size. Serial simulation time, on the
//! > other hand, scales as the product of all three factors."
//!
//! RAM256 totals in the paper: good alone 25.3 min, concurrent 202 min
//! (3.4 h), serial 15 169 min (10.4 days).
//!
//! Usage: `scaling [--sizes 8,16,32]` — sweeping more sizes shows the
//! quadratic (good, concurrent) vs. cubic (serial) growth directly.

use fmossim_bench::{arg_value, compare_row, good_only_seconds, paper_universe, ram_with_bridges};
use fmossim_campaign::{Backend, Campaign};
use fmossim_core::ConcurrentConfig;
use fmossim_testgen::TestSequence;

struct Row {
    label: String,
    faults: usize,
    patterns: usize,
    good: f64,
    concurrent: f64,
    serial_est: f64,
    detected: usize,
}

fn measure(dim: usize) -> Row {
    let (ram, bridges) = ram_with_bridges(dim, dim);
    let universe = paper_universe(&ram, bridges);
    let seq = TestSequence::full(&ram);
    let (good_total, good_avg) = good_only_seconds(&ram, seq.patterns());
    let report = Campaign::new(ram.network())
        .faults(universe.clone())
        .patterns(seq.patterns())
        .outputs(ram.observed_outputs())
        .backend(Backend::Concurrent(ConcurrentConfig::paper()))
        .run();
    let serial_est: f64 = report
        .run
        .patterns_to_detect()
        .iter()
        .map(|&p| p as f64 * good_avg)
        .sum();
    Row {
        label: format!("RAM{} ({})", dim * dim, ram.stats()),
        faults: universe.len(),
        patterns: seq.len(),
        good: good_total,
        concurrent: report.run.total_seconds,
        serial_est,
        detected: report.detected(),
    }
}

fn main() {
    let sizes: Vec<usize> = arg_value("--sizes")
        .unwrap_or_else(|| "8,16".into())
        .split(',')
        .map(|s| s.trim().parse().expect("--sizes takes numbers"))
        .collect();
    let rows: Vec<Row> = sizes.iter().map(|&d| measure(d)).collect();

    println!("== Scaling: good vs. concurrent vs. serial ==");
    println!("circuit,faults,patterns,good_s,concurrent_s,serial_est_s,detected");
    for r in &rows {
        println!(
            "\"{}\",{},{},{:.4},{:.4},{:.4},{}",
            r.label, r.faults, r.patterns, r.good, r.concurrent, r.serial_est, r.detected
        );
    }
    if rows.len() >= 2 {
        let a = &rows[0];
        let b = &rows[1];
        println!();
        println!(
            "{}",
            compare_row(
                "good-alone scale factor",
                format!("{:.1}x", b.good / a.good),
                "9x"
            )
        );
        println!(
            "{}",
            compare_row(
                "concurrent scale factor",
                format!("{:.1}x", b.concurrent / a.concurrent),
                "9x"
            )
        );
        println!(
            "{}",
            compare_row(
                "serial scale factor",
                format!("{:.1}x", b.serial_est / a.serial_est),
                "37x"
            )
        );
        println!(
            "{}",
            compare_row(
                "serial:concurrent ratio (small)",
                format!("{:.1}x", a.serial_est / a.concurrent),
                "18x (RAM64)"
            )
        );
        println!(
            "{}",
            compare_row(
                "serial:concurrent ratio (large)",
                format!("{:.1}x", b.serial_est / b.concurrent),
                "75x (RAM256: 15169/202)"
            )
        );
        println!(
            "{}",
            compare_row(
                "concurrent tracks good as circuits grow",
                format!(
                    "{:.1}x vs {:.1}x",
                    b.concurrent / a.concurrent,
                    b.good / a.good
                ),
                "both 9x"
            )
        );
    }
}
