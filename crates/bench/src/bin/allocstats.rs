//! Allocator-traffic measurements for the arena/SoA data layout.
//!
//! Two measurements, one JSON document:
//!
//! 1. **Batch-rebuild A/B.** The adaptive backend rebuilds one
//!    `ConcurrentSim` per shard at every batch boundary; each rebuild
//!    used to allocate a fresh engine, record store, structural tables
//!    and queues — all sized for the network. The
//!    [`ArenaPool`](fmossim_par::ArenaPool) recycles those buffers
//!    across batches instead. This binary runs the identical adaptive
//!    campaign with [`AdaptiveConfig::reuse_arenas`] off and on,
//!    counts every `alloc`/`realloc` call and requested byte through a
//!    counting `#[global_allocator]` wrapper around [`System`], and
//!    asserts the detection sets are bit-identical.
//! 2. **Steady-state hot loop.** A single `ConcurrentSim` is warmed
//!    with two passes of the pattern sequence (growing every scratch
//!    buffer — the flat event queue, the strobe snapshot, the record
//!    lists — to its fixed point), then a third pass is measured
//!    pattern by pattern. The flat-queue/CSR layout targets **zero**
//!    allocator calls per pattern here; the binary asserts it.
//!
//! Usage: `allocstats [--dim 8] [--batch 8] [--jobs 2] [--sample K]`
//!
//! Allocation *counts* are deterministic per mode on a given build
//! (the campaign itself is deterministic; only wall-clock varies), so
//! the printed delta is a stable measurement, not a noisy benchmark.

use fmossim_bench::arg_value;
use fmossim_campaign::{AdaptiveConfig, Backend, Campaign, CampaignReport};
use fmossim_circuits::Ram;
use fmossim_core::{ConcurrentConfig, ConcurrentSim};
use fmossim_faults::{FaultUniverse, DEFAULT_SEED};
use fmossim_par::Jobs;
use fmossim_testgen::TestSequence;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts calls into the system allocator. `Relaxed` is enough: the
/// totals are read only between runs, after the worker threads have
/// been joined.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One mode's measurement: allocator traffic across the whole run.
struct Measurement {
    calls: u64,
    bytes: u64,
    wall_seconds: f64,
    report: CampaignReport,
}

fn measure(
    ram: &Ram,
    universe: &FaultUniverse,
    patterns: &[fmossim_core::Pattern],
    config: AdaptiveConfig,
) -> Measurement {
    let calls0 = ALLOC_CALLS.load(Ordering::Relaxed);
    let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let report = Campaign::new(ram.network())
        .faults(universe.clone())
        .patterns(patterns)
        .outputs(ram.observed_outputs())
        .backend(Backend::Adaptive(config))
        .run();
    Measurement {
        calls: ALLOC_CALLS.load(Ordering::Relaxed) - calls0,
        bytes: ALLOC_BYTES.load(Ordering::Relaxed) - bytes0,
        wall_seconds: report.wall_seconds,
        report,
    }
}

fn main() {
    let parse = |name: &str| arg_value(name).and_then(|s| s.parse::<usize>().ok());
    let dim = parse("--dim").unwrap_or(8);
    let batch = parse("--batch").unwrap_or(8);
    let jobs = parse("--jobs").unwrap_or(2);
    let sample = parse("--sample");

    let ram = Ram::new(dim, dim);
    let seq = TestSequence::march_only(&ram);
    let mut universe = FaultUniverse::stuck_nodes(ram.network());
    if let Some(k) = sample {
        universe = universe.sample(k, DEFAULT_SEED);
    }
    let config = |reuse_arenas| AdaptiveConfig {
        jobs: Jobs::Fixed(jobs),
        reuse_arenas,
        ..AdaptiveConfig::paper(batch)
    };

    // Warm-up run so one-time lazy initialisation (thread stacks,
    // stdio buffers) is not attributed to the first measured mode.
    let _ = measure(&ram, &universe, seq.patterns(), config(false));

    let fresh = measure(&ram, &universe, seq.patterns(), config(false));
    let pooled = measure(&ram, &universe, seq.patterns(), config(true));
    assert_eq!(
        fresh.report.detections(),
        pooled.report.detections(),
        "arena reuse changed the detection set"
    );

    // Steady-state hot loop: warm a single simulator with two full
    // passes (all detectable faults drop in pass one; pass two runs
    // the surviving set over the periodic state trajectory, growing
    // every scratch buffer to its fixed point), then measure pass
    // three pattern by pattern. With the arena layout the loop should
    // not touch the allocator at all.
    let (steady_calls, steady_max, steady_patterns) = {
        let mut sim =
            ConcurrentSim::new(ram.network(), universe.faults(), ConcurrentConfig::paper());
        let outputs = ram.observed_outputs();
        for pass in 0..2 {
            for (pi, p) in seq.patterns().iter().enumerate() {
                let _ = sim.step_pattern(p, outputs, pass * seq.len() + pi);
            }
        }
        let mut total = 0u64;
        let mut max = 0u64;
        for (pi, p) in seq.patterns().iter().enumerate() {
            let c0 = ALLOC_CALLS.load(Ordering::Relaxed);
            let _ = sim.step_pattern(p, outputs, 2 * seq.len() + pi);
            let d = ALLOC_CALLS.load(Ordering::Relaxed) - c0;
            total += d;
            max = max.max(d);
        }
        (total, max, seq.len())
    };

    let saved_calls = fresh.calls.saturating_sub(pooled.calls);
    let saved_bytes = fresh.bytes.saturating_sub(pooled.bytes);
    let batches = fresh.report.batches.len();
    println!("{{");
    println!("  \"circuit\": \"RAM{} ({})\",", dim * dim, ram.stats());
    println!("  \"faults\": {},", universe.len());
    println!("  \"patterns\": {},", seq.len());
    println!("  \"batch\": {batch},");
    println!("  \"batches\": {batches},");
    println!("  \"jobs\": {jobs},");
    println!(
        "  \"fresh\":  {{\"alloc_calls\": {}, \"alloc_bytes\": {}, \"wall_seconds\": {:.4}}},",
        fresh.calls, fresh.bytes, fresh.wall_seconds
    );
    println!(
        "  \"pooled\": {{\"alloc_calls\": {}, \"alloc_bytes\": {}, \"wall_seconds\": {:.4}}},",
        pooled.calls, pooled.bytes, pooled.wall_seconds
    );
    println!(
        "  \"saved\":  {{\"alloc_calls\": {saved_calls}, \"alloc_bytes\": {saved_bytes}, \
         \"calls_pct\": {:.2}, \"bytes_pct\": {:.2}}},",
        100.0 * saved_calls as f64 / fresh.calls.max(1) as f64,
        100.0 * saved_bytes as f64 / fresh.bytes.max(1) as f64,
    );
    println!(
        "  \"steady_state\": {{\"patterns\": {steady_patterns}, \"alloc_calls\": {steady_calls}, \
         \"max_per_pattern\": {steady_max}}}"
    );
    println!("}}");
    assert!(
        pooled.calls < fresh.calls,
        "arena pool should reduce allocator calls ({} -> {})",
        fresh.calls,
        pooled.calls
    );
    assert_eq!(
        steady_calls, 0,
        "steady-state concurrent loop should make zero per-pattern allocations"
    );
}
