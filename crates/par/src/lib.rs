//! Fault-parallel execution for the FMOSSIM reproduction.
//!
//! The paper's concurrent algorithm grades many faulty circuits in one
//! simulation pass, but a single [`fmossim_core::ConcurrentSim`] is
//! strictly sequential. This crate adds the execution layer above it:
//!
//! * [`ShardPlan`] partitions a [`fmossim_faults::FaultUniverse`] into
//!   `K` disjoint shards — [`ShardStrategy::RoundRobin`],
//!   [`ShardStrategy::Contiguous`], or [`ShardStrategy::CostEstimated`]
//!   (greedy LPT over per-fault footprint costs).
//! * [`ParallelSim`] runs one `ConcurrentSim` per shard on a pool of
//!   scoped `std::thread` workers (no extra dependencies). Workers pull
//!   shards from a shared queue, so oversharding
//!   ([`ParallelConfig::shards`]` > `[`ParallelConfig::jobs`]) load
//!   balances uneven shards. Within each shard the usual per-shard
//!   drop-on-detect applies: a detected fault stops consuming time.
//! * The per-shard [`fmossim_core::RunReport`]s are folded by
//!   [`fmossim_core::RunReport::merge`] into a single report whose
//!   detection set and coverage are identical to a one-shard run —
//!   sharding is a pure throughput lever.
//!
//! The classical trade-off of fault-partitioned simulation — every
//! shard re-simulating the *good* circuit — is retired by the
//! record/replay tape: the good machine is recorded once per run
//! ([`fmossim_core::GoodTape`], on by default via
//! [`ParallelConfig::reuse_good_tape`]) and each shard *replays* the
//! shared log, re-deriving triggering and private events without
//! re-settling the good circuit. Replay is bit-identical to recompute,
//! so the remaining serial fraction is one good pass regardless of the
//! shard count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod driver;
mod jobs;
mod plan;

pub use batch::{run_batch, ArenaPool, BatchRun, CostModel, ResumePoint, DEFAULT_COST_ALPHA};
pub use driver::{ParallelConfig, ParallelRun, ParallelSim, ShardOutcome, TapeStats};
pub use jobs::{Jobs, AUTO_COST_PER_WORKER};
pub use plan::{fault_cost, ShardPlan, ShardStrategy};
