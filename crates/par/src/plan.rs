//! Shard planning: how a fault universe is split across workers.

use fmossim_faults::{Fault, FaultId, FaultUniverse};
use fmossim_netlist::Network;

/// How the fault universe is partitioned into shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Fault `i` goes to shard `i % k`. Cheap and usually well
    /// balanced, because structurally related faults (the two stuck
    /// values of one node, the faults of one memory row) are enumerated
    /// adjacently and get dealt to different shards.
    #[default]
    RoundRobin,
    /// Contiguous id ranges of near-equal length. Maximises locality of
    /// each shard's fault footprints (faults of the same circuit region
    /// share one shard), at the price of correlated detection times.
    Contiguous,
    /// Greedy longest-processing-time assignment using a per-fault cost
    /// estimate (the size of the fault's structural footprint): faults
    /// are placed, most expensive first, onto the currently
    /// least-loaded shard. Deterministic for a given universe.
    CostEstimated,
}

impl ShardStrategy {
    /// All strategies, for sweeps and CLIs.
    pub const ALL: [ShardStrategy; 3] = [
        ShardStrategy::RoundRobin,
        ShardStrategy::Contiguous,
        ShardStrategy::CostEstimated,
    ];

    /// Parses the CLI spelling (`round-robin`, `contiguous`, `cost`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "round-robin" => Some(ShardStrategy::RoundRobin),
            "contiguous" => Some(ShardStrategy::Contiguous),
            "cost" => Some(ShardStrategy::CostEstimated),
            _ => None,
        }
    }

    /// The CLI spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ShardStrategy::RoundRobin => "round-robin",
            ShardStrategy::Contiguous => "contiguous",
            ShardStrategy::CostEstimated => "cost",
        }
    }
}

impl std::fmt::Display for ShardStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The simulation cost proxy for one fault: the size of its structural
/// footprint (nodes whose activity can trigger the faulty circuit),
/// plus one so that even footprint-free faults carry weight.
#[must_use]
pub fn fault_cost(net: &Network, fault: &Fault) -> usize {
    fault.footprint(net).len() + 1
}

/// A partition of a [`FaultUniverse`] into shards, each identified by
/// the parent universe's fault ids (ascending within a shard). Empty
/// shards are dropped, so a plan over a small universe may have fewer
/// shards than requested.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    shards: Vec<Vec<FaultId>>,
    strategy: ShardStrategy,
}

impl ShardPlan {
    /// Plans `k` shards over `universe` with the given strategy.
    /// `net` is consulted only by [`ShardStrategy::CostEstimated`].
    #[must_use]
    pub fn build(
        net: &Network,
        universe: &FaultUniverse,
        k: usize,
        strategy: ShardStrategy,
    ) -> Self {
        let mut shards = match strategy {
            ShardStrategy::RoundRobin => universe.split_round_robin(k),
            ShardStrategy::Contiguous => universe.split_contiguous(k),
            ShardStrategy::CostEstimated => split_by_cost(net, universe, k),
        };
        shards.retain(|s| !s.is_empty());
        ShardPlan { shards, strategy }
    }

    /// Number of (non-empty) shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The strategy that produced this plan.
    #[must_use]
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// The global fault ids of shard `s`, ascending.
    #[must_use]
    pub fn shard(&self, s: usize) -> &[FaultId] {
        &self.shards[s]
    }

    /// Iterates all shards in index order.
    pub fn shards(&self) -> impl ExactSizeIterator<Item = &[FaultId]> {
        self.shards.iter().map(Vec::as_slice)
    }

    /// Plans `k` shards over the given fault ids by greedy LPT over an
    /// arbitrary per-fault weight — the re-planning entry point of the
    /// adaptive backend, where the weights are *measured* (EWMA-smoothed
    /// seconds from [`crate::CostModel`]) rather than the static
    /// footprint estimate [`ShardStrategy::CostEstimated`] uses.
    ///
    /// `ids` may be any subset of a parent universe (e.g. the faults
    /// surviving after a batch); shard members keep those global ids.
    /// Deterministic: faults are placed heaviest first (ties broken by
    /// ascending id) onto the currently lightest shard (ties broken by
    /// lowest shard index); non-finite or negative weights are treated
    /// as zero. The resulting plan reports
    /// [`ShardStrategy::CostEstimated`] as its strategy.
    ///
    /// ```
    /// use fmossim_faults::FaultId;
    /// use fmossim_par::ShardPlan;
    ///
    /// let ids: Vec<FaultId> = (0..5).map(FaultId).collect();
    /// // One heavy fault, four light ones: LPT isolates the heavy one.
    /// let plan = ShardPlan::build_weighted(&ids, 2, |id| {
    ///     if id.index() == 3 { 10.0 } else { 1.0 }
    /// });
    /// assert_eq!(plan.num_shards(), 2);
    /// assert_eq!(plan.shard(0), &[FaultId(3)]);
    /// assert_eq!(plan.shard(1).len(), 4);
    /// ```
    #[must_use]
    pub fn build_weighted(ids: &[FaultId], k: usize, weight: impl Fn(FaultId) -> f64) -> Self {
        let k = k.max(1);
        let sane = |w: f64| if w.is_finite() && w > 0.0 { w } else { 0.0 };
        let mut order: Vec<(FaultId, f64)> = ids.iter().map(|&id| (id, sane(weight(id)))).collect();
        order.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("weights sanitised to finite")
                .then(a.0.index().cmp(&b.0.index()))
        });
        let mut shards = vec![Vec::new(); k];
        let mut loads = vec![0.0f64; k];
        for (id, w) in order {
            let s = (0..k)
                .min_by(|&a, &b| {
                    loads[a]
                        .partial_cmp(&loads[b])
                        .expect("loads are finite")
                        .then(a.cmp(&b))
                })
                .expect("k >= 1");
            shards[s].push(id);
            loads[s] += w;
        }
        for shard in &mut shards {
            shard.sort_unstable_by_key(|id| id.index());
        }
        shards.retain(|s| !s.is_empty());
        ShardPlan {
            shards,
            strategy: ShardStrategy::CostEstimated,
        }
    }

    /// The plan restricted to the fault ids `alive` accepts, preserving
    /// every surviving fault's shard assignment (empty shards are
    /// dropped). This is the *frozen-plan* path of batched execution:
    /// detected faults leave, but nothing is re-balanced — the baseline
    /// the adaptive backend's re-planning is measured against.
    #[must_use]
    pub fn retain(&self, alive: impl Fn(FaultId) -> bool) -> Self {
        let mut shards: Vec<Vec<FaultId>> = self
            .shards
            .iter()
            .map(|s| s.iter().copied().filter(|&id| alive(id)).collect())
            .collect();
        shards.retain(|s: &Vec<FaultId>| !s.is_empty());
        ShardPlan {
            shards,
            strategy: self.strategy,
        }
    }

    /// Estimated cost of every shard (sum of [`fault_cost`] over its
    /// faults) — the quantity [`ShardStrategy::CostEstimated`]
    /// balances. Useful for inspecting plan quality.
    #[must_use]
    pub fn shard_costs(&self, net: &Network, universe: &FaultUniverse) -> Vec<usize> {
        self.shards
            .iter()
            .map(|ids| {
                ids.iter()
                    .map(|&id| fault_cost(net, &universe.fault(id)))
                    .sum()
            })
            .collect()
    }
}

/// Greedy LPT: faults sorted by descending cost (id-ascending on ties)
/// each go to the currently cheapest shard (lowest index on ties).
fn split_by_cost(net: &Network, universe: &FaultUniverse, k: usize) -> Vec<Vec<FaultId>> {
    let k = k.max(1);
    let mut order: Vec<(FaultId, usize)> = universe
        .iter()
        .map(|(id, f)| (id, fault_cost(net, &f)))
        .collect();
    order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
    let mut shards = vec![Vec::new(); k];
    let mut loads = vec![0usize; k];
    for (id, cost) in order {
        let s = loads
            .iter()
            .enumerate()
            .min_by_key(|&(i, &l)| (l, i))
            .map(|(i, _)| i)
            .expect("k >= 1");
        shards[s].push(id);
        loads[s] += cost;
    }
    for shard in &mut shards {
        shard.sort_unstable_by_key(|id| id.index());
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_netlist::{Drive, Logic, Size, TransistorType};

    fn chain_net(n: usize) -> Network {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let mut prev = net.add_input("A", Logic::L);
        for i in 0..n {
            let out = net.add_storage(format!("S{i}"), Size::S1);
            net.add_transistor(TransistorType::P, Drive::D2, prev, vdd, out);
            net.add_transistor(TransistorType::N, Drive::D2, prev, out, gnd);
            prev = out;
        }
        net
    }

    fn assert_partition(plan: &ShardPlan, universe: &FaultUniverse) {
        let mut seen: Vec<FaultId> = plan.shards().flatten().copied().collect();
        seen.sort_unstable_by_key(|id| id.index());
        let all: Vec<FaultId> = universe.iter().map(|(id, _)| id).collect();
        assert_eq!(seen, all, "every fault in exactly one shard");
    }

    #[test]
    fn every_strategy_partitions_exactly() {
        let net = chain_net(6);
        let universe =
            FaultUniverse::stuck_nodes(&net).union(FaultUniverse::stuck_transistors(&net));
        for strategy in ShardStrategy::ALL {
            for k in [1, 2, 3, 7, universe.len() + 3] {
                let plan = ShardPlan::build(&net, &universe, k, strategy);
                assert!(plan.num_shards() <= k.max(1));
                assert!(plan.num_shards() >= 1);
                assert!(plan.shards().all(|s| !s.is_empty()));
                assert_partition(&plan, &universe);
            }
        }
    }

    #[test]
    fn cost_estimated_balances_loads() {
        let net = chain_net(8);
        let universe =
            FaultUniverse::stuck_nodes(&net).union(FaultUniverse::stuck_transistors(&net));
        let plan = ShardPlan::build(&net, &universe, 4, ShardStrategy::CostEstimated);
        let costs = plan.shard_costs(&net, &universe);
        assert_eq!(costs.len(), 4);
        let max = *costs.iter().max().unwrap();
        let min = *costs.iter().min().unwrap();
        // LPT guarantees the spread is at most one item's cost; our
        // items are small, so the shards end up close.
        let biggest_item = universe
            .iter()
            .map(|(_, f)| fault_cost(&net, &f))
            .max()
            .unwrap();
        assert!(
            max - min <= biggest_item,
            "spread {max}-{min} exceeds one item ({biggest_item})"
        );
    }

    #[test]
    fn plans_are_deterministic() {
        let net = chain_net(5);
        let universe = FaultUniverse::stuck_nodes(&net);
        for strategy in ShardStrategy::ALL {
            let a = ShardPlan::build(&net, &universe, 3, strategy);
            let b = ShardPlan::build(&net, &universe, 3, strategy);
            let av: Vec<_> = a.shards().collect();
            let bv: Vec<_> = b.shards().collect();
            assert_eq!(av, bv);
        }
    }

    #[test]
    fn strategy_parse_roundtrip() {
        for s in ShardStrategy::ALL {
            assert_eq!(ShardStrategy::parse(s.name()), Some(s));
            assert_eq!(s.to_string(), s.name());
        }
        assert_eq!(ShardStrategy::parse("bogus"), None);
    }

    #[test]
    fn empty_universe_yields_no_shards() {
        let net = chain_net(1);
        let plan = ShardPlan::build(&net, &FaultUniverse::new(), 4, ShardStrategy::RoundRobin);
        assert_eq!(plan.num_shards(), 0);
    }
}
