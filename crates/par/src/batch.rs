//! Batch-level execution mechanics for *adaptive* parallel runs: a
//! measured per-fault cost model ([`CostModel`]) and a pool that runs
//! one pattern batch over a [`ShardPlan`] ([`run_batch`]), resuming
//! carried fault state at every batch boundary.
//!
//! [`ParallelSim`](crate::ParallelSim) plans once and runs the whole
//! sequence; the adaptive loop (implemented as a campaign backend on
//! top of this module) instead iterates `record → replay-into-shards →
//! merge → re-plan`. Between batches the surviving faults are
//! re-partitioned from *measured* shard times — which is only sound
//! because a faulty circuit's whole mid-sequence state is portable: the
//! good machine is carried by the
//! [`TapeRecorder`](fmossim_core::TapeRecorder), and each fault reduces
//! to a [`FaultSnapshot`] ([`fmossim_core::ConcurrentSim::export_fault`]
//! / [`resume`](fmossim_core::ConcurrentSim::resume)).

use crate::plan::{fault_cost, ShardPlan};
use fmossim_core::{
    ConcurrentConfig, ConcurrentSim, DenseState, FaultSnapshot, GoodTape, Pattern, RunReport,
    SimArena,
};
use fmossim_faults::{FaultId, FaultUniverse};
use fmossim_netlist::{Network, NodeId};
use fmossim_telemetry::Registry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;

/// A bag of recycled [`SimArena`]s shared by the shard workers of
/// consecutive [`run_batch`] calls.
///
/// Every shard simulator owns an arena — the switch engine (solver
/// scratch, event queues, per-node round stamps), the divergence-record
/// store, the flattened structural tables, the private-event queue and
/// all per-circuit flags, all sized for the network and fault count. A
/// batch driver rebuilds its shard simulators at every batch boundary,
/// so without reuse that whole buffer set is reallocated `shards ×
/// batches` times per run. Shards returning arenas here
/// ([`ArenaPool::put`]) let later shards skip the allocations
/// ([`ArenaPool::take`] + the in-place recycling inside
/// `ConcurrentSim::new_in` / `resume_in`); the pool never holds more
/// arenas than the widest batch's shard count. Reuse is bit-invisible:
/// a recycled arena is indistinguishable from a fresh one.
#[derive(Default)]
pub struct ArenaPool {
    arenas: Mutex<Vec<SimArena>>,
}

impl ArenaPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        ArenaPool::default()
    }

    /// Takes a recycled arena, if any shard has returned one.
    #[must_use]
    pub fn take(&self) -> Option<SimArena> {
        self.arenas.lock().expect("pool poisoned").pop()
    }

    /// Returns an arena for a later simulator build to reuse.
    pub fn put(&self, arena: SimArena) {
        self.arenas.lock().expect("pool poisoned").push(arena);
    }

    /// Arenas currently parked in the pool.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arenas.lock().expect("pool poisoned").len()
    }

    /// True iff no arena is parked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Default EWMA smoothing factor for [`CostModel::observe`]: half new
/// measurement, half history — reactive enough to follow the falling
/// live-fault curve, damped enough to ride out timer noise on short
/// batches.
pub const DEFAULT_COST_ALPHA: f64 = 0.5;

/// Per-fault simulation-cost estimates, seeded from the static
/// footprint proxy ([`fault_cost`]) and refined between batches from
/// measured shard times — the feedback signal the adaptive backend
/// re-plans with.
///
/// A shard's measured seconds are apportioned over its faults in
/// proportion to their current estimates, then folded into each
/// estimate with an exponentially weighted moving average. After the
/// first observation the estimates are in (approximate) seconds; only
/// their *ratios* matter to [`ShardPlan::build_weighted`].
///
/// ```
/// use fmossim_faults::{Fault, FaultId, FaultUniverse};
/// use fmossim_netlist::{Logic, Network, Size};
/// use fmossim_par::{CostModel, ShardPlan};
///
/// let mut net = Network::new();
/// let s = net.add_storage("S", Size::S1);
/// let fault = |v| Fault::NodeStuck { node: s, value: v };
/// let universe = FaultUniverse::from_faults(vec![fault(Logic::L), fault(Logic::H)]);
/// let mut model = CostModel::new(&net, &universe);
/// // Both faults start at the same static estimate...
/// assert_eq!(model.estimate(FaultId(0)), model.estimate(FaultId(1)));
/// // ...until a measured batch shows shard 1 (fault 1) running 3x longer.
/// let plan = ShardPlan::build_weighted(&[FaultId(0), FaultId(1)], 2, |_| 1.0);
/// model.observe(&plan, &[1.0, 3.0]);
/// assert!(model.estimate(FaultId(1)) > model.estimate(FaultId(0)));
/// ```
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Estimate per parent-universe fault id.
    est: Vec<f64>,
    alpha: f64,
}

impl CostModel {
    /// Seeds the model with the static footprint cost of every fault in
    /// `universe`, with the default smoothing factor
    /// ([`DEFAULT_COST_ALPHA`]).
    #[must_use]
    pub fn new(net: &Network, universe: &FaultUniverse) -> Self {
        CostModel::with_alpha(net, universe, DEFAULT_COST_ALPHA)
    }

    /// [`CostModel::new`] with an explicit EWMA factor in `(0, 1]`
    /// (1 = trust only the latest measurement; values are clamped into
    /// that range).
    #[must_use]
    pub fn with_alpha(net: &Network, universe: &FaultUniverse, alpha: f64) -> Self {
        CostModel {
            est: universe
                .iter()
                .map(|(_, f)| fault_cost(net, &f) as f64)
                .collect(),
            alpha: if alpha.is_finite() {
                alpha.clamp(f64::MIN_POSITIVE, 1.0)
            } else {
                DEFAULT_COST_ALPHA
            },
        }
    }

    /// The current estimate for one fault.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the seeding universe.
    #[must_use]
    pub fn estimate(&self, id: FaultId) -> f64 {
        self.est[id.index()]
    }

    /// Summed estimates over a set of fault ids (e.g. the survivors a
    /// re-plan must cover).
    #[must_use]
    pub fn total(&self, ids: &[FaultId]) -> f64 {
        ids.iter().map(|&id| self.estimate(id)).sum()
    }

    /// Folds one batch's measured per-shard seconds into the
    /// estimates. `shard_seconds[s]` is the measured wall-clock time of
    /// `plan.shard(s)`; it is apportioned over the shard's faults in
    /// proportion to their current estimates and EWMA-merged. Shards
    /// with non-positive measurements or all-zero estimates are
    /// skipped (no information).
    pub fn observe(&mut self, plan: &ShardPlan, shard_seconds: &[f64]) {
        for (s, ids) in plan.shards().enumerate() {
            let Some(&secs) = shard_seconds.get(s) else {
                continue;
            };
            if secs <= 0.0 || !secs.is_finite() {
                continue;
            }
            let base: f64 = ids.iter().map(|&id| self.estimate(id)).sum();
            if base <= 0.0 {
                continue;
            }
            let scale = secs / base;
            for &id in ids {
                let measured = self.est[id.index()] * scale;
                let e = &mut self.est[id.index()];
                *e += self.alpha * (measured - *e);
            }
        }
    }
}

/// The state a batch resumes from: the good machine at the batch
/// boundary plus every surviving fault's carried divergence, indexed by
/// parent-universe fault id.
///
/// Produced by the previous [`run_batch`] call's
/// [`BatchRun::survivors`] (folded into the id-indexed table) and the
/// [`TapeRecorder::good_state`](fmossim_core::TapeRecorder::good_state)
/// snapshot taken *before* recording the next batch.
#[derive(Clone, Debug)]
pub struct ResumePoint<'n> {
    /// The good machine's state at the boundary.
    pub good: DenseState<'n>,
    /// `snapshots[id.index()]` for every surviving fault; `None` for
    /// faults that were detected-and-dropped (they must not appear in
    /// the plan).
    pub snapshots: Vec<Option<FaultSnapshot>>,
}

/// Everything one [`run_batch`] call produces.
#[derive(Clone, Debug, Default)]
pub struct BatchRun {
    /// Per-shard reports (indexed by shard, detections relabelled to
    /// parent-universe fault ids and carrying *global* pattern
    /// indices).
    pub reports: Vec<RunReport>,
    /// Each shard's own wall-clock seconds, indexed by shard — the
    /// feedback signal for [`CostModel::observe`].
    pub shard_seconds: Vec<f64>,
    /// Carried state of every fault that survived the batch
    /// (undetected, or detected with dropping off), as
    /// `(parent id, snapshot)` in ascending id order per shard.
    pub survivors: Vec<(FaultId, FaultSnapshot)>,
}

/// Runs one pattern batch over `plan` on a pool of `workers` scoped
/// threads, replaying `tape` in every shard.
///
/// For the first batch pass `resume: None`: each shard starts a fresh
/// [`ConcurrentSim`] exactly as [`ParallelSim`](crate::ParallelSim)
/// would. For later batches pass the [`ResumePoint`] assembled at the
/// boundary; shard membership may differ arbitrarily from the previous
/// batch's plan — results are bit-identical either way.
///
/// `patterns` is the batch slice, `first_pattern` its offset in the
/// full sequence (detections carry global indices), and `tape` must be
/// this batch's recording from the single
/// [`TapeRecorder`](fmossim_core::TapeRecorder) that is carrying the
/// good machine across batches.
///
/// `telemetry` collects the batch's activity (pass
/// [`Registry::null`] when unused): every shard simulator publishes
/// into a per-shard [`Registry::fork`] that is merged back on the
/// collecting thread, plus the `par.*` shard timing metrics.
///
/// `arenas` is an optional [`ArenaPool`]: shards draw recycled
/// [`SimArena`]s from it and park theirs back when done, so
/// consecutive batches reuse the same buffer allocations. Pass `None`
/// to allocate fresh per shard (the pre-pool behaviour); results are
/// identical.
///
/// # Panics
///
/// Panics if a planned fault id has no snapshot in `resume`, or if the
/// tape does not match the batch.
#[allow(clippy::too_many_arguments)] // one call site, symmetric data
#[must_use]
pub fn run_batch(
    net: &Network,
    universe: &FaultUniverse,
    plan: &ShardPlan,
    workers: usize,
    sim: ConcurrentConfig,
    resume: Option<&ResumePoint<'_>>,
    tape: &GoodTape,
    patterns: &[Pattern],
    outputs: &[NodeId],
    first_pattern: usize,
    telemetry: &Registry,
    arenas: Option<&ArenaPool>,
) -> BatchRun {
    let n_shards = plan.num_shards();
    let workers = workers.clamp(1, n_shards.max(1));

    let run_shard = |s: usize| -> (RunReport, Vec<(FaultId, FaultSnapshot)>, Registry) {
        let shard_metrics = telemetry.fork();
        let ids = plan.shard(s);
        let shard_universe = universe.subset(ids);
        let recycled = arenas.and_then(ArenaPool::take);
        let mut shard_sim = match resume {
            None => match recycled {
                Some(arena) => ConcurrentSim::new_in(net, shard_universe.faults(), sim, arena),
                None => ConcurrentSim::new(net, shard_universe.faults(), sim),
            },
            Some(point) => {
                let snaps: Vec<FaultSnapshot> = ids
                    .iter()
                    .map(|id| {
                        point.snapshots[id.index()]
                            .clone()
                            .expect("planned fault has a carried snapshot")
                    })
                    .collect();
                match recycled {
                    Some(arena) => ConcurrentSim::resume_in(
                        net,
                        shard_universe.faults(),
                        sim,
                        &point.good,
                        &snaps,
                        arena,
                    ),
                    None => ConcurrentSim::resume(
                        net,
                        shard_universe.faults(),
                        sim,
                        &point.good,
                        &snaps,
                    ),
                }
            }
        };
        shard_sim.attach_metrics(&shard_metrics);
        let mut report = shard_sim.run_replayed_from(patterns, outputs, tape, first_pattern);
        report.relabel_faults(|local| ids[local.index()]);
        let survivors = ids
            .iter()
            .enumerate()
            .filter_map(|(k, &gid)| {
                shard_sim
                    .export_fault(FaultId(u32::try_from(k).expect("shard fits u32")))
                    .map(|snap| (gid, snap))
            })
            .collect();
        if let Some(pool) = arenas {
            pool.put(shard_sim.take_arena());
        }
        shard_metrics.counter("par.shards").inc();
        shard_metrics
            .gauge("par.shard.seconds")
            .add(report.total_seconds);
        (report, survivors, shard_metrics)
    };

    let mut out = BatchRun {
        reports: vec![RunReport::default(); n_shards],
        shard_seconds: vec![0.0; n_shards],
        survivors: Vec::new(),
    };
    let mut per_shard_survivors: Vec<Vec<(FaultId, FaultSnapshot)>> = vec![Vec::new(); n_shards];
    if n_shards <= 1 || workers == 1 {
        for (s, slot) in per_shard_survivors.iter_mut().enumerate() {
            let (report, survivors, shard_metrics) = run_shard(s);
            telemetry.merge(&shard_metrics);
            out.shard_seconds[s] = report.total_seconds;
            out.reports[s] = report;
            *slot = survivors;
        }
    } else {
        // Queue-pulling pool, the sibling of `ParallelSim::run_streaming`
        // (driver.rs). Kept separate rather than unified: that pool
        // streams completions to an observer and supports early
        // cancellation mid-run, while a batch is the unit of
        // cancellation here (the adaptive loop stops *between*
        // batches), so this one only collects. A fix to the queue
        // mechanics of either should be mirrored in the other.
        let next = &AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let run_shard = &run_shard;
                scope.spawn(move || loop {
                    let s = next.fetch_add(1, Ordering::Relaxed);
                    if s >= n_shards {
                        break;
                    }
                    if tx.send((s, run_shard(s))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (s, (report, survivors, shard_metrics)) in rx {
                telemetry.merge(&shard_metrics);
                out.shard_seconds[s] = report.total_seconds;
                out.reports[s] = report;
                per_shard_survivors[s] = survivors;
            }
        });
    }
    // Survivors in shard-then-id order; callers index by id anyway.
    out.survivors = per_shard_survivors.into_iter().flatten().collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_core::{Phase, TapeRecorder};
    use fmossim_netlist::{Drive, Logic, Size, TransistorType};

    fn two_inverters() -> (Network, Vec<NodeId>, Vec<Pattern>) {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::L);
        let b = net.add_input("B", Logic::L);
        let mut outs = Vec::new();
        for (name, inp) in [("OA", a), ("OB", b)] {
            let out = net.add_storage(name, Size::S1);
            net.add_transistor(TransistorType::P, Drive::D2, inp, vdd, out);
            net.add_transistor(TransistorType::N, Drive::D2, inp, out, gnd);
            outs.push(out);
        }
        let patterns = vec![
            Pattern::new(vec![Phase::strobe(vec![(a, Logic::L), (b, Logic::L)])]),
            Pattern::new(vec![Phase::strobe(vec![(a, Logic::H), (b, Logic::H)])]),
        ];
        (net, outs, patterns)
    }

    /// Two single-pattern batches with a re-partition in between must
    /// reproduce the one-shot parallel detection set, with global
    /// pattern indices.
    #[test]
    fn batched_run_matches_one_shot() {
        let (net, outs, patterns) = two_inverters();
        let universe = FaultUniverse::stuck_nodes(&net);
        let sim = ConcurrentConfig::paper();
        let one_shot = {
            let config = crate::ParallelConfig {
                jobs: crate::Jobs::Fixed(2),
                sim,
                ..crate::ParallelConfig::default()
            };
            crate::ParallelSim::new(&net, universe.clone(), config).run(&patterns, &outs)
        };

        let all: Vec<FaultId> = universe.iter().map(|(id, _)| id).collect();
        let mut recorder = TapeRecorder::new(&net, sim.engine);
        let plan0 = ShardPlan::build_weighted(&all, 2, |_| 1.0);
        let tape0 = recorder.record(&patterns[..1]);
        // Batch 0 parks its arenas in the pool; batch 1 draws them
        // back out — with bit-identical results either way. The parked
        // count is 1 or 2, not exactly 2: a shard that finishes before
        // the other starts donates its arena *within* the batch.
        let pool = ArenaPool::new();
        let b0 = run_batch(
            &net,
            &universe,
            &plan0,
            2,
            sim,
            None,
            &tape0,
            &patterns[..1],
            &outs,
            0,
            &Registry::null(),
            Some(&pool),
        );
        let parked = pool.len();
        assert!(
            (1..=2).contains(&parked),
            "shards parked their arenas: {parked}"
        );

        // Boundary: snapshot, drop detected, re-plan the survivors
        // into a deliberately different partition (one shard).
        let good = recorder.good_state().clone();
        let mut snapshots: Vec<Option<FaultSnapshot>> = vec![None; universe.len()];
        let mut alive = Vec::new();
        for (id, snap) in &b0.survivors {
            snapshots[id.index()] = Some(snap.clone());
            alive.push(*id);
        }
        assert!(alive.len() < universe.len(), "pattern 0 detects something");
        let resume = ResumePoint { good, snapshots };
        let plan1 = ShardPlan::build_weighted(&alive, 1, |_| 1.0);
        let tape1 = recorder.record(&patterns[1..]);
        let b1 = run_batch(
            &net,
            &universe,
            &plan1,
            2,
            sim,
            Some(&resume),
            &tape1,
            &patterns[1..],
            &outs,
            1,
            &Registry::null(),
            Some(&pool),
        );
        assert_eq!(pool.len(), parked, "one arena reused, then re-parked");

        let mut detections: Vec<_> = b0
            .reports
            .iter()
            .chain(&b1.reports)
            .flat_map(|r| r.detections.clone())
            .collect();
        detections.sort_by_key(|d| (d.pattern, d.phase, d.fault.index()));
        assert_eq!(detections, one_shot.detections);
    }

    #[test]
    fn cost_model_feedback_shifts_estimates() {
        let (net, _, _) = two_inverters();
        let universe = FaultUniverse::stuck_nodes(&net);
        let all: Vec<FaultId> = universe.iter().map(|(id, _)| id).collect();
        let mut model = CostModel::with_alpha(&net, &universe, 1.0);
        let before = model.total(&all);
        assert!(before > 0.0);
        let plan = ShardPlan::build_weighted(&all, all.len(), |_| 1.0);
        // Shard k measured at (k+1) seconds: estimates become exactly
        // the measurements under alpha = 1.
        let secs: Vec<f64> = (0..plan.num_shards()).map(|k| (k + 1) as f64).collect();
        model.observe(&plan, &secs);
        for (s, ids) in plan.shards().enumerate() {
            let est: f64 = ids.iter().map(|&id| model.estimate(id)).sum();
            assert!((est - secs[s]).abs() < 1e-9, "shard {s}: {est}");
        }
        // Zero / missing measurements leave estimates untouched.
        let frozen = model.clone();
        model.observe(&plan, &[0.0]);
        for &id in &all {
            assert_eq!(model.estimate(id), frozen.estimate(id));
        }
    }
}
