//! The fault-parallel driver: one [`ConcurrentSim`] per shard on a
//! worker pool of scoped `std::thread`s.

use crate::jobs::Jobs;
use crate::plan::{ShardPlan, ShardStrategy};
use fmossim_core::{ConcurrentConfig, ConcurrentSim, GoodTape, Pattern, RunReport};
use fmossim_faults::FaultUniverse;
use fmossim_netlist::{Network, NodeId};
use fmossim_telemetry::Registry;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the parallel driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads: a fixed count, or [`Jobs::Auto`] to size the
    /// pool from the universe's estimated fault cost. Workers beyond
    /// the number of (non-empty) shards are not spawned.
    pub jobs: Jobs,
    /// How the universe is partitioned.
    pub strategy: ShardStrategy,
    /// Number of shards; `None` means one per worker. Oversharding
    /// (`shards > jobs`) turns the pool into a load balancer: workers
    /// pull the next shard when they finish, smoothing out uneven
    /// shard costs.
    pub shards: Option<usize>,
    /// Record the good machine once per pattern batch and replay the
    /// shared [`GoodTape`] in every shard, instead of re-settling the
    /// good circuit per shard (default `true`). Replay is bit-identical
    /// to recompute — this knob exists for A/B measurement
    /// (`scaling_par --replay off`) and as an escape hatch. With a
    /// single shard the tape is skipped either way: recording would
    /// cost an extra good pass without saving one.
    pub reuse_good_tape: bool,
    /// Configuration forwarded to every shard's [`ConcurrentSim`]
    /// (detection policy, per-shard drop-on-detect, store backend).
    pub sim: ConcurrentConfig,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            jobs: Jobs::default(),
            strategy: ShardStrategy::default(),
            shards: None,
            reuse_good_tape: true,
            sim: ConcurrentConfig::default(),
        }
    }
}

impl ParallelConfig {
    /// The paper's simulator configuration on `jobs` workers.
    #[must_use]
    pub fn paper(jobs: usize) -> Self {
        ParallelConfig {
            jobs: Jobs::Fixed(jobs),
            sim: ConcurrentConfig::paper(),
            ..ParallelConfig::default()
        }
    }

    /// The paper's simulator configuration with autotuned workers.
    #[must_use]
    pub fn auto() -> Self {
        ParallelConfig {
            jobs: Jobs::Auto,
            sim: ConcurrentConfig::paper(),
            ..ParallelConfig::default()
        }
    }
}

/// Summary of one completed shard, streamed to the observer of
/// [`ParallelSim::run_streaming`] as workers finish.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardOutcome {
    /// Shard index in the [`ShardPlan`].
    pub shard: usize,
    /// Faults the shard graded.
    pub faults: usize,
    /// Faults the shard detected.
    pub detected: usize,
    /// The shard's own wall-clock seconds.
    pub seconds: f64,
}

/// Measurements of the good-machine tape a parallel run recorded and
/// replayed (absent when recompute mode was used — a single shard or
/// [`ParallelConfig::reuse_good_tape`] off).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TapeStats {
    /// Wall-clock seconds of the one-time record pass.
    pub record_seconds: f64,
    /// Good-machine vicinities recorded (work each shard skipped).
    pub groups: usize,
    /// Shards that replayed the tape.
    pub replayed_shards: usize,
    /// Approximate tape heap footprint in bytes.
    pub heap_bytes: usize,
}

/// Everything a parallel run produces: the merged report, per-shard
/// timing, and the tape measurements when record/replay was used.
#[derive(Clone, Debug, Default)]
pub struct ParallelRun {
    /// The merged, canonically-ordered report (see
    /// [`fmossim_core::RunReport::merge`]).
    pub report: RunReport,
    /// Each shard's own wall-clock seconds, indexed by shard (`0.0`
    /// for shards skipped after an early stop).
    pub shard_seconds: Vec<f64>,
    /// Good-tape measurements, when the good machine was recorded once
    /// and replayed per shard.
    pub tape: Option<TapeStats>,
    /// The good tape the run replayed (recorded here or injected via
    /// [`ParallelSim::inject_good_tape`]) — the extraction seam a
    /// caching layer deposits into. `None` in recompute mode.
    pub good_tape: Option<Arc<GoodTape>>,
}

/// Fault-parallel concurrent simulation: the fault universe is split
/// into shards ([`ShardPlan`]), each shard is graded by its own
/// [`ConcurrentSim`] (faulty circuits dropped on detection as usual),
/// and the per-shard [`RunReport`]s are folded into one
/// ([`RunReport::merge`]) whose detections and coverage are identical
/// to a one-shard run — sharding changes wall-clock time, never
/// results. By default the good machine is recorded once per run
/// ([`GoodTape`]) and replayed in every shard, so only one shard-count-
/// independent good pass is paid; see
/// [`ParallelConfig::reuse_good_tape`].
///
/// # Example
///
/// ```
/// use fmossim_netlist::{Network, Logic, Size, Drive, TransistorType};
/// use fmossim_faults::FaultUniverse;
/// use fmossim_core::{Pattern, Phase};
/// use fmossim_par::{ParallelConfig, ParallelSim};
///
/// let mut net = Network::new();
/// let vdd = net.add_input("Vdd", Logic::H);
/// let gnd = net.add_input("Gnd", Logic::L);
/// let a = net.add_input("A", Logic::L);
/// let out = net.add_storage("OUT", Size::S1);
/// net.add_transistor(TransistorType::P, Drive::D2, a, vdd, out);
/// net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
///
/// let universe = FaultUniverse::stuck_nodes(&net);
/// let sim = ParallelSim::new(&net, universe, ParallelConfig::paper(2));
/// let patterns = vec![
///     Pattern::new(vec![Phase::strobe(vec![(a, Logic::L)])]),
///     Pattern::new(vec![Phase::strobe(vec![(a, Logic::H)])]),
/// ];
/// let report = sim.run(&patterns, &[out]);
/// assert_eq!(report.detected(), 2);
/// assert_eq!(report.coverage(), 1.0);
/// ```
pub struct ParallelSim<'n> {
    net: &'n Network,
    universe: FaultUniverse,
    plan: ShardPlan,
    config: ParallelConfig,
    /// `config.jobs` resolved against the universe at planning time.
    workers: usize,
    /// Telemetry sink (null by default): each shard gets a
    /// [`Registry::fork`], merged back on the calling thread as the
    /// shard completes.
    telemetry: Registry,
    /// A pre-recorded good tape to replay instead of recording one —
    /// see [`ParallelSim::inject_good_tape`].
    injected_tape: Option<Arc<GoodTape>>,
}

impl<'n> ParallelSim<'n> {
    /// Plans shards for `universe` and prepares the driver. The
    /// universe is owned: shard workers index into it concurrently.
    /// [`Jobs::Auto`] is resolved here, against this universe.
    #[must_use]
    pub fn new(net: &'n Network, universe: FaultUniverse, config: ParallelConfig) -> Self {
        let workers = config.jobs.resolve(net, &universe);
        let k = config.shards.unwrap_or(workers).max(1);
        let plan = ShardPlan::build(net, &universe, k, config.strategy);
        ParallelSim {
            net,
            universe,
            plan,
            config,
            workers,
            telemetry: Registry::null(),
            injected_tape: None,
        }
    }

    /// Injects a pre-recorded [`GoodTape`] (e.g. from a cross-run
    /// cache): every shard replays it instead of this run recording
    /// one, and the reported [`TapeStats::record_seconds`] is `0.0` —
    /// the record pass was paid elsewhere. Unlike a freshly recorded
    /// tape, an injected tape is replayed even by a single-shard plan
    /// (replay is free; recording is what needs amortising).
    ///
    /// The tape must describe this network and stimulus
    /// ([`GoodTape::matches`]); a tape of the wrong shape is ignored
    /// and the run falls back to its normal record-or-recompute
    /// behaviour.
    pub fn inject_good_tape(&mut self, tape: Arc<GoodTape>) {
        self.injected_tape = Some(tape);
    }

    /// Publishes this driver's activity into `registry`: `par.*`
    /// metrics (shard seconds, queue wait, merge time), the tape's
    /// `core.tape.*` record measurements, and — via a per-shard
    /// [`Registry::fork`] merged at completion — every shard
    /// simulator's `core.*` / `switch.*` metrics.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        self.telemetry = registry.clone();
    }

    /// The shard plan in use.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The fault universe being graded.
    #[must_use]
    pub fn universe(&self) -> &FaultUniverse {
        &self.universe
    }

    /// The resolved worker count ([`Jobs::Auto`] already applied);
    /// the pool never spawns more threads than non-empty shards.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs the pattern sequence over every shard and merges the
    /// per-shard reports. `total_seconds` is the measured wall-clock
    /// time of the whole parallel run; per-pattern `seconds` are
    /// aggregate CPU seconds across shards.
    #[must_use]
    pub fn run(&self, patterns: &[Pattern], outputs: &[NodeId]) -> RunReport {
        self.run_with_shard_times(patterns, outputs).0
    }

    /// Like [`ParallelSim::run`], additionally returning each shard's
    /// own wall-clock seconds (indexed by shard). The maximum entry is
    /// the run's critical path: `reference_seconds / max_shard_seconds`
    /// is the speedup an unconstrained machine would reach with this
    /// plan, independent of how many cores the measuring host has —
    /// the quantity `scaling_par` reports as `ideal_speedup`.
    #[must_use]
    pub fn run_with_shard_times(
        &self,
        patterns: &[Pattern],
        outputs: &[NodeId],
    ) -> (RunReport, Vec<f64>) {
        let run = self.run_streaming(patterns, outputs, |_, _| ControlFlow::Continue(()));
        (run.report, run.shard_seconds)
    }

    /// Runs the shards, invoking `on_shard` from the calling thread as
    /// each shard completes — the streaming seam campaign drivers use
    /// for progress events and early stopping (coverage targets).
    ///
    /// `on_shard` receives the shard's [`ShardOutcome`] and its
    /// (globally relabelled) [`RunReport`]. Returning
    /// [`ControlFlow::Break`] stops the queue: shards already running
    /// finish and are included, shards never started are skipped — the
    /// merged report then covers only the shards that ran, while
    /// `num_faults` still counts the whole universe (skipped faults are
    /// simply unsimulated, like undetected faults).
    ///
    /// With more than one worker, completion order — and therefore the
    /// `on_shard` call order — is scheduling-dependent; the merged
    /// report is canonically ordered regardless.
    ///
    /// When [`ParallelConfig::reuse_good_tape`] is on and the plan has
    /// more than one shard, the good machine is recorded once (on the
    /// calling thread, before the pool starts) and every shard replays
    /// the shared [`GoodTape`] instead of re-settling the good
    /// circuit; [`ParallelRun::tape`] carries the measurements.
    ///
    /// Returns the merged report, each shard's own wall-clock seconds
    /// (indexed by shard; `0.0` for skipped shards), and the tape
    /// stats.
    pub fn run_streaming(
        &self,
        patterns: &[Pattern],
        outputs: &[NodeId],
        mut on_shard: impl FnMut(&ShardOutcome, &RunReport) -> ControlFlow<()>,
    ) -> ParallelRun {
        let t0 = Instant::now();
        let n_shards = self.plan.num_shards();
        let workers = self.workers.clamp(1, n_shards.max(1));

        // An injected tape (of the right shape) replays in every shard
        // with no record pass here; otherwise record the good machine
        // once and let shards replay the shared tape. With zero or one
        // shard there is nothing to amortise by recording.
        let injected: Option<Arc<GoodTape>> = self
            .injected_tape
            .as_ref()
            .filter(|t| t.matches(self.net.num_nodes(), patterns))
            .cloned();
        let was_injected = injected.is_some();
        let tape: Option<Arc<GoodTape>> = injected.or_else(|| {
            (self.config.reuse_good_tape && n_shards > 1)
                .then(|| Arc::new(GoodTape::record(self.net, patterns, self.config.sim.engine)))
        });
        if let (Some(t), false) = (&tape, was_injected) {
            self.telemetry
                .gauge("core.tape.record_seconds")
                .add(t.record_seconds());
            self.telemetry
                .counter("core.tape.groups")
                .add(t.num_groups() as u64);
        }

        let outcome = |s: usize, rep: &RunReport| ShardOutcome {
            shard: s,
            faults: self.plan.shard(s).len(),
            detected: rep.detected(),
            seconds: rep.total_seconds,
        };

        let mut reports: Vec<(usize, RunReport)> = Vec::with_capacity(n_shards);
        if n_shards <= 1 || workers == 1 {
            // In-line fast path: no thread overhead, same merge below.
            for s in 0..n_shards {
                let (rep, shard_metrics) =
                    self.run_shard(s, patterns, outputs, tape.as_deref(), t0);
                self.telemetry.merge(&shard_metrics);
                let flow = on_shard(&outcome(s, &rep), &rep);
                reports.push((s, rep));
                if flow.is_break() {
                    break;
                }
            }
        } else {
            // Queue-pulling pool with streaming + early cancel; its
            // collect-only sibling lives in `batch::run_batch`. A fix
            // to the queue mechanics of either should be mirrored.
            let next = &AtomicUsize::new(0);
            let stop = &AtomicBool::new(false);
            let (tx, rx) = mpsc::channel::<(usize, RunReport, Registry)>();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let tape = tape.clone();
                    scope.spawn(move || loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let s = next.fetch_add(1, Ordering::Relaxed);
                        if s >= n_shards {
                            break;
                        }
                        let (rep, shard_metrics) =
                            self.run_shard(s, patterns, outputs, tape.as_deref(), t0);
                        if tx.send((s, rep, shard_metrics)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                // Observe completions from the calling thread, in
                // completion order; a Break stops the queue but drains
                // in-flight shards. Per-shard registries merge here —
                // single-threaded, in completion order (merging is
                // commutative, so the order does not matter).
                for (s, rep, shard_metrics) in rx {
                    self.telemetry.merge(&shard_metrics);
                    let flow = on_shard(&outcome(s, &rep), &rep);
                    reports.push((s, rep));
                    if flow.is_break() {
                        stop.store(true, Ordering::Relaxed);
                    }
                }
            });
        }

        let replayed_shards = reports.len();
        // Merge in shard order for reproducible statistics; detection
        // order is canonicalised by `merge` regardless.
        let merge_t0 = Instant::now();
        reports.sort_by_key(|&(s, _)| s);
        let mut shard_seconds = vec![0.0; n_shards];
        for (s, r) in &reports {
            shard_seconds[*s] = r.total_seconds;
        }
        let mut merged = RunReport::merge(reports.into_iter().map(|(_, r)| r));
        merged.num_faults = self.universe.len();
        merged.total_seconds = t0.elapsed().as_secs_f64();
        self.telemetry
            .gauge("par.merge.seconds")
            .add(merge_t0.elapsed().as_secs_f64());
        ParallelRun {
            shard_seconds,
            tape: tape.as_ref().map(|t| TapeStats {
                record_seconds: if was_injected {
                    0.0
                } else {
                    t.record_seconds()
                },
                groups: t.num_groups(),
                replayed_shards,
                heap_bytes: t.heap_bytes(),
            }),
            good_tape: tape,
            report: merged,
        }
    }

    /// Simulates one shard to completion, relabelling detections to
    /// parent-universe fault ids. With a tape, the shard replays the
    /// recorded good machine instead of re-settling it.
    ///
    /// Returns the report plus the shard's local metric registry
    /// (`run_started` is the whole run's start instant — the gap until
    /// now is the shard's queue wait). The caller merges the registry
    /// into the run-wide one on the collecting thread.
    fn run_shard(
        &self,
        s: usize,
        patterns: &[Pattern],
        outputs: &[NodeId],
        tape: Option<&GoodTape>,
        run_started: Instant,
    ) -> (RunReport, Registry) {
        let shard_metrics = self.telemetry.fork();
        shard_metrics
            .gauge("par.queue.wait_seconds")
            .add(run_started.elapsed().as_secs_f64());
        let ids = self.plan.shard(s);
        let shard_universe = self.universe.subset(ids);
        let mut sim = ConcurrentSim::new(self.net, shard_universe.faults(), self.config.sim);
        sim.attach_metrics(&shard_metrics);
        let mut report = match tape {
            Some(tape) => sim.run_replayed(patterns, outputs, tape),
            None => sim.run(patterns, outputs),
        };
        report.relabel_faults(|local| ids[local.index()]);
        shard_metrics.counter("par.shards").inc();
        shard_metrics
            .gauge("par.shard.seconds")
            .add(report.total_seconds);
        (report, shard_metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ShardStrategy;
    use fmossim_core::{Phase, RunReport};
    use fmossim_faults::FaultId;
    use fmossim_netlist::{Drive, Logic, Size, TransistorType};

    fn two_inverters() -> (Network, Vec<NodeId>, Vec<Pattern>) {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::L);
        let b = net.add_input("B", Logic::L);
        let mut outs = Vec::new();
        for (name, inp) in [("OA", a), ("OB", b)] {
            let out = net.add_storage(name, Size::S1);
            net.add_transistor(TransistorType::P, Drive::D2, inp, vdd, out);
            net.add_transistor(TransistorType::N, Drive::D2, inp, out, gnd);
            outs.push(out);
        }
        let patterns = vec![
            Pattern::new(vec![Phase::strobe(vec![(a, Logic::L), (b, Logic::L)])]),
            Pattern::new(vec![Phase::strobe(vec![(a, Logic::H), (b, Logic::H)])]),
        ];
        (net, outs, patterns)
    }

    fn detection_key(report: &RunReport) -> Vec<(usize, usize, usize)> {
        report
            .detections
            .iter()
            .map(|d| (d.pattern, d.phase, d.fault.index()))
            .collect()
    }

    #[test]
    fn sharded_run_matches_single_shard() {
        let (net, outs, patterns) = two_inverters();
        let universe = FaultUniverse::stuck_nodes(&net);
        let single = ParallelSim::new(&net, universe.clone(), ParallelConfig::paper(1))
            .run(&patterns, &outs);
        for jobs in [2, 3, 4] {
            for strategy in ShardStrategy::ALL {
                let config = ParallelConfig {
                    strategy,
                    ..ParallelConfig::paper(jobs)
                };
                let multi = ParallelSim::new(&net, universe.clone(), config).run(&patterns, &outs);
                assert_eq!(detection_key(&multi), detection_key(&single), "{strategy}");
                assert_eq!(multi.num_faults, single.num_faults);
                assert_eq!(multi.coverage(), single.coverage());
            }
        }
    }

    #[test]
    fn oversharding_pulls_from_the_queue() {
        let (net, outs, patterns) = two_inverters();
        let universe = FaultUniverse::stuck_nodes(&net);
        let config = ParallelConfig {
            shards: Some(4),
            ..ParallelConfig::paper(2)
        };
        let sim = ParallelSim::new(&net, universe, config);
        assert_eq!(sim.plan().num_shards(), 4);
        let report = sim.run(&patterns, &outs);
        assert_eq!(report.detected(), 4);
        assert_eq!(report.coverage(), 1.0);
    }

    #[test]
    fn empty_universe_runs_clean() {
        let (net, outs, patterns) = two_inverters();
        let sim = ParallelSim::new(&net, FaultUniverse::new(), ParallelConfig::paper(4));
        let report = sim.run(&patterns, &outs);
        assert_eq!(report.num_faults, 0);
        assert_eq!(report.detected(), 0);
        assert_eq!(report.coverage(), 0.0);
    }

    #[test]
    fn streaming_reports_every_shard_once() {
        let (net, outs, patterns) = two_inverters();
        let universe = FaultUniverse::stuck_nodes(&net);
        let config = ParallelConfig {
            shards: Some(3),
            ..ParallelConfig::paper(2)
        };
        let sim = ParallelSim::new(&net, universe, config);
        let mut seen = Vec::new();
        let run = sim.run_streaming(&patterns, &outs, |o, rep| {
            assert_eq!(o.detected, rep.detected());
            assert_eq!(o.faults, sim.plan().shard(o.shard).len());
            seen.push(o.shard);
            std::ops::ControlFlow::Continue(())
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2], "each shard observed exactly once");
        assert_eq!(run.shard_seconds.len(), 3);
        assert_eq!(run.report.detected(), 4);
        let tape = run.tape.expect("multi-shard run records a tape");
        assert_eq!(tape.replayed_shards, 3);
        assert!(tape.groups > 0);
        assert!(tape.heap_bytes > 0);
    }

    #[test]
    fn streaming_break_stops_the_queue() {
        let (net, outs, patterns) = two_inverters();
        let universe = FaultUniverse::stuck_nodes(&net);
        let n = universe.len();
        // One worker, one shard per fault: breaking after the first
        // completed shard must leave the rest unsimulated.
        let config = ParallelConfig {
            shards: Some(n),
            ..ParallelConfig::paper(1)
        };
        let sim = ParallelSim::new(&net, universe, config);
        let mut completed = 0;
        let run = sim.run_streaming(&patterns, &outs, |_, _| {
            completed += 1;
            std::ops::ControlFlow::Break(())
        });
        assert_eq!(completed, 1);
        assert_eq!(run.report.detected(), 1, "only the first shard's fault");
        assert_eq!(run.report.num_faults, n, "universe size unchanged");
        assert_eq!(run.shard_seconds.iter().filter(|&&t| t > 0.0).count(), 1);
        let tape = run.tape.expect("tape recorded before the early stop");
        assert_eq!(tape.replayed_shards, 1, "only one shard consumed it");
    }

    /// The tape is a pure execution detail: replay and recompute runs
    /// are bit-identical (detections, counters), and single-shard runs
    /// skip the tape entirely.
    #[test]
    fn replay_matches_recompute_and_single_shard_skips_tape() {
        let (net, outs, patterns) = two_inverters();
        let universe = FaultUniverse::stuck_nodes(&net);
        let run_with = |reuse: bool, jobs: usize| {
            let config = ParallelConfig {
                reuse_good_tape: reuse,
                ..ParallelConfig::paper(jobs)
            };
            ParallelSim::new(&net, universe.clone(), config).run_streaming(
                &patterns,
                &outs,
                |_, _| ControlFlow::Continue(()),
            )
        };
        let recompute = run_with(false, 3);
        assert!(recompute.tape.is_none(), "recompute mode records no tape");
        let replay = run_with(true, 3);
        assert!(replay.tape.is_some());
        assert_eq!(replay.report.detections, recompute.report.detections);
        for (r, l) in replay
            .report
            .patterns
            .iter()
            .zip(&recompute.report.patterns)
        {
            assert_eq!(
                (r.detected, r.live_before, r.good_groups, r.faulty_groups),
                (l.detected, l.live_before, l.good_groups, l.faulty_groups)
            );
        }
        let single = run_with(true, 1);
        assert!(single.tape.is_none(), "one shard has nothing to amortise");
        assert_eq!(single.report.detections, recompute.report.detections);
    }

    /// An injected tape is replayed (even by a single-shard plan),
    /// reports a zero-cost record pass, and never changes results; a
    /// wrong-shape tape is ignored.
    #[test]
    fn injected_tape_replays_without_recording() {
        let (net, outs, patterns) = two_inverters();
        let universe = FaultUniverse::stuck_nodes(&net);
        let baseline = ParallelSim::new(&net, universe.clone(), ParallelConfig::paper(2))
            .run(&patterns, &outs);
        let tape = Arc::new(GoodTape::record(
            &net,
            &patterns,
            ConcurrentConfig::paper().engine,
        ));
        let mut sim = ParallelSim::new(&net, universe.clone(), ParallelConfig::paper(1));
        sim.inject_good_tape(Arc::clone(&tape));
        let run = sim.run_streaming(&patterns, &outs, |_, _| ControlFlow::Continue(()));
        let stats = run.tape.expect("injected tape replays even at one shard");
        assert_eq!(stats.record_seconds, 0.0, "record pass was paid elsewhere");
        assert!(run.good_tape.is_some(), "tape re-exported for caching");
        assert_eq!(run.report.detections, baseline.detections);

        // A tape of the wrong shape (here: empty) is ignored; the
        // single-shard run falls back to recompute mode.
        let mut sim = ParallelSim::new(&net, universe, ParallelConfig::paper(1));
        sim.inject_good_tape(Arc::new(GoodTape::default()));
        let run = sim.run_streaming(&patterns, &outs, |_, _| ControlFlow::Continue(()));
        assert!(run.tape.is_none(), "mismatched tape not replayed");
        assert_eq!(run.report.detections, baseline.detections);
    }

    #[test]
    fn auto_jobs_resolves_and_runs() {
        let (net, outs, patterns) = two_inverters();
        let universe = FaultUniverse::stuck_nodes(&net);
        let sim = ParallelSim::new(&net, universe, ParallelConfig::auto());
        assert!(sim.workers() >= 1);
        let report = sim.run(&patterns, &outs);
        assert_eq!(report.detected(), 4);
    }

    #[test]
    fn detections_carry_global_ids() {
        let (net, outs, patterns) = two_inverters();
        let universe = FaultUniverse::stuck_nodes(&net);
        let n = universe.len();
        let config = ParallelConfig {
            strategy: ShardStrategy::Contiguous,
            ..ParallelConfig::paper(2)
        };
        let report = ParallelSim::new(&net, universe, config).run(&patterns, &outs);
        let mut ids: Vec<usize> = report.detections.iter().map(|d| d.fault.index()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), report.detected(), "no duplicate fault ids");
        assert!(ids.iter().all(|&i| i < n), "ids are parent-universe ids");
        // Contiguous sharding would produce colliding *local* ids in
        // every shard; globals must cover the high shard too.
        assert!(ids.iter().any(|&i| i >= n / 2), "high shard represented");
        let _ = FaultId(0);
    }
}
