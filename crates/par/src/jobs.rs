//! Worker-count selection — including the first cut of the ROADMAP's
//! shard autotuning.

use crate::plan::fault_cost;
use fmossim_faults::FaultUniverse;
use fmossim_netlist::Network;

/// Estimated shard cost (sum of [`fault_cost`] over the shard's faults)
/// that justifies dedicating one worker to it. Below this threshold the
/// per-shard overhead — re-simulating the good circuit from reset —
/// outweighs the fault-grading work, so [`Jobs::Auto`] allocates fewer
/// workers than the hardware offers.
pub const AUTO_COST_PER_WORKER: usize = 64;

/// How many worker threads a parallel run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Jobs {
    /// Pick the worker count from the workload: one worker per
    /// [`AUTO_COST_PER_WORKER`] units of estimated fault cost, clamped
    /// to the machine's available parallelism. Small universes stay on
    /// one thread (no pool overhead); large ones use the whole machine.
    Auto,
    /// Exactly this many workers (clamped to at least 1).
    Fixed(usize),
}

impl Default for Jobs {
    fn default() -> Self {
        Jobs::Fixed(1)
    }
}

impl Jobs {
    /// Parses the CLI spelling: `auto` or a positive integer.
    #[must_use]
    pub fn parse(s: &str) -> Option<Jobs> {
        if s == "auto" {
            Some(Jobs::Auto)
        } else {
            s.parse::<usize>().ok().filter(|&n| n > 0).map(Jobs::Fixed)
        }
    }

    /// Resolves to a concrete worker count for `universe` on `net`.
    /// `Fixed(n)` yields `max(n, 1)`; `Auto` applies the cost heuristic
    /// against [`available_parallelism`](std::thread::available_parallelism).
    #[must_use]
    pub fn resolve(self, net: &Network, universe: &FaultUniverse) -> usize {
        match self {
            Jobs::Fixed(n) => n.max(1),
            Jobs::Auto => {
                let hw =
                    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
                let total_cost: usize = universe.iter().map(|(_, f)| fault_cost(net, &f)).sum();
                (total_cost / AUTO_COST_PER_WORKER).clamp(1, hw)
            }
        }
    }

    /// The feedback half of [`Jobs::Auto`]: re-sizes an
    /// already-resolved pool between pattern batches as the surviving
    /// workload shrinks. `resolved` is what [`Jobs::resolve`] returned
    /// at planning time, `initial_cost` the whole universe's estimated
    /// cost then, and `surviving_cost` the current estimate for the
    /// faults still live (both in any consistent unit — the static
    /// [`fault_cost`] total, or a [`crate::CostModel`]'s
    /// measured-seconds total).
    ///
    /// `Fixed(n)` pools never resize (the user asked for exactly `n`);
    /// `Auto` pools scale down proportionally with the surviving cost,
    /// never below one worker and never above the initial resolution —
    /// detected faults dropping out is the only feedback that can
    /// shrink a batch, so growing back is impossible by construction.
    ///
    /// ```
    /// use fmossim_par::Jobs;
    ///
    /// assert_eq!(Jobs::Auto.refine(8, 1000.0, 1000.0), 8);
    /// assert_eq!(Jobs::Auto.refine(8, 1000.0, 500.0), 4); // half detected
    /// assert_eq!(Jobs::Auto.refine(8, 1000.0, 1.0), 1);   // floor
    /// assert_eq!(Jobs::Fixed(8).refine(8, 1000.0, 1.0), 8); // user said 8
    /// ```
    #[must_use]
    pub fn refine(self, resolved: usize, initial_cost: f64, surviving_cost: f64) -> usize {
        match self {
            Jobs::Fixed(_) => resolved.max(1),
            Jobs::Auto => {
                if initial_cost <= 0.0 || !initial_cost.is_finite() || !surviving_cost.is_finite() {
                    return resolved.max(1);
                }
                let scaled = (resolved as f64 * (surviving_cost / initial_cost).clamp(0.0, 1.0))
                    .round() as usize;
                scaled.clamp(1, resolved.max(1))
            }
        }
    }
}

impl std::fmt::Display for Jobs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Jobs::Auto => f.write_str("auto"),
            Jobs::Fixed(n) => write!(f, "{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_netlist::{Drive, Logic, Size, TransistorType};

    fn small_net() -> Network {
        let mut net = Network::new();
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::L);
        let s = net.add_storage("S", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, a, s, gnd);
        net
    }

    #[test]
    fn parse_spellings() {
        assert_eq!(Jobs::parse("auto"), Some(Jobs::Auto));
        assert_eq!(Jobs::parse("4"), Some(Jobs::Fixed(4)));
        assert_eq!(Jobs::parse("0"), None);
        assert_eq!(Jobs::parse("-1"), None);
        assert_eq!(Jobs::parse("many"), None);
        assert_eq!(Jobs::Auto.to_string(), "auto");
        assert_eq!(Jobs::Fixed(7).to_string(), "7");
    }

    #[test]
    fn fixed_resolves_to_at_least_one() {
        let net = small_net();
        let u = FaultUniverse::stuck_nodes(&net);
        assert_eq!(Jobs::Fixed(0).resolve(&net, &u), 1);
        assert_eq!(Jobs::Fixed(5).resolve(&net, &u), 5);
    }

    #[test]
    fn auto_keeps_tiny_universes_on_one_thread() {
        let net = small_net();
        let u = FaultUniverse::stuck_nodes(&net);
        // Two faults with footprints of a couple of nodes: far below
        // the per-worker cost threshold.
        assert_eq!(Jobs::Auto.resolve(&net, &u), 1);
    }

    #[test]
    fn auto_never_exceeds_hardware_parallelism() {
        let net = small_net();
        // A synthetic universe heavy enough to ask for many workers.
        let fault = fmossim_faults::Fault::NodeStuck {
            node: net.find_node("S").expect("exists"),
            value: Logic::L,
        };
        let u = FaultUniverse::from_faults(vec![fault; 100_000]);
        let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let resolved = Jobs::Auto.resolve(&net, &u);
        assert!(resolved >= 1 && resolved <= hw, "resolved {resolved}");
    }
}
