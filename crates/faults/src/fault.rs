//! Fault descriptions and their switch-level effects.

use fmossim_netlist::{Conduction, Logic, Network, NodeId, TransistorId};
use std::fmt;

/// Identifies a fault within a [`FaultUniverse`](crate::FaultUniverse)
/// and the corresponding faulty circuit in the simulators (the good
/// circuit is circuit 0; fault `k` is circuit `k + 1`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaultId(pub u32);

impl FaultId {
    /// The dense index of this fault in its universe.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FaultId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A single fault, expressed in the switch-level model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fault {
    /// The node behaves as an input node permanently set to `value`.
    NodeStuck {
        /// The faulted node.
        node: NodeId,
        /// The stuck value (`L` for stuck-at-0, `H` for stuck-at-1).
        value: Logic,
    },
    /// The transistor is permanently non-conducting.
    TransistorStuckOpen(TransistorId),
    /// The transistor is permanently conducting (at its own strength).
    TransistorStuckClosed(TransistorId),
    /// A bridge short: the pre-inserted fault transistor gated by
    /// `control` conducts in the faulty circuit (see
    /// [`crate::inject::insert_bridge`]).
    BridgeShort {
        /// The fault-control input node (0 in the good circuit).
        control: NodeId,
    },
    /// A line open: the pre-inserted segment transistor gated by
    /// `control` stops conducting in the faulty circuit (see
    /// [`crate::inject::breakable_segment`]).
    LineOpen {
        /// The fault-control input node (1 in the good circuit).
        control: NodeId,
    },
}

/// The per-circuit override a fault reduces to. The fault simulators
/// apply these as overlays on the good circuit; the network itself is
/// never structurally modified.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultEffect {
    /// In the faulty circuit, `node` is input-classified with the fixed
    /// value `value`.
    ForceNode {
        /// The overridden node.
        node: NodeId,
        /// The forced value.
        value: Logic,
    },
    /// In the faulty circuit, transistor `t` has the fixed conduction
    /// state `cond`, ignoring its gate.
    ForceTransistor {
        /// The overridden transistor.
        t: TransistorId,
        /// The forced conduction state.
        cond: Conduction,
    },
}

impl Fault {
    /// The switch-level override implementing this fault.
    #[must_use]
    pub fn effect(&self) -> FaultEffect {
        match *self {
            Fault::NodeStuck { node, value } => FaultEffect::ForceNode { node, value },
            Fault::TransistorStuckOpen(t) => FaultEffect::ForceTransistor {
                t,
                cond: Conduction::Open,
            },
            Fault::TransistorStuckClosed(t) => FaultEffect::ForceTransistor {
                t,
                cond: Conduction::Closed,
            },
            Fault::BridgeShort { control } => FaultEffect::ForceNode {
                node: control,
                value: Logic::H,
            },
            Fault::LineOpen { control } => FaultEffect::ForceNode {
                node: control,
                value: Logic::L,
            },
        }
    }

    /// The nodes at which good-circuit activity must trigger
    /// re-simulation of this fault's circuit (the fault's static
    /// *footprint*, kept minimal because every extra attachment costs a
    /// faulty-circuit settle per nearby good event):
    ///
    /// * `ForceNode` — just the forced node. When the forced value
    ///   matters to a vicinity it does so either as a member (the node
    ///   itself, for storage nodes) or as the *gate* of a transistor
    ///   incident on the vicinity (the bridge/open control case) — and
    ///   the trigger support of a vicinity includes its members and all
    ///   incident-transistor gates, so `{node}` suffices.
    /// * `ForceTransistor` — the storage channel terminals. A vicinity
    ///   affected by the forced conduction state necessarily contains
    ///   at least one of them (input terminals are never members, and a
    ///   transistor between two inputs influences nothing else).
    #[must_use]
    pub fn footprint(&self, net: &Network) -> Vec<NodeId> {
        match self.effect() {
            FaultEffect::ForceNode { node, .. } => vec![node],
            FaultEffect::ForceTransistor { t, .. } => {
                let tr = net.transistor(t);
                let mut v: Vec<NodeId> = [tr.source, tr.drain]
                    .into_iter()
                    .filter(|&n| !net.node(n).is_input())
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            }
        }
    }

    /// The nodes to seed the faulty circuit's *initial* private events
    /// with (a superset of the footprint): the fault is active from
    /// reset, so everything its forced element can influence directly
    /// must be evaluated once — channel neighbours of a forced node,
    /// endpoints of transistors it gates, and both ends of a forced
    /// transistor. Input-classified nodes are harmless here (the
    /// scheduler skips them).
    #[must_use]
    pub fn initial_seeds(&self, net: &Network) -> Vec<NodeId> {
        let mut v = match self.effect() {
            FaultEffect::ForceNode { node, .. } => {
                let mut v = vec![node];
                for &t in net.gated_transistors(node) {
                    let tr = net.transistor(t);
                    v.push(tr.source);
                    v.push(tr.drain);
                }
                for &t in net.channel_transistors(node) {
                    v.push(net.transistor(t).other_end(node));
                }
                v
            }
            FaultEffect::ForceTransistor { t, .. } => {
                let tr = net.transistor(t);
                vec![tr.source, tr.drain]
            }
        };
        v.sort_unstable();
        v.dedup();
        v
    }

    /// A human-readable description using node/transistor names from
    /// `net`.
    #[must_use]
    pub fn describe(&self, net: &Network) -> String {
        match *self {
            Fault::NodeStuck { node, value } => {
                format!("node {} stuck-at-{}", net.node(node).name, value.to_char())
            }
            Fault::TransistorStuckOpen(t) => {
                let tr = net.transistor(t);
                format!(
                    "transistor {t} ({}: {}-{}) stuck-open",
                    net.node(tr.gate).name,
                    net.node(tr.source).name,
                    net.node(tr.drain).name
                )
            }
            Fault::TransistorStuckClosed(t) => {
                let tr = net.transistor(t);
                format!(
                    "transistor {t} ({}: {}-{}) stuck-closed",
                    net.node(tr.gate).name,
                    net.node(tr.source).name,
                    net.node(tr.drain).name
                )
            }
            Fault::BridgeShort { control } => {
                format!("bridge short via {}", net.node(control).name)
            }
            Fault::LineOpen { control } => {
                format!("line open via {}", net.node(control).name)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_netlist::{Drive, Size, TransistorType};

    fn tiny() -> (Network, NodeId, TransistorId) {
        let mut net = Network::new();
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::L);
        let s = net.add_storage("S", Size::S1);
        let t = net.add_transistor(TransistorType::N, Drive::D2, a, s, gnd);
        (net, s, t)
    }

    #[test]
    fn node_stuck_effect() {
        let (_, s, _) = tiny();
        let f = Fault::NodeStuck {
            node: s,
            value: Logic::H,
        };
        assert_eq!(
            f.effect(),
            FaultEffect::ForceNode {
                node: s,
                value: Logic::H
            }
        );
    }

    #[test]
    fn transistor_stuck_effects() {
        let (_, _, t) = tiny();
        assert_eq!(
            Fault::TransistorStuckOpen(t).effect(),
            FaultEffect::ForceTransistor {
                t,
                cond: Conduction::Open
            }
        );
        assert_eq!(
            Fault::TransistorStuckClosed(t).effect(),
            FaultEffect::ForceTransistor {
                t,
                cond: Conduction::Closed
            }
        );
    }

    #[test]
    fn bridge_and_open_control_values_are_opposite() {
        let (mut net, s, _) = tiny();
        let ctl = net.add_input("#fault.br0", Logic::L);
        let b = Fault::BridgeShort { control: ctl };
        let o = Fault::LineOpen { control: ctl };
        match (b.effect(), o.effect()) {
            (
                FaultEffect::ForceNode { value: vb, .. },
                FaultEffect::ForceNode { value: vo, .. },
            ) => {
                assert_eq!(vb, Logic::H);
                assert_eq!(vo, Logic::L);
            }
            other => panic!("unexpected effects {other:?}"),
        }
        let _ = s;
    }

    #[test]
    fn footprints_are_minimal() {
        let (net, s, t) = tiny();
        let f = Fault::NodeStuck {
            node: s,
            value: Logic::L,
        };
        assert_eq!(f.footprint(&net), vec![s]);
        // Transistor footprint keeps only storage terminals — rails are
        // never vicinity members, so attaching there would make every
        // event near ground trigger this circuit.
        let f = Fault::TransistorStuckOpen(t);
        assert_eq!(f.footprint(&net), vec![s]);
    }

    #[test]
    fn control_footprint_is_the_control_only() {
        let (mut net, s, _) = tiny();
        let gnd = net.find_node("Gnd").expect("exists");
        let ctl = net.add_input("#fault.br0", Logic::L);
        net.add_transistor(TransistorType::N, Drive::FAULT, ctl, s, gnd);
        let f = Fault::BridgeShort { control: ctl };
        assert_eq!(f.footprint(&net), vec![ctl]);
        // …while the initial seeds reach out to the bridged nodes.
        let seeds = f.initial_seeds(&net);
        assert!(seeds.contains(&ctl));
        assert!(seeds.contains(&s));
        assert!(seeds.contains(&gnd));
    }

    #[test]
    fn initial_seeds_cover_neighbourhood() {
        let (net, s, t) = tiny();
        let f = Fault::NodeStuck {
            node: s,
            value: Logic::H,
        };
        let seeds = f.initial_seeds(&net);
        // S's channel neighbour through the transistor is Gnd.
        assert!(seeds.contains(&s));
        assert!(seeds.contains(&net.find_node("Gnd").expect("exists")));
        let f = Fault::TransistorStuckClosed(t);
        let seeds = f.initial_seeds(&net);
        assert_eq!(seeds.len(), 2);
    }

    #[test]
    fn descriptions_name_things() {
        let (net, s, t) = tiny();
        let d = Fault::NodeStuck {
            node: s,
            value: Logic::H,
        }
        .describe(&net);
        assert!(d.contains('S') && d.contains("stuck-at-1"), "{d}");
        let d = Fault::TransistorStuckOpen(t).describe(&net);
        assert!(d.contains("stuck-open"), "{d}");
    }
}
