//! Fault-universe enumeration and random sampling.

use crate::inject::{is_fault_control, is_fault_device};
use crate::{Fault, FaultId};
use fmossim_netlist::{Logic, Network, NodeId};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// An ordered collection of faults to simulate. Fault `k` of the
/// universe becomes circuit `k + 1` in the simulators (circuit 0 is the
/// good circuit).
///
/// # Example
///
/// ```
/// use fmossim_netlist::{Network, Logic, Size, Drive, TransistorType};
/// use fmossim_faults::FaultUniverse;
///
/// let mut net = Network::new();
/// let gnd = net.add_input("Gnd", Logic::L);
/// let a = net.add_input("A", Logic::L);
/// let s = net.add_storage("S", Size::S1);
/// net.add_transistor(TransistorType::N, Drive::D2, a, s, gnd);
/// let u = FaultUniverse::stuck_nodes(&net);
/// assert_eq!(u.len(), 2); // S stuck-at-0 and stuck-at-1
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultUniverse {
    faults: Vec<Fault>,
}

impl FaultUniverse {
    /// An empty universe.
    #[must_use]
    pub fn new() -> Self {
        FaultUniverse::default()
    }

    /// Builds the universe from an explicit list.
    #[must_use]
    pub fn from_faults(faults: Vec<Fault>) -> Self {
        FaultUniverse { faults }
    }

    /// Every storage node stuck-at-0 and stuck-at-1 — the paper's
    /// primary fault class. Fault-control nodes and input nodes are
    /// excluded (inputs are externally driven; stuck inputs can be
    /// modelled by driving the test sequence differently).
    #[must_use]
    pub fn stuck_nodes(net: &Network) -> Self {
        let mut faults = Vec::new();
        for (id, node) in net.nodes() {
            if node.is_input() || is_fault_control(net, id) {
                continue;
            }
            faults.push(Fault::NodeStuck {
                node: id,
                value: Logic::L,
            });
            faults.push(Fault::NodeStuck {
                node: id,
                value: Logic::H,
            });
        }
        FaultUniverse { faults }
    }

    /// Every functional transistor stuck-open and stuck-closed (fault
    /// devices excluded) — the paper's §5 validation class.
    #[must_use]
    pub fn stuck_transistors(net: &Network) -> Self {
        let mut faults = Vec::new();
        for (id, _) in net.transistors() {
            if is_fault_device(net, id) {
                continue;
            }
            faults.push(Fault::TransistorStuckOpen(id));
            faults.push(Fault::TransistorStuckClosed(id));
        }
        FaultUniverse { faults }
    }

    /// Bridge-short faults for pre-inserted bridges with the given
    /// control nodes (see [`crate::inject::insert_bridge`]).
    #[must_use]
    pub fn bridges(controls: impl IntoIterator<Item = NodeId>) -> Self {
        FaultUniverse {
            faults: controls
                .into_iter()
                .map(|control| Fault::BridgeShort { control })
                .collect(),
        }
    }

    /// Line-open faults for pre-inserted breakable segments with the
    /// given control nodes (see [`crate::inject::breakable_segment`]).
    #[must_use]
    pub fn opens(controls: impl IntoIterator<Item = NodeId>) -> Self {
        FaultUniverse {
            faults: controls
                .into_iter()
                .map(|control| Fault::LineOpen { control })
                .collect(),
        }
    }

    /// Number of faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True iff the universe is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault list, in circuit-id order.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The fault with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn fault(&self, id: FaultId) -> Fault {
        self.faults[id.index()]
    }

    /// Iterates `(id, fault)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (FaultId, Fault)> + '_ {
        self.faults
            .iter()
            .enumerate()
            .map(|(i, &f)| (FaultId(u32::try_from(i).expect("universe too large")), f))
    }

    /// Concatenates two universes.
    #[must_use]
    pub fn union(mut self, other: FaultUniverse) -> Self {
        self.faults.extend(other.faults);
        self
    }

    /// Draws a reproducible random sample of `k` faults (all faults if
    /// `k >= len`), preserving no particular order beyond the seeded
    /// shuffle. Used for the paper's Figure 3 fault-sampling sweep.
    #[must_use]
    pub fn sample(&self, k: usize, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut faults = self.faults.clone();
        faults.shuffle(&mut rng);
        faults.truncate(k);
        FaultUniverse { faults }
    }

    /// The sub-universe containing exactly the given fault ids of
    /// `self`, in the given order. Building shard universes for
    /// fault-parallel simulation is the intended use: each shard keeps
    /// the id list to map its local circuit numbers back to ids in the
    /// parent universe.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    #[must_use]
    pub fn subset(&self, ids: &[FaultId]) -> Self {
        FaultUniverse {
            faults: ids.iter().map(|&id| self.fault(id)).collect(),
        }
    }

    /// Partitions the universe's fault ids into `k` shards by dealing
    /// them out round-robin (fault `i` goes to shard `i % k`). Always
    /// returns exactly `max(k, 1)` shards; trailing shards may be empty
    /// when the universe is smaller than `k`. Within a shard, ids are
    /// ascending.
    #[must_use]
    pub fn split_round_robin(&self, k: usize) -> Vec<Vec<FaultId>> {
        let k = k.max(1);
        let mut shards = vec![Vec::new(); k];
        for (id, _) in self.iter() {
            shards[id.index() % k].push(id);
        }
        shards
    }

    /// Partitions the universe's fault ids into `k` contiguous shards
    /// of near-equal length (the first `len % k` shards hold one extra
    /// fault). Always returns exactly `max(k, 1)` shards; trailing
    /// shards may be empty when the universe is smaller than `k`.
    #[must_use]
    pub fn split_contiguous(&self, k: usize) -> Vec<Vec<FaultId>> {
        let k = k.max(1);
        let base = self.len() / k;
        let extra = self.len() % k;
        let mut ids = self.iter().map(|(id, _)| id);
        (0..k)
            .map(|s| {
                let take = base + usize::from(s < extra);
                ids.by_ref().take(take).collect()
            })
            .collect()
    }

    /// Removes faults that are provably equivalent to the fault-free
    /// circuit and therefore undetectable by construction:
    ///
    /// * stuck-*closed* on a d-type (depletion) transistor — the device
    ///   always conducts anyway;
    /// * any stuck fault on a transistor whose source and drain are the
    ///   same node (a capacitor connection conducts into itself).
    ///
    /// This is the cheap structural slice of fault collapsing; it keeps
    /// coverage figures honest without simulating no-op circuits.
    #[must_use]
    pub fn without_redundant(self, net: &Network) -> Self {
        use fmossim_netlist::TransistorType;
        let faults = self
            .faults
            .into_iter()
            .filter(|f| match *f {
                Fault::TransistorStuckClosed(t) => {
                    let tr = net.transistor(t);
                    tr.ttype != TransistorType::D && tr.source != tr.drain
                }
                Fault::TransistorStuckOpen(t) => {
                    let tr = net.transistor(t);
                    tr.source != tr.drain
                }
                _ => true,
            })
            .collect();
        FaultUniverse { faults }
    }
}

impl FromIterator<Fault> for FaultUniverse {
    fn from_iter<T: IntoIterator<Item = Fault>>(iter: T) -> Self {
        FaultUniverse {
            faults: iter.into_iter().collect(),
        }
    }
}

impl Extend<Fault> for FaultUniverse {
    fn extend<T: IntoIterator<Item = Fault>>(&mut self, iter: T) {
        self.faults.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{breakable_segment, insert_bridge};
    use fmossim_netlist::{Drive, Size, TransistorType};

    fn net_with_faults() -> (Network, Fault, Fault) {
        let mut net = Network::new();
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::L);
        let s = net.add_storage("S", Size::S1);
        let w = net.add_storage("W", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, a, s, gnd);
        let br = insert_bridge(&mut net, s, gnd, "sg");
        let op = breakable_segment(&mut net, s, w, "sw");
        (net, br, op)
    }

    #[test]
    fn stuck_nodes_skips_inputs_and_controls() {
        let (net, _, _) = net_with_faults();
        let u = FaultUniverse::stuck_nodes(&net);
        // Only S and W are storage; 2 faults each.
        assert_eq!(u.len(), 4);
        for (_, f) in u.iter() {
            match f {
                Fault::NodeStuck { node, .. } => {
                    assert!(!net.node(node).is_input());
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn stuck_transistors_skips_fault_devices() {
        let (net, _, _) = net_with_faults();
        let u = FaultUniverse::stuck_transistors(&net);
        // 3 transistors exist but 2 are fault devices → 1 × 2 faults.
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn bridges_and_opens_builders() {
        let (net, br, op) = net_with_faults();
        let (Fault::BridgeShort { control: cb }, Fault::LineOpen { control: co }) = (br, op) else {
            panic!("wrong variants");
        };
        let u = FaultUniverse::bridges([cb]).union(FaultUniverse::opens([co]));
        assert_eq!(u.len(), 2);
        assert_eq!(u.fault(FaultId(0)), br);
        assert_eq!(u.fault(FaultId(1)), op);
        let _ = net;
    }

    #[test]
    fn sample_is_reproducible_and_bounded() {
        let (net, _, _) = net_with_faults();
        let u = FaultUniverse::stuck_nodes(&net).union(FaultUniverse::stuck_transistors(&net));
        let s1 = u.sample(3, 42);
        let s2 = u.sample(3, 42);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 3);
        let all = u.sample(1000, 7);
        assert_eq!(all.len(), u.len());
        // Different seeds give different selections (overwhelmingly).
        let s3 = u.sample(3, 43);
        assert!(s1 != s3 || u.len() <= 3);
    }

    #[test]
    fn without_redundant_drops_depletion_stuck_closed() {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let a = net.add_input("A", Logic::L);
        let out = net.add_storage("OUT", Size::S1);
        // Depletion load (self-connected gate) + functional pulldown.
        net.add_transistor(TransistorType::D, Drive::D1, out, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, vdd);
        let u = FaultUniverse::stuck_transistors(&net).without_redundant(&net);
        // Load: only stuck-open survives; pulldown: both.
        assert_eq!(u.len(), 3);
        assert!(u
            .faults()
            .iter()
            .all(|f| !matches!(f, Fault::TransistorStuckClosed(t)
                if net.transistor(*t).ttype == TransistorType::D)));
    }

    #[test]
    fn without_redundant_keeps_node_faults() {
        let (net, _, _) = {
            let (n, b, o) = net_with_faults();
            (n, b, o)
        };
        let u = FaultUniverse::stuck_nodes(&net).clone();
        let before = u.len();
        assert_eq!(u.without_redundant(&net).len(), before);
    }

    #[test]
    fn subset_preserves_order_and_faults() {
        let (net, _, _) = net_with_faults();
        let u = FaultUniverse::stuck_nodes(&net);
        let ids = [FaultId(3), FaultId(0), FaultId(2)];
        let sub = u.subset(&ids);
        assert_eq!(sub.len(), 3);
        for (k, &id) in ids.iter().enumerate() {
            assert_eq!(sub.fault(FaultId(u32::try_from(k).unwrap())), u.fault(id));
        }
    }

    #[test]
    fn splits_partition_the_universe() {
        let (net, _, _) = net_with_faults();
        let u = FaultUniverse::stuck_nodes(&net).union(FaultUniverse::stuck_transistors(&net));
        for k in [1, 2, 3, u.len(), u.len() + 5] {
            for shards in [u.split_round_robin(k), u.split_contiguous(k)] {
                assert_eq!(shards.len(), k);
                let mut seen: Vec<FaultId> = shards.iter().flatten().copied().collect();
                seen.sort_unstable_by_key(|id| id.index());
                let all: Vec<FaultId> = u.iter().map(|(id, _)| id).collect();
                assert_eq!(seen, all, "k={k}: shards partition the ids");
                for shard in &shards {
                    assert!(
                        shard.windows(2).all(|w| w[0].index() < w[1].index()),
                        "ids ascending within a shard"
                    );
                }
            }
        }
    }

    #[test]
    fn split_shard_sizes_are_balanced() {
        let (net, _, _) = net_with_faults();
        let u = FaultUniverse::stuck_nodes(&net); // 4 faults
        for shards in [u.split_round_robin(3), u.split_contiguous(3)] {
            let sizes: Vec<usize> = shards.iter().map(Vec::len).collect();
            assert_eq!(sizes.iter().sum::<usize>(), 4);
            assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        }
        // k=0 is clamped to one shard, k > len leaves empties.
        assert_eq!(u.split_round_robin(0).len(), 1);
        assert_eq!(
            u.split_contiguous(9)
                .iter()
                .filter(|s| s.is_empty())
                .count(),
            5
        );
    }

    #[test]
    fn from_iterator_and_extend() {
        let (net, br, _) = net_with_faults();
        let mut u: FaultUniverse = std::iter::once(br).collect();
        u.extend(FaultUniverse::stuck_nodes(&net).faults().iter().copied());
        assert_eq!(u.len(), 5);
        assert!(!u.is_empty());
        assert!(FaultUniverse::new().is_empty());
    }
}
