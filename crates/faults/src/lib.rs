//! Fault models for switch-level MOS circuits.
//!
//! FMOSSIM (Bryant & Schuster, DAC 1985 §3) represents failures directly
//! in the switch-level model:
//!
//! * **Node faults** — a node behaves as an input node set to a fixed
//!   state ([`Fault::NodeStuck`]).
//! * **Transistor faults** — a transistor is permanently stuck open or
//!   closed, without changing its strength
//!   ([`Fault::TransistorStuckOpen`], [`Fault::TransistorStuckClosed`]).
//! * **Bridge shorts** — an extra transistor of very high strength
//!   between the two shorted nodes, gated by a *fault control* input
//!   that is 0 in the good circuit and 1 in the faulty circuit
//!   ([`inject::insert_bridge`], [`Fault::BridgeShort`]).
//! * **Line opens** — a wire is split into two parts joined by a very
//!   high strength transistor that conducts in the good circuit and is
//!   open in the faulty circuit ([`inject::breakable_segment`],
//!   [`Fault::LineOpen`]).
//!
//! Most significantly — and this is the paper's point — injecting these
//! faults requires no modelling capability beyond the switch-level
//! model itself: every fault reduces to a [`FaultEffect`], a per-circuit
//! override of either a node's classification/value or a transistor's
//! conduction.
//!
//! [`FaultUniverse`] enumerates the standard single-fault universes and
//! supports seeded random sampling (the paper's §5 "random sample of
//! the possible faults" experiments).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collapse;
mod fault;
pub mod inject;
mod universe;

pub use collapse::CollapseClasses;
pub use fault::{Fault, FaultEffect, FaultId};
pub use universe::FaultUniverse;

/// The default sampling seed used across the repository's harnesses
/// and examples (the paper's publication date, 1985-07-15), so that
/// every reported number is reproducible bit for bit.
pub const DEFAULT_SEED: u64 = 850_715;
