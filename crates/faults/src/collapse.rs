//! Static fault collapsing: equivalence analysis over the channel graph.
//!
//! ERASER-style fault simulators cut their work by never simulating
//! faults that are *provably equivalent* — guaranteed to produce the
//! same detection set as some representative under every stimulus that
//! the analysis was told about. [`CollapseClasses::analyze`] partitions
//! a [`FaultUniverse`] into such classes using purely structural rules
//! over the switch-level network; the simulator then runs only the
//! class representatives and fans each representative's detections back
//! out to every member at report time.
//!
//! The contract is *strict*: two faults land in one class only when
//! their faulty circuits have identical observed trajectories at every
//! declared output under every stimulus that assigns only the declared
//! stimulus inputs. Dominance-style collapsing (member detected ⇒
//! representative detected, but not vice versa) is deliberately not
//! performed — the repository's differential tests require fanned-out
//! reports to be bit-identical to uncollapsed runs.
//!
//! # Rules
//!
//! All rules are proved against the switch-level model of the DAC-85
//! paper (strength lattice λ < κ* < γ* < ω, ternary conduction). A node
//! is *pinned* when it is an input that no stimulus phase assigns and
//! whose default value is definite (Vdd, Gnd, tied-off controls): its
//! value is a constant of every circuit whose fault does not target it.
//!
//! 1. **Parallel twins** — two transistors with the same type, strength,
//!    gate and (unordered) channel terminals are exchanged by a network
//!    automorphism that fixes every node, so their stuck-open faults are
//!    equivalent, as are their stuck-closed faults. Source–drain
//!    symmetry of the switch model is what makes the unordered key
//!    correct.
//! 2. **Series same-gate stuck-open** — for a chain `u –t1– m –t2– w`
//!    where `t1`/`t2` share type, strength and gate, the interior node
//!    `m` has no other channel connections, is unobserved, and gates
//!    only depletion devices, and *both* outer nodes are pinned inputs:
//!    opening either transistor leaves `m` a dead-end stub hanging off a
//!    pinned rail, so `StuckOpen(t1) ≡ StuckOpen(t2)`.
//! 3. **Stuck node behind a dominant driver** — see
//!    [`CollapseClasses::analyze`]'s implementation notes; this is the
//!    workhorse for inverter/buffer chains: a stuck input of a
//!    restoring stage is equivalent to the corresponding stuck value of
//!    its output node.
//! 4. **Never detected** — faults whose effect is a no-op (depletion
//!    stuck-closed, self-looped channel, a forced conduction the pinned
//!    gate already forces, a forced node value the pin already holds)
//!    or whose effect terminals lie outside the observable region of
//!    the declared outputs all share one class: their detection sets
//!    are empty.
//!
//! Faults that fit no rule stay in singleton classes; collapsing is
//! always sound to skip and the identity partition is a valid result.

use crate::{Fault, FaultEffect, FaultId, FaultUniverse};
use fmossim_netlist::influence::{channel_component, gate_relevant_transistors, observable_region};
use fmossim_netlist::{
    Conduction, Drive, Logic, Network, NodeClass, NodeId, TransistorId, TransistorType,
};
use std::collections::HashMap;

/// Union–find over universe indices; attaching the larger root under
/// the smaller keeps every class root at its minimum member, which the
/// representative choice relies on.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..u32::try_from(n).expect("universe too large")).collect(),
        }
    }

    fn find(&mut self, mut i: u32) -> u32 {
        while self.parent[i as usize] != i {
            let gp = self.parent[self.parent[i as usize] as usize];
            self.parent[i as usize] = gp;
            i = gp;
        }
        i
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

/// The result of static fault collapsing: a partition of a parent
/// [`FaultUniverse`] into equivalence classes, each represented by its
/// lowest-indexed member.
///
/// The *collapsed universe* is the subset of representatives in
/// ascending parent order; collapsed fault `k` corresponds to parent
/// fault [`CollapseClasses::representatives`]`[k]`, and its detections
/// fan out to [`CollapseClasses::members_of`]`(FaultId(k))`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CollapseClasses {
    /// Parent index → parent index of its class representative.
    rep_of: Vec<u32>,
    /// Representatives in ascending parent order (dense collapsed ids).
    reps: Vec<FaultId>,
    /// Class members (ascending, representative first), parallel to
    /// `reps`.
    members: Vec<Vec<FaultId>>,
}

impl CollapseClasses {
    /// The identity partition: every fault its own representative.
    /// Running the collapsed universe is then exactly running the
    /// parent universe.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let reps: Vec<FaultId> = (0..u32::try_from(n).expect("universe too large"))
            .map(FaultId)
            .collect();
        CollapseClasses {
            rep_of: reps.iter().map(|r| r.0).collect(),
            members: reps.iter().map(|&r| vec![r]).collect(),
            reps,
        }
    }

    /// Number of faults in the parent universe.
    #[must_use]
    pub fn total_faults(&self) -> usize {
        self.rep_of.len()
    }

    /// Number of classes — the number of faults actually simulated.
    #[must_use]
    pub fn num_representatives(&self) -> usize {
        self.reps.len()
    }

    /// Number of non-trivial (multi-member) classes.
    #[must_use]
    pub fn num_collapsed_classes(&self) -> usize {
        self.members.iter().filter(|m| m.len() > 1).count()
    }

    /// The representatives in ascending parent order. Passing this list
    /// to [`FaultUniverse::subset`] builds the collapsed universe.
    #[must_use]
    pub fn representatives(&self) -> &[FaultId] {
        &self.reps
    }

    /// The parent-universe members of the class whose representative is
    /// collapsed fault `collapsed` (a dense id *in the collapsed
    /// universe*). Always non-empty; the representative itself comes
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `collapsed` is out of range.
    #[must_use]
    pub fn members_of(&self, collapsed: FaultId) -> &[FaultId] {
        &self.members[collapsed.index()]
    }

    /// The class representative (a parent-universe id) of parent fault
    /// `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of range.
    #[must_use]
    pub fn representative_of(&self, parent: FaultId) -> FaultId {
        FaultId(self.rep_of[parent.index()])
    }

    /// Builds the collapsed universe (the representatives of `parent`,
    /// in ascending parent order).
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not the universe this partition was
    /// computed for (length mismatch).
    #[must_use]
    pub fn collapsed_universe(&self, parent: &FaultUniverse) -> FaultUniverse {
        assert_eq!(parent.len(), self.total_faults(), "universe mismatch");
        parent.subset(&self.reps)
    }

    /// Computes the equivalence partition of `universe` over `net`.
    ///
    /// `outputs` are the observed nodes (detection happens only there);
    /// `assigned_inputs` are the input nodes some stimulus phase may
    /// assign. Every other input is treated as pinned at its default
    /// value — the rails the structural rules lean on. Passing a
    /// superset of the truly assigned inputs is always sound (it only
    /// weakens the analysis); passing outputs or assigned inputs that
    /// the stimulus does not use is likewise sound.
    ///
    /// The dominant-driver rule (rule 3 of the module docs) fires for a
    /// storage node `z` *all* of whose channel transistors lead to
    /// pinned rails, with a candidate transistor `t` gated by a storage
    /// node `a`, when:
    ///
    /// * **dominance** — every other channel transistor of `z` that can
    ///   ever conduct either pulls to `t`'s rail value or is strictly
    ///   weaker than `t`, so whenever `t` conducts, `z` resolves to
    ///   `t`'s rail value definitely (`z`'s component is `{z}` alone,
    ///   so no charge-sharing partner can interfere, and `z`'s own κ
    ///   charge is below every γ drive);
    /// * **containment** — `a` is unobserved, gates nothing but `t` and
    ///   depletion devices, and every other storage node in `a`'s
    ///   channel-connected component is unobserved and gates only
    ///   depletion devices, so forcing `a` diverges nothing observable
    ///   except through `t`.
    ///
    /// Then `NodeStuck(a, g)` — `g` the gate value that makes `t`
    /// conduct — is equivalent to `NodeStuck(z, rail(t))`: both hold
    /// `z` at `rail(t)` (at ω vs. dominant γ strength, which nothing
    /// can distinguish since `z`'s group has no other storage member),
    /// and the circuits' divergent regions are unobservable. When `t`
    /// is the *only* gated channel transistor of `z` (a restoring
    /// inverter), the opposite stuck value of `a` likewise pins `z` at
    /// the always-on pull value, giving the second class.
    #[must_use]
    pub fn analyze(
        net: &Network,
        universe: &FaultUniverse,
        outputs: &[NodeId],
        assigned_inputs: &[NodeId],
    ) -> Self {
        let n = universe.len();
        let mut dsu = Dsu::new(n);

        // First-occurrence index per distinct fault; duplicates union
        // into their first occurrence immediately so every later rule
        // can work with one index per fault.
        let mut first: HashMap<Fault, u32> = HashMap::new();
        for (id, f) in universe.iter() {
            match first.entry(f) {
                std::collections::hash_map::Entry::Occupied(e) => dsu.union(*e.get(), id.0),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(id.0);
                }
            }
        }

        let mut assigned = vec![false; net.num_nodes()];
        for &a in assigned_inputs {
            assigned[a.index()] = true;
        }
        let pinned: Vec<Option<Logic>> = net
            .nodes()
            .map(|(id, node)| match node.class {
                NodeClass::Input(v) if !assigned[id.index()] && v != Logic::X => Some(v),
                _ => None,
            })
            .collect();
        let mut observed = vec![false; net.num_nodes()];
        for &o in outputs {
            observed[o.index()] = true;
        }
        let region = observable_region(net, outputs);

        let mut union_faults = |a: Fault, b: Fault| {
            if let (Some(&i), Some(&j)) = (first.get(&a), first.get(&b)) {
                dsu.union(i, j);
            }
        };

        // Rule 1: parallel twins.
        let mut twins: HashMap<(TransistorType, Drive, NodeId, NodeId, NodeId), TransistorId> =
            HashMap::new();
        for (tid, tr) in net.transistors() {
            let (lo, hi) = if tr.source <= tr.drain {
                (tr.source, tr.drain)
            } else {
                (tr.drain, tr.source)
            };
            match twins.entry((tr.ttype, tr.strength, tr.gate, lo, hi)) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let twin = *e.get();
                    union_faults(
                        Fault::TransistorStuckOpen(twin),
                        Fault::TransistorStuckOpen(tid),
                    );
                    union_faults(
                        Fault::TransistorStuckClosed(twin),
                        Fault::TransistorStuckClosed(tid),
                    );
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(tid);
                }
            }
        }

        // Rule 2: series same-gate stuck-open with pinned outer rails.
        for (mid, node) in net.nodes() {
            if node.is_input()
                || observed[mid.index()]
                || net.channel_transistors(mid).len() != 2
                || gate_relevant_transistors(net, mid).next().is_some()
            {
                continue;
            }
            let (t1, t2) = (
                net.channel_transistors(mid)[0],
                net.channel_transistors(mid)[1],
            );
            let (a, b) = (net.transistor(t1), net.transistor(t2));
            if t1 == t2
                || a.source == a.drain
                || b.source == b.drain
                || a.ttype != b.ttype
                || a.strength != b.strength
                || a.gate != b.gate
            {
                continue;
            }
            let (u, w) = (a.other_end(mid), b.other_end(mid));
            if pinned[u.index()].is_some() && pinned[w.index()].is_some() {
                union_faults(
                    Fault::TransistorStuckOpen(t1),
                    Fault::TransistorStuckOpen(t2),
                );
            }
        }

        // Rule 3: stuck node behind a dominant driver.
        #[derive(Clone, Copy, PartialEq)]
        enum Pull {
            /// Always conducting (depletion, or gate pinned closed).
            Load,
            /// Never conducting (gate pinned open) — ignore entirely.
            Dead,
            /// Conduction varies with an unpinned gate.
            Gated,
        }
        for (z, znode) in net.nodes() {
            if znode.is_input() {
                continue;
            }
            let ch = net.channel_transistors(z);
            if ch.is_empty()
                || !ch
                    .iter()
                    .all(|&t| pinned[net.transistor(t).other_end(z).index()].is_some())
            {
                continue;
            }
            let classify = |t: TransistorId| -> Pull {
                let tr = net.transistor(t);
                if tr.ttype == TransistorType::D {
                    return Pull::Load;
                }
                match pinned[tr.gate.index()] {
                    Some(v) => match tr.ttype.conduction(v) {
                        Conduction::Closed => Pull::Load,
                        Conduction::Open => Pull::Dead,
                        Conduction::Maybe => Pull::Gated,
                    },
                    None => Pull::Gated,
                }
            };
            let rail = |t: TransistorId| pinned[net.transistor(t).other_end(z).index()];
            let gated: Vec<TransistorId> = ch
                .iter()
                .copied()
                .filter(|&t| classify(t) == Pull::Gated)
                .collect();
            let loads: Vec<TransistorId> = ch
                .iter()
                .copied()
                .filter(|&t| classify(t) == Pull::Load)
                .collect();
            for &t in &gated {
                let tr = net.transistor(t);
                let a = tr.gate;
                // Containment: a storage, unobserved, gating only t and
                // depletion devices; a's whole component contained.
                if net.node(a).is_input()
                    || a == z
                    || observed[a.index()]
                    || gate_relevant_transistors(net, a).any(|g| g != t)
                    || channel_component(net, a).iter().any(|&c| {
                        c != a
                            && (observed[c.index()]
                                || gate_relevant_transistors(net, c).next().is_some())
                    })
                {
                    continue;
                }
                // Dominance of t over every other live pull of z.
                let r_t = rail(t).expect("all rails pinned");
                let dominant = ch.iter().all(|&o| {
                    o == t
                        || classify(o) == Pull::Dead
                        || rail(o) == Some(r_t)
                        || net.transistor(o).strength < tr.strength
                });
                if !dominant {
                    continue;
                }
                let g = match tr.ttype {
                    TransistorType::N => Logic::H,
                    TransistorType::P => Logic::L,
                    TransistorType::D => continue, // classified Load above
                };
                union_faults(
                    Fault::NodeStuck { node: a, value: g },
                    Fault::NodeStuck {
                        node: z,
                        value: r_t,
                    },
                );
                // Restoring-inverter special case: t is the only gated
                // pull, so the opposite stuck value of a leaves z held
                // at the (unanimous) load value.
                let v_load = loads.first().and_then(|&l| rail(l));
                if gated.len() == 1 && !loads.is_empty() && loads.iter().all(|&l| rail(l) == v_load)
                {
                    if let Some(v_load) = v_load {
                        let not_g = if g == Logic::H { Logic::L } else { Logic::H };
                        union_faults(
                            Fault::NodeStuck {
                                node: a,
                                value: not_g,
                            },
                            Fault::NodeStuck {
                                node: z,
                                value: v_load,
                            },
                        );
                    }
                }
            }
        }

        // Rule 4: never-detected faults form one class.
        let mut nullish: Option<u32> = None;
        for (id, f) in universe.iter() {
            if first.get(&f) != Some(&id.0) {
                continue; // duplicates already follow their first copy
            }
            let noop = match f.effect() {
                FaultEffect::ForceTransistor { t, cond } => {
                    let tr = net.transistor(t);
                    tr.source == tr.drain
                        || (tr.ttype == TransistorType::D && cond == Conduction::Closed)
                        || pinned[tr.gate.index()].is_some_and(|v| tr.ttype.conduction(v) == cond)
                }
                FaultEffect::ForceNode { node, value } => pinned[node.index()] == Some(value),
            };
            let unobservable = match f.effect() {
                FaultEffect::ForceNode { node, .. } => !region[node.index()],
                FaultEffect::ForceTransistor { t, .. } => {
                    let tr = net.transistor(t);
                    !region[tr.source.index()] && !region[tr.drain.index()]
                }
            };
            if noop || unobservable {
                match nullish {
                    Some(root) => dsu.union(root, id.0),
                    None => nullish = Some(id.0),
                }
            }
        }

        // Normalise: representative = minimum index of each class
        // (guaranteed by the union direction), classes in ascending
        // representative order.
        let mut rep_of = vec![0u32; n];
        let mut by_rep: HashMap<u32, Vec<FaultId>> = HashMap::new();
        for i in 0..n {
            let i = u32::try_from(i).expect("checked by Dsu::new");
            let r = dsu.find(i);
            rep_of[i as usize] = r;
            by_rep.entry(r).or_default().push(FaultId(i));
        }
        let mut reps: Vec<FaultId> = by_rep.keys().copied().map(FaultId).collect();
        reps.sort_unstable();
        let members = reps
            .iter()
            .map(|r| by_rep.remove(&r.0).expect("collected above"))
            .collect();
        CollapseClasses {
            rep_of,
            reps,
            members,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_netlist::Size;

    /// nMOS inverter: depletion load + enhancement pulldown.
    fn add_inv(net: &mut Network, a: NodeId, name: &str) -> NodeId {
        let vdd = net.find_node("Vdd").expect("rail");
        let gnd = net.find_node("Gnd").expect("rail");
        let out = net.add_storage(name, Size::S1);
        net.add_transistor(TransistorType::D, Drive::D1, out, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
        out
    }

    fn rails() -> Network {
        let mut net = Network::new();
        net.add_input("Vdd", Logic::H);
        net.add_input("Gnd", Logic::L);
        net
    }

    fn class_of(cc: &CollapseClasses, u: &FaultUniverse, f: Fault) -> Vec<Fault> {
        let (id, _) = u.iter().find(|&(_, g)| g == f).expect("fault in universe");
        let rep = cc.representative_of(id);
        let k = cc
            .representatives()
            .iter()
            .position(|&r| r == rep)
            .expect("rep listed");
        cc.members_of(FaultId(u32::try_from(k).unwrap()))
            .iter()
            .map(|&m| u.fault(m))
            .collect()
    }

    #[test]
    fn identity_partition_is_trivial() {
        let cc = CollapseClasses::identity(3);
        assert_eq!(cc.total_faults(), 3);
        assert_eq!(cc.num_representatives(), 3);
        assert_eq!(cc.num_collapsed_classes(), 0);
        assert_eq!(cc.representative_of(FaultId(2)), FaultId(2));
        assert_eq!(cc.members_of(FaultId(1)), &[FaultId(1)]);
    }

    #[test]
    fn duplicates_collapse_to_first_occurrence() {
        let mut net = rails();
        let a = net.add_input("A", Logic::L);
        let out = add_inv(&mut net, a, "OUT");
        let f = Fault::NodeStuck {
            node: out,
            value: Logic::L,
        };
        let u = FaultUniverse::from_faults(vec![f, f, f]);
        let cc = CollapseClasses::analyze(&net, &u, &[out], &[a]);
        assert_eq!(cc.num_representatives(), 1);
        assert_eq!(cc.representatives(), &[FaultId(0)]);
        assert_eq!(
            cc.members_of(FaultId(0)),
            &[FaultId(0), FaultId(1), FaultId(2)]
        );
        assert_eq!(cc.collapsed_universe(&u).len(), 1);
    }

    #[test]
    fn parallel_twins_collapse_by_kind() {
        let mut net = rails();
        let a = net.add_input("A", Logic::L);
        let out = add_inv(&mut net, a, "OUT");
        let gnd = net.find_node("Gnd").expect("rail");
        // A second, identical pulldown in parallel (same unordered
        // terminals, written swapped to exercise source–drain symmetry).
        let t2 = net.add_transistor(TransistorType::N, Drive::D2, a, gnd, out);
        let t1 = net
            .transistors()
            .find(|(_, tr)| tr.ttype == TransistorType::N && tr.source == out)
            .map(|(id, _)| id)
            .expect("original pulldown");
        let u = FaultUniverse::stuck_transistors(&net);
        let cc = CollapseClasses::analyze(&net, &u, &[out], &[a]);
        let opens = class_of(&cc, &u, Fault::TransistorStuckOpen(t1));
        assert!(opens.contains(&Fault::TransistorStuckOpen(t2)));
        assert!(!opens.contains(&Fault::TransistorStuckClosed(t2)));
        let closed = class_of(&cc, &u, Fault::TransistorStuckClosed(t1));
        assert!(closed.contains(&Fault::TransistorStuckClosed(t2)));
    }

    #[test]
    fn series_same_gate_stuck_open_collapses_with_pinned_rails() {
        let mut net = rails();
        let a = net.add_input("A", Logic::L);
        let out = add_inv(&mut net, a, "OUT");
        // Pinned-rail series pair: Vdd –t1– MID –t2– Gnd, both gated by
        // the (storage) inverter output so the gate is not pinned.
        let vdd = net.find_node("Vdd").expect("rail");
        let gnd = net.find_node("Gnd").expect("rail");
        let mid = net.add_storage("MID", Size::S1);
        let t1 = net.add_transistor(TransistorType::N, Drive::D2, out, vdd, mid);
        let t2 = net.add_transistor(TransistorType::N, Drive::D2, out, mid, gnd);
        let u = FaultUniverse::stuck_transistors(&net);
        let cc = CollapseClasses::analyze(&net, &u, &[out], &[a]);
        let opens = class_of(&cc, &u, Fault::TransistorStuckOpen(t1));
        assert!(opens.contains(&Fault::TransistorStuckOpen(t2)));
        // Stuck-closed is NOT equivalent (t1 closed shorts Vdd→MID,
        // t2 closed shorts MID→Gnd — different surviving pull paths).
        let closed = class_of(&cc, &u, Fault::TransistorStuckClosed(t1));
        assert!(!closed.contains(&Fault::TransistorStuckClosed(t2)));
    }

    #[test]
    fn series_rule_requires_pinned_outer_nodes() {
        let mut net = rails();
        let a = net.add_input("A", Logic::L);
        let b = net.add_input("B", Logic::L);
        let out = add_inv(&mut net, a, "OUT");
        let gnd = net.find_node("Gnd").expect("rail");
        // Classic nand chain: OUT –t1– MID –t2– Gnd with distinct gates
        // (no collapse: different gates), and a same-gate chain whose
        // outer node OUT is storage (no collapse: κ-charge asymmetry).
        let mid = net.add_storage("MID", Size::S1);
        let t1 = net.add_transistor(TransistorType::N, Drive::D2, b, out, mid);
        let t2 = net.add_transistor(TransistorType::N, Drive::D2, b, mid, gnd);
        let u = FaultUniverse::stuck_transistors(&net);
        let cc = CollapseClasses::analyze(&net, &u, &[out], &[a, b]);
        let opens = class_of(&cc, &u, Fault::TransistorStuckOpen(t1));
        assert!(!opens.contains(&Fault::TransistorStuckOpen(t2)));
    }

    #[test]
    fn inverter_input_stuck_collapses_onto_output_stuck() {
        let mut net = rails();
        let a = net.add_input("A", Logic::L);
        let x = add_inv(&mut net, a, "X");
        let out = add_inv(&mut net, x, "OUT");
        let u = FaultUniverse::stuck_nodes(&net);
        let cc = CollapseClasses::analyze(&net, &u, &[out], &[a]);
        // X stuck-at-1 turns the second pulldown on → OUT stuck-at-0;
        // X stuck-at-0 leaves only the load → OUT stuck-at-1.
        let c = class_of(
            &cc,
            &u,
            Fault::NodeStuck {
                node: x,
                value: Logic::H,
            },
        );
        assert!(c.contains(&Fault::NodeStuck {
            node: out,
            value: Logic::L
        }));
        let c = class_of(
            &cc,
            &u,
            Fault::NodeStuck {
                node: x,
                value: Logic::L,
            },
        );
        assert!(c.contains(&Fault::NodeStuck {
            node: out,
            value: Logic::H
        }));
        assert_eq!(cc.num_collapsed_classes(), 2);
        assert_eq!(cc.num_representatives(), 2);
    }

    #[test]
    fn observed_or_fanned_out_drivers_do_not_collapse() {
        let mut net = rails();
        let a = net.add_input("A", Logic::L);
        let x = add_inv(&mut net, a, "X");
        let out = add_inv(&mut net, x, "OUT");
        let out2 = add_inv(&mut net, x, "OUT2");
        let u = FaultUniverse::stuck_nodes(&net);
        // X observed directly: forcing X is visible, forcing OUT is not
        // equivalent.
        let cc = CollapseClasses::analyze(&net, &u, &[out, x], &[a]);
        let c = class_of(
            &cc,
            &u,
            Fault::NodeStuck {
                node: x,
                value: Logic::H,
            },
        );
        assert_eq!(c.len(), 1);
        // X fanning out to two gates: a stuck X diverges both stages.
        let cc = CollapseClasses::analyze(&net, &u, &[out, out2], &[a]);
        let c = class_of(
            &cc,
            &u,
            Fault::NodeStuck {
                node: x,
                value: Logic::H,
            },
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn never_detected_faults_share_one_class() {
        let mut net = rails();
        let a = net.add_input("A", Logic::L);
        let out = add_inv(&mut net, a, "OUT");
        // An unobserved island: B drives ISLAND, nothing reads it.
        let b = net.add_input("B", Logic::L);
        let island = add_inv(&mut net, b, "ISLAND");
        let load = net
            .transistors()
            .find(|(_, tr)| tr.ttype == TransistorType::D && tr.gate == out)
            .map(|(id, _)| id)
            .expect("OUT's load");
        let u = FaultUniverse::stuck_transistors(&net).union(FaultUniverse::stuck_nodes(&net));
        let cc = CollapseClasses::analyze(&net, &u, &[out], &[a, b]);
        // Depletion stuck-closed is a no-op; island faults are outside
        // the observable region; all land in one class.
        let c = class_of(&cc, &u, Fault::TransistorStuckClosed(load));
        assert!(c.contains(&Fault::NodeStuck {
            node: island,
            value: Logic::H
        }));
        assert!(c.contains(&Fault::NodeStuck {
            node: island,
            value: Logic::L
        }));
        // The load stuck-open is a real, detectable fault.
        let c = class_of(&cc, &u, Fault::TransistorStuckOpen(load));
        assert!(!c.contains(&Fault::TransistorStuckClosed(load)));
    }

    #[test]
    fn assigned_inputs_disable_pinning() {
        let mut net = rails();
        let a = net.add_input("A", Logic::L);
        let x = add_inv(&mut net, a, "X");
        let out = add_inv(&mut net, x, "OUT");
        let u = FaultUniverse::stuck_nodes(&net);
        // If the stimulus may drive Vdd/Gnd, nothing is pinned and the
        // dominant-driver rule must not fire: X's stuck faults stay
        // singletons (they are observable, so rule 4 leaves them too).
        let vdd = net.find_node("Vdd").expect("rail");
        let gnd = net.find_node("Gnd").expect("rail");
        let cc = CollapseClasses::analyze(&net, &u, &[out], &[a, vdd, gnd]);
        for value in [Logic::L, Logic::H] {
            let c = class_of(&cc, &u, Fault::NodeStuck { node: x, value });
            assert_eq!(c.len(), 1);
        }
    }

    #[test]
    fn representatives_build_a_consistent_collapsed_universe() {
        let mut net = rails();
        let a = net.add_input("A", Logic::L);
        let x = add_inv(&mut net, a, "X");
        let out = add_inv(&mut net, x, "OUT");
        let u = FaultUniverse::stuck_nodes(&net);
        let cc = CollapseClasses::analyze(&net, &u, &[out], &[a]);
        let collapsed = cc.collapsed_universe(&u);
        assert_eq!(collapsed.len(), cc.num_representatives());
        for (k, &rep) in cc.representatives().iter().enumerate() {
            let kid = FaultId(u32::try_from(k).unwrap());
            assert_eq!(collapsed.fault(kid), u.fault(rep));
            let members = cc.members_of(kid);
            assert_eq!(members[0], rep, "representative leads its class");
            for &m in members {
                assert_eq!(cc.representative_of(m), rep);
            }
            assert!(members.windows(2).all(|w| w[0] < w[1]), "ascending");
        }
        // Every parent fault appears in exactly one class.
        let total: usize = (0..cc.num_representatives())
            .map(|k| cc.members_of(FaultId(u32::try_from(k).unwrap())).len())
            .sum();
        assert_eq!(total, u.len());
    }
}
