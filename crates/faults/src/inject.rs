//! Structural fault injection: pre-inserted fault transistors.
//!
//! The DAC-85 paper (§3) injects shorts and opens "by inserting extra
//! fault transistors in the network": a short is a very-high-strength
//! transistor between the two nodes, set to 1 in the faulty circuit and
//! 0 in the good circuit; an open splits a node into two parts joined by
//! a very-high-strength transistor set the opposite way. These helpers
//! implement that insertion; the resulting [`Fault`] values are plain
//! per-circuit input overrides on the control nodes.
//!
//! Fault devices are recognisable by their control-node name prefix
//! [`FAULT_PREFIX`], so fault-universe enumeration can exclude them from
//! the functional fault lists.

use crate::Fault;
use fmossim_netlist::{Drive, Logic, Network, NodeId, TransistorId, TransistorType};

/// Name prefix of fault-control input nodes. Nodes with this prefix —
/// and the transistors they gate — are fault devices, not functional
/// circuitry.
pub const FAULT_PREFIX: &str = "#fault.";

/// True iff `n` is a fault-control input created by this module.
#[must_use]
pub fn is_fault_control(net: &Network, n: NodeId) -> bool {
    net.node(n).name.starts_with(FAULT_PREFIX)
}

/// True iff `t` is a fault device (gated by a fault-control node).
#[must_use]
pub fn is_fault_device(net: &Network, t: TransistorId) -> bool {
    is_fault_control(net, net.transistor(t).gate)
}

/// Inserts a potential bridge short between nodes `a` and `b`.
///
/// Adds a fault-control input (default 0) and an n-type transistor of
/// strength [`Drive::FAULT`] between `a` and `b` gated by it. In the
/// good circuit the bridge never conducts; the returned
/// [`Fault::BridgeShort`] flips the control to 1 in the faulty circuit.
///
/// # Panics
///
/// Panics if a bridge with the same `label` was already inserted.
pub fn insert_bridge(net: &mut Network, a: NodeId, b: NodeId, label: &str) -> Fault {
    let control = net.add_input(format!("{FAULT_PREFIX}bridge.{label}"), Logic::L);
    net.add_transistor(TransistorType::N, Drive::FAULT, control, a, b);
    Fault::BridgeShort { control }
}

/// Creates a *breakable segment*: a very-high-strength transistor
/// joining `a` and `b` that conducts in the good circuit. Use this at
/// circuit-generation time wherever a wire should be breakable: build
/// the wire as two nodes `a`, `b` and join them with this segment.
///
/// Returns the [`Fault::LineOpen`] that opens the segment in a faulty
/// circuit.
///
/// # Panics
///
/// Panics if a segment with the same `label` was already inserted.
pub fn breakable_segment(net: &mut Network, a: NodeId, b: NodeId, label: &str) -> Fault {
    let control = net.add_input(format!("{FAULT_PREFIX}open.{label}"), Logic::H);
    net.add_transistor(TransistorType::N, Drive::FAULT, control, a, b);
    Fault::LineOpen { control }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_netlist::{Size, Strength};
    use fmossim_switch::LogicSim;

    #[test]
    fn bridge_is_inert_in_good_circuit() {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let en = net.add_input("EN", Logic::H);
        let a = net.add_storage("A1", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, en, vdd, a);
        let fault = insert_bridge(&mut net, a, gnd, "a-gnd");
        let mut sim = LogicSim::new(&net);
        sim.settle();
        // Good circuit: A is driven high, the bridge does not conduct.
        assert_eq!(sim.get(a), Logic::H);
        // Activating the control (as the faulty circuit would) shorts
        // A to ground through the γ7 device, overriding the γ2 driver.
        match fault {
            Fault::BridgeShort { control } => {
                sim.set_input(control, Logic::H);
                sim.settle();
                assert_eq!(sim.get(a), Logic::L);
            }
            other => panic!("expected bridge, got {other:?}"),
        }
    }

    #[test]
    fn segment_conducts_in_good_circuit_and_opens_in_faulty() {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let en = net.add_input("EN", Logic::H);
        let near = net.add_storage("W.near", Size::S1);
        let far = net.add_storage("W.far", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, en, vdd, near);
        let fault = breakable_segment(&mut net, near, far, "w0");
        let mut sim = LogicSim::new(&net);
        sim.settle();
        assert_eq!(sim.get(near), Logic::H);
        assert_eq!(sim.get(far), Logic::H, "segment conducts normally");
        match fault {
            Fault::LineOpen { control } => {
                sim.set_input(control, Logic::L);
                sim.settle();
                assert_eq!(sim.get(near), Logic::H);
                // The far side is now isolated; it keeps its old charge.
                assert_eq!(sim.get(far), Logic::H);
            }
            other => panic!("expected open, got {other:?}"),
        }
    }

    #[test]
    fn fault_devices_are_recognised() {
        let mut net = Network::new();
        let a = net.add_input("A", Logic::L);
        let b = net.add_storage("B", Size::S1);
        let t_norm = net.add_transistor(TransistorType::N, Drive::D2, a, a, b);
        insert_bridge(&mut net, a, b, "x");
        let t_fault = fmossim_netlist::TransistorId::from_index(1);
        assert!(!is_fault_device(&net, t_norm));
        assert!(is_fault_device(&net, t_fault));
        let ctl = net.find_node("#fault.bridge.x").expect("control exists");
        assert!(is_fault_control(&net, ctl));
        assert!(!is_fault_control(&net, a));
    }

    #[test]
    fn fault_strength_dominates_all_drives() {
        // γ7 must beat every functional strength the generators use.
        for g in 1..=6u8 {
            let d = Drive::new(g).expect("valid");
            assert!(Strength::from_drive(Drive::FAULT) > Strength::from_drive(d));
        }
    }
}
