//! The shared campaign worker pool: a fixed set of OS threads serving
//! per-job task queues in round-robin order.
//!
//! Every submitted campaign is decomposed into per-shard tasks (see
//! [`ServedBackend`](crate::ServedBackend)) and *all* campaigns share
//! this one pool — the server's CPU footprint is `workers` threads no
//! matter how many campaigns are in flight. Fairness is structural:
//! each job owns its own FIFO queue and an idle worker always takes
//! the *next job's* front task, so a 10 000-shard campaign cannot
//! starve a 4-shard one submitted after it; they interleave one task
//! at a time.
//!
//! Coordinator threads (one lightweight thread per job, owned by the
//! server) never run on this pool — only leaf shard tasks do, so a
//! full pool can never deadlock waiting on its own results.

use fmossim_telemetry::{Gauge, Registry};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    /// One `(job id, FIFO of tasks)` entry per job with queued work,
    /// in service order: workers pop the front entry, take one task,
    /// and re-append the entry if tasks remain — round-robin.
    queues: VecDeque<(u64, VecDeque<Task>)>,
    /// Total queued (not yet started) tasks across all jobs.
    queued: usize,
    /// Cleared on shutdown; workers exit once the queues drain.
    open: bool,
}

struct Inner {
    state: Mutex<PoolState>,
    ready: Condvar,
    workers: usize,
    depth: Gauge,
}

/// The shared, fairly-scheduled worker pool (see the module docs).
///
/// ```
/// use fmossim_serve::SharedPool;
/// use fmossim_telemetry::Registry;
/// use std::sync::mpsc;
///
/// let pool = SharedPool::new(2, &Registry::new());
/// assert_eq!(pool.workers(), 2);
/// let (tx, rx) = mpsc::channel();
/// for i in 0..8u32 {
///     let tx = tx.clone();
///     pool.submit(u64::from(i % 2), move || tx.send(i).unwrap());
/// }
/// drop(tx);
/// let mut got: Vec<u32> = rx.iter().collect();
/// got.sort_unstable();
/// assert_eq!(got, (0..8).collect::<Vec<_>>());
/// ```
pub struct SharedPool {
    inner: Arc<Inner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl SharedPool {
    /// Spawns a pool of `workers` threads (at least one). The
    /// `serve.pool.depth` gauge in `registry` tracks the queued-task
    /// count; pass [`Registry::null`] to skip instrumentation.
    #[must_use]
    pub fn new(workers: usize, registry: &Registry) -> SharedPool {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(PoolState {
                queues: VecDeque::new(),
                queued: 0,
                open: true,
            }),
            ready: Condvar::new(),
            workers,
            depth: registry.gauge("serve.pool.depth"),
        });
        let handles = (0..workers)
            .map(|k| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{k}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn pool worker")
            })
            .collect();
        SharedPool {
            inner,
            handles: Mutex::new(handles),
        }
    }

    /// The pool's thread count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Tasks queued and not yet started (running tasks excluded).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.inner.state.lock().expect("pool state poisoned").queued
    }

    /// Enqueues one task under `job`'s queue. Tasks of the same job
    /// run in submission order relative to each other (when served by
    /// one worker at a time); tasks of different jobs interleave.
    pub fn submit(&self, job: u64, task: impl FnOnce() + Send + 'static) {
        let mut state = self.inner.state.lock().expect("pool state poisoned");
        assert!(state.open, "submit on a shut-down pool");
        match state.queues.iter_mut().find(|(id, _)| *id == job) {
            Some((_, queue)) => queue.push_back(Box::new(task)),
            None => {
                let mut queue = VecDeque::new();
                queue.push_back(Box::new(task) as Task);
                state.queues.push_back((job, queue));
            }
        }
        state.queued += 1;
        self.inner.depth.set(state.queued as f64);
        drop(state);
        self.inner.ready.notify_one();
    }
}

impl Drop for SharedPool {
    /// Drains remaining queued tasks, then joins the workers.
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock().expect("pool state poisoned");
            state.open = false;
        }
        self.inner.ready.notify_all();
        for handle in self.handles.lock().expect("handles poisoned").drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let task = {
            let mut state = inner.state.lock().expect("pool state poisoned");
            loop {
                if let Some((job, mut queue)) = state.queues.pop_front() {
                    let task = queue.pop_front().expect("queued job has a task");
                    if !queue.is_empty() {
                        state.queues.push_back((job, queue));
                    }
                    state.queued -= 1;
                    inner.depth.set(state.queued as f64);
                    break task;
                }
                if !state.open {
                    return;
                }
                state = inner.ready.wait(state).expect("pool state poisoned");
            }
        };
        task();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_every_task_across_workers() {
        let pool = SharedPool::new(4, &Registry::null());
        let (tx, rx) = mpsc::channel();
        for i in 0..64u32 {
            let tx = tx.clone();
            pool.submit(u64::from(i % 5), move || tx.send(i).unwrap());
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn round_robin_interleaves_jobs() {
        // One worker, gated so both jobs' tasks queue up before any
        // run: service order must alternate A, B, A, B…, not drain A
        // first even though all of A was submitted first.
        let pool = SharedPool::new(1, &Registry::null());
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        pool.submit(99, move || {
            gate_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        });
        let (tx, rx) = mpsc::channel();
        for i in 0..3 {
            let tx = tx.clone();
            pool.submit(0, move || tx.send(format!("a{i}")).unwrap());
        }
        for i in 0..3 {
            let tx = tx.clone();
            pool.submit(1, move || tx.send(format!("b{i}")).unwrap());
        }
        drop(tx);
        gate_tx.send(()).unwrap();
        let order: Vec<String> = rx.iter().collect();
        assert_eq!(order, ["a0", "b0", "a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn depth_gauge_tracks_the_queue() {
        let registry = Registry::new();
        let pool = SharedPool::new(1, &registry);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        pool.submit(0, move || {
            gate_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        });
        // Wait until the worker has *started* the gate task (depth 0).
        while pool.queued() > 0 {
            std::thread::yield_now();
        }
        pool.submit(0, || {});
        pool.submit(1, || {});
        assert_eq!(pool.queued(), 2);
        assert_eq!(registry.gauge("serve.pool.depth").get(), 2.0);
        gate_tx.send(()).unwrap();
        drop(pool); // drains and joins
        assert_eq!(registry.gauge("serve.pool.depth").get(), 0.0);
    }

    #[test]
    fn drop_drains_queued_tasks() {
        let pool = SharedPool::new(2, &Registry::null());
        let (tx, rx) = mpsc::channel();
        for i in 0..16u32 {
            let tx = tx.clone();
            pool.submit(0, move || tx.send(i).unwrap());
        }
        drop(tx);
        drop(pool);
        assert_eq!(rx.iter().count(), 16, "nothing lost at shutdown");
    }
}
