//! Hand-rolled HTTP/1.1 plumbing over `std::io` — request parsing,
//! fixed-length responses, and chunked transfer framing for SSE.
//!
//! Everything here reads from `dyn BufRead` and writes to `dyn Write`,
//! never a socket, so the whole layer unit-tests against plain byte
//! buffers (see the golden-byte tests at the bottom of this module).
//! The server glues these pieces onto a `TcpStream`; nothing else.
//!
//! Scope is deliberately the subset the campaign API needs: methods
//! with optional `Content-Length` bodies (no chunked *request* bodies),
//! HTTP/1.0 and 1.1 with standard keep-alive defaults, fixed-length
//! responses, and chunked responses for the SSE event stream.

use std::io::{self, BufRead, Write};

/// Largest accepted request body. Netlist submissions are text; the
/// paper's largest benchmark circuit (RAM256) serialises well under a
/// megabyte, so 4 MiB leaves generous headroom while bounding what a
/// client can make the server buffer.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// Largest accepted request head (request line plus headers).
pub const MAX_HEAD: usize = 64 * 1024;

/// A parsed HTTP request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// The method, as sent (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// The request target (path plus any query string), as sent.
    pub target: String,
    /// Header name/value pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when there was no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should be kept open after responding
    /// (HTTP/1.1 default, overridable with `Connection:` either way).
    pub keep_alive: bool,
}

impl Request {
    /// First header with this (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::BadRequest`] on invalid UTF-8.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::BadRequest("request body is not valid utf-8".into()))
    }
}

/// Why a request could not be parsed, mapped to a response status.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header, or body → `400`.
    BadRequest(String),
    /// Declared `Content-Length` above [`MAX_BODY`], or the head above
    /// [`MAX_HEAD`] → `413`.
    TooLarge,
    /// A well-formed request using a feature this server does not
    /// implement (e.g. chunked request bodies) → `501`.
    Unsupported(String),
}

impl HttpError {
    /// The response status code for this error.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::TooLarge => 413,
            HttpError::Unsupported(_) => 501,
        }
    }

    /// Human-readable detail for the error response body.
    #[must_use]
    pub fn detail(&self) -> &str {
        match self {
            HttpError::BadRequest(d) | HttpError::Unsupported(d) => d,
            HttpError::TooLarge => "request too large",
        }
    }
}

fn io_err(e: &io::Error) -> HttpError {
    HttpError::BadRequest(format!("i/o error mid-request: {e}"))
}

/// Reads one CRLF- (or bare-LF-) terminated line, enforcing the
/// running head budget. Returns `None` on clean EOF at a line start.
fn read_line(r: &mut dyn BufRead, budget: &mut usize) -> Result<Option<String>, HttpError> {
    let mut line = String::new();
    let n = r.read_line(&mut line).map_err(|e| io_err(&e))?;
    if n == 0 {
        return Ok(None);
    }
    *budget = budget.checked_sub(n).ok_or(HttpError::TooLarge)?;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// Parses one request from the stream.
///
/// Returns `Ok(None)` on clean EOF before a request line — the normal
/// end of a keep-alive connection. EOF anywhere *inside* a request is
/// an error.
///
/// ```
/// use fmossim_serve::http::parse_request;
///
/// let bytes = b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n";
/// let req = parse_request(&mut &bytes[..]).unwrap().unwrap();
/// assert_eq!(req.method, "GET");
/// assert_eq!(req.target, "/healthz");
/// assert!(req.keep_alive);
/// assert!(parse_request(&mut &b""[..]).unwrap().is_none(), "clean EOF");
/// ```
///
/// # Errors
///
/// [`HttpError::BadRequest`] on malformed syntax or mid-request EOF,
/// [`HttpError::TooLarge`] when head or declared body exceed their
/// budgets, [`HttpError::Unsupported`] on chunked request bodies.
pub fn parse_request(r: &mut dyn BufRead) -> Result<Option<Request>, HttpError> {
    let mut budget = MAX_HEAD;
    let Some(line) = read_line(r, &mut budget)? else {
        return Ok(None);
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {line:?}"
            )))
        }
    };
    let keep_alive_default = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(HttpError::BadRequest(format!(
                "unsupported protocol version {other:?}"
            )))
        }
    };

    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(r, &mut budget)? else {
            return Err(HttpError::BadRequest("eof inside request head".into()));
        };
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    if find("transfer-encoding").is_some() {
        return Err(HttpError::Unsupported(
            "chunked request bodies are not supported".into(),
        ));
    }
    let content_length = match find("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("bad content-length {v:?}")))?,
    };
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).map_err(|e| io_err(&e))?;

    let keep_alive = match find("connection").map(str::to_ascii_lowercase) {
        Some(c) if c == "close" => false,
        Some(c) if c == "keep-alive" => true,
        _ => keep_alive_default,
    };
    Ok(Some(Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body,
        keep_alive,
    }))
}

/// A fixed-length response, written with [`write_response`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Status code (see [`status_text`] for the supported set).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
    /// Whether the server intends to keep the connection open. The
    /// connection layer ANDs this with the request's own preference.
    pub keep_alive: bool,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            keep_alive: true,
        }
    }

    /// A plain-text response (Prometheus exposition, error details).
    #[must_use]
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            keep_alive: true,
        }
    }

    /// The error response for a request that failed to parse. Always
    /// closes the connection: after a malformed request the stream
    /// position is unreliable.
    #[must_use]
    pub fn from_error(e: &HttpError) -> Response {
        let mut resp = Response::text(e.status(), format!("{}\n", e.detail()));
        resp.keep_alive = false;
        resp
    }
}

/// The reason phrase for each status code this server emits.
#[must_use]
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Content Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response.
///
/// # Errors
///
/// Propagates the writer's I/O errors.
pub fn write_response(w: &mut dyn Write, resp: &Response) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\ncontent-length: {}\r\ncontent-type: {}\r\nconnection: {}\r\n\r\n",
        resp.status,
        status_text(resp.status),
        resp.body.len(),
        resp.content_type,
        if resp.keep_alive {
            "keep-alive"
        } else {
            "close"
        },
    )?;
    w.write_all(&resp.body)?;
    w.flush()
}

/// Writes the response head for an SSE stream: `200`, chunked transfer
/// coding, `text/event-stream`, connection closing when the stream
/// ends. Follow with [`write_chunk`] per frame and [`finish_chunked`].
///
/// # Errors
///
/// Propagates the writer's I/O errors.
pub fn write_event_stream_head(w: &mut dyn Write) -> io::Result<()> {
    w.write_all(
        b"HTTP/1.1 200 OK\r\n\
          cache-control: no-store\r\n\
          content-type: text/event-stream\r\n\
          transfer-encoding: chunked\r\n\
          connection: close\r\n\r\n",
    )?;
    w.flush()
}

/// Writes one transfer chunk (hex length line, data, CRLF). Empty data
/// is skipped — a zero-length chunk would terminate the stream.
///
/// # Errors
///
/// Propagates the writer's I/O errors.
pub fn write_chunk(w: &mut dyn Write, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Terminates a chunked response (zero-length chunk, final CRLF).
///
/// # Errors
///
/// Propagates the writer's I/O errors.
pub fn finish_chunked(w: &mut dyn Write) -> io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

/// Renders one SSE frame: `event:` line, one `data:` line per line of
/// `data`, blank-line terminator.
///
/// ```
/// use fmossim_serve::http::sse_frame;
///
/// assert_eq!(sse_frame("span", "{\"s\":1}"), "event: span\ndata: {\"s\":1}\n\n");
/// ```
#[must_use]
pub fn sse_frame(event: &str, data: &str) -> String {
    let mut out = format!("event: {event}\n");
    for line in data.split('\n') {
        out.push_str("data: ");
        out.push_str(line);
        out.push('\n');
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        parse_request(&mut &bytes[..])
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /campaigns HTTP/1.1\r\ncontent-length: 4\r\n\r\n{\"\"}")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/campaigns");
        assert_eq!(req.body, b"{\"\"}");
        assert_eq!(req.body_str().unwrap(), "{\"\"}");
        assert!(req.keep_alive);
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let req = parse(b"GET / HTTP/1.1\r\nX-Thing:  a b \r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.header("x-thing"), Some("a b"), "trimmed");
        assert_eq!(req.header("X-THING"), Some("a b"));
        assert_eq!(req.header("missing"), None);
    }

    #[test]
    fn rejects_malformed_request_lines() {
        // Golden set of broken request heads and the status each maps to.
        let cases: [(&[u8], u16); 7] = [
            (b"GET\r\n\r\n", 400),
            (b"GET /\r\n\r\n", 400),
            (b"GET / HTTP/1.1 extra\r\n\r\n", 400),
            (b"GET / HTTP/2.0\r\n\r\n", 400),
            (b" / HTTP/1.1\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\ncontent-length: ten\r\n\r\n", 400),
        ];
        for (bytes, status) in cases {
            let err = parse(bytes).expect_err("must reject");
            assert_eq!(err.status(), status, "{bytes:?}");
        }
    }

    #[test]
    fn rejects_oversized_bodies_with_413() {
        let head = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = parse(head.as_bytes()).expect_err("too large");
        assert_eq!(err, HttpError::TooLarge);
        assert_eq!(err.status(), 413);
        // At the limit the declared length is fine (body EOF is a
        // different, 400-class error).
        let head = format!("POST / HTTP/1.1\r\ncontent-length: {MAX_BODY}\r\n\r\n");
        let err = parse(head.as_bytes()).expect_err("eof in body");
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn rejects_oversized_heads_with_413() {
        let mut head = b"GET / HTTP/1.1\r\n".to_vec();
        head.extend(std::iter::repeat_n(&b"x-pad: aaaaaaaaaaaaaaaa\r\n"[..], 4000).flatten());
        head.extend(b"\r\n");
        assert_eq!(parse(&head).expect_err("too large").status(), 413);
    }

    #[test]
    fn rejects_chunked_request_bodies_with_501() {
        let err = parse(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n")
            .expect_err("unsupported");
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn keep_alive_reuse_parses_back_to_back_requests() {
        let bytes: &[u8] =
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\ncontent-length: 2\r\n\r\nhiGET /c HTTP/1.0\r\nconnection: keep-alive\r\n\r\n";
        let mut r: &[u8] = bytes;
        let a = parse_request(&mut r).unwrap().unwrap();
        assert_eq!((a.target.as_str(), a.keep_alive), ("/a", true));
        let b = parse_request(&mut r).unwrap().unwrap();
        assert_eq!((b.target.as_str(), b.body.as_slice()), ("/b", &b"hi"[..]));
        let c = parse_request(&mut r).unwrap().unwrap();
        assert_eq!(
            (c.target.as_str(), c.keep_alive),
            ("/c", true),
            "1.0 + keep-alive"
        );
        assert!(parse_request(&mut r).unwrap().is_none(), "then clean EOF");
    }

    #[test]
    fn connection_close_overrides_the_default() {
        let req = parse(b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive, "1.0 defaults to close");
    }

    #[test]
    fn golden_response_bytes() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{\"ok\":true}".into())).unwrap();
        assert_eq!(
            out,
            b"HTTP/1.1 200 OK\r\ncontent-length: 11\r\ncontent-type: application/json\r\nconnection: keep-alive\r\n\r\n{\"ok\":true}"
        );

        let mut out = Vec::new();
        let resp = Response::from_error(&HttpError::TooLarge);
        write_response(&mut out, &resp).unwrap();
        assert_eq!(
            out,
            b"HTTP/1.1 413 Content Too Large\r\ncontent-length: 18\r\ncontent-type: text/plain; charset=utf-8\r\nconnection: close\r\n\r\nrequest too large\n"
        );
    }

    #[test]
    fn golden_chunked_and_sse_bytes() {
        let mut out = Vec::new();
        write_event_stream_head(&mut out).unwrap();
        assert_eq!(
            out,
            &b"HTTP/1.1 200 OK\r\ncache-control: no-store\r\ncontent-type: text/event-stream\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n"[..]
        );

        let mut out = Vec::new();
        write_chunk(&mut out, b"hello").unwrap();
        write_chunk(&mut out, b"").unwrap(); // skipped, not a terminator
        write_chunk(&mut out, &[b'a'; 16]).unwrap();
        finish_chunked(&mut out).unwrap();
        assert_eq!(out, b"5\r\nhello\r\n10\r\naaaaaaaaaaaaaaaa\r\n0\r\n\r\n");

        assert_eq!(
            sse_frame("detected", "{\"fault\":3}"),
            "event: detected\ndata: {\"fault\":3}\n\n"
        );
        assert_eq!(
            sse_frame("note", "two\nlines"),
            "event: note\ndata: two\ndata: lines\n\n"
        );
    }
}
