//! The good-tape cache — the server's headline mechanism.
//!
//! The most expensive serial fraction of a fault-parallel campaign is
//! recording the good machine once per run
//! ([`fmossim_core::GoodTape::record`]). A long-running server sees
//! the *same* circuit and stimulus over and over (CI re-runs, A/B
//! sweeps, parameter scans over the fault universe), and the good
//! machine does not depend on the fault universe at all — so the tape
//! is cached across campaigns, keyed by
//! ([`Network::content_hash`](fmossim_netlist::Network::content_hash),
//! [`stimulus_content_hash`](fmossim_core::stimulus_content_hash)).
//! A repeat submission replays the cached tape and skips the record
//! pass entirely: its report carries `tape_record_seconds == 0`.
//!
//! The cache holds whole tapes in memory, so it is bounded by a byte
//! budget over [`GoodTape::heap_bytes`] with least-recently-*used*
//! eviction (a `get` refreshes recency). A single tape larger than
//! the whole budget is simply not cached.

use fmossim_core::GoodTape;
use fmossim_telemetry::{Counter, Gauge, Registry};
use std::sync::{Arc, Mutex};

/// A cache key: `(netlist content hash, stimulus content hash)`.
///
/// The engine configuration is deliberately *not* part of the key: the
/// server simulates every campaign under one fixed configuration (see
/// [`ServedBackend`](crate::ServedBackend)), so two submissions with
/// equal hashes always produce byte-identical tapes.
pub type TapeKey = (u64, u64);

struct Entry {
    key: TapeKey,
    tape: Arc<GoodTape>,
    bytes: usize,
}

struct CacheInner {
    /// LRU order: least recently used at the front, most recent at
    /// the back.
    entries: Vec<Entry>,
    bytes: usize,
}

/// The byte-budgeted LRU tape cache (see the module docs).
///
/// ```
/// use fmossim_circuits::Ram;
/// use fmossim_core::{stimulus_content_hash, ConcurrentConfig, GoodTape};
/// use fmossim_serve::TapeCache;
/// use fmossim_telemetry::Registry;
/// use fmossim_testgen::TestSequence;
/// use std::sync::Arc;
///
/// let ram = Ram::new(2, 2);
/// let seq = TestSequence::full(&ram);
/// let key = (ram.network().content_hash(), stimulus_content_hash(seq.patterns()));
/// let tape = Arc::new(GoodTape::record(
///     ram.network(),
///     seq.patterns(),
///     ConcurrentConfig::paper().engine,
/// ));
///
/// let registry = Registry::new();
/// let cache = TapeCache::new(64 << 20, &registry);
/// assert!(cache.get(key).is_none(), "cold");
/// cache.insert(key, Arc::clone(&tape));
/// assert!(cache.get(key).is_some(), "warm");
/// assert_eq!(registry.counter("serve.cache.misses").get(), 1);
/// assert_eq!(registry.counter("serve.cache.hits").get(), 1);
/// ```
pub struct TapeCache {
    inner: Mutex<CacheInner>,
    budget: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    bytes_gauge: Gauge,
}

impl TapeCache {
    /// A cache bounded to `budget` bytes of tape heap, publishing
    /// `serve.cache.{hits,misses,evictions}` counters and the
    /// `serve.cache.bytes` gauge into `registry`.
    #[must_use]
    pub fn new(budget: usize, registry: &Registry) -> TapeCache {
        TapeCache {
            inner: Mutex::new(CacheInner {
                entries: Vec::new(),
                bytes: 0,
            }),
            budget,
            hits: registry.counter("serve.cache.hits"),
            misses: registry.counter("serve.cache.misses"),
            evictions: registry.counter("serve.cache.evictions"),
            bytes_gauge: registry.gauge("serve.cache.bytes"),
        }
    }

    /// Looks up a tape, refreshing its recency and counting a hit or
    /// a miss.
    #[must_use]
    pub fn get(&self, key: TapeKey) -> Option<Arc<GoodTape>> {
        let mut inner = self.inner.lock().expect("tape cache poisoned");
        match inner.entries.iter().position(|e| e.key == key) {
            Some(i) => {
                let entry = inner.entries.remove(i);
                let tape = Arc::clone(&entry.tape);
                inner.entries.push(entry);
                self.hits.inc();
                Some(tape)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Inserts (or refreshes) a tape, then evicts least-recently-used
    /// entries until the budget holds. A tape alone exceeding the
    /// budget is not cached.
    pub fn insert(&self, key: TapeKey, tape: Arc<GoodTape>) {
        let bytes = tape.heap_bytes();
        let mut inner = self.inner.lock().expect("tape cache poisoned");
        if let Some(i) = inner.entries.iter().position(|e| e.key == key) {
            let old = inner.entries.remove(i);
            inner.bytes -= old.bytes;
        }
        if bytes <= self.budget {
            inner.entries.push(Entry { key, tape, bytes });
            inner.bytes += bytes;
            while inner.bytes > self.budget {
                let evicted = inner.entries.remove(0);
                inner.bytes -= evicted.bytes;
                self.evictions.inc();
            }
        }
        self.bytes_gauge.set(inner.bytes as f64);
    }

    /// Cached tape count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("tape cache poisoned")
            .entries
            .len()
    }

    /// True iff nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total cached tape heap bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.inner.lock().expect("tape cache poisoned").bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_circuits::Ram;
    use fmossim_core::ConcurrentConfig;
    use fmossim_testgen::TestSequence;

    /// Distinct tapes of identical shape, distinguished by the key.
    fn tape() -> Arc<GoodTape> {
        let ram = Ram::new(2, 2);
        let seq = TestSequence::full(&ram);
        Arc::new(GoodTape::record(
            ram.network(),
            seq.patterns(),
            ConcurrentConfig::paper().engine,
        ))
    }

    #[test]
    fn evicts_least_recently_used_by_bytes() {
        let t = tape();
        let size = t.heap_bytes();
        assert!(size > 0);
        let registry = Registry::new();
        // Room for exactly two tapes.
        let cache = TapeCache::new(2 * size, &registry);
        cache.insert((1, 1), Arc::clone(&t));
        cache.insert((2, 2), Arc::clone(&t));
        assert_eq!((cache.len(), cache.bytes()), (2, 2 * size));

        // Touch (1,1) so (2,2) becomes the LRU victim.
        assert!(cache.get((1, 1)).is_some());
        cache.insert((3, 3), Arc::clone(&t));
        assert_eq!(cache.len(), 2);
        assert!(cache.get((1, 1)).is_some(), "recently used survives");
        assert!(cache.get((3, 3)).is_some(), "newcomer survives");
        assert!(cache.get((2, 2)).is_none(), "LRU evicted");
        assert_eq!(registry.counter("serve.cache.evictions").get(), 1);
        assert_eq!(registry.gauge("serve.cache.bytes").get(), (2 * size) as f64);
    }

    #[test]
    fn refreshing_a_key_does_not_double_count() {
        let t = tape();
        let cache = TapeCache::new(10 * t.heap_bytes(), &Registry::null());
        cache.insert((1, 1), Arc::clone(&t));
        cache.insert((1, 1), Arc::clone(&t));
        assert_eq!((cache.len(), cache.bytes()), (1, t.heap_bytes()));
    }

    #[test]
    fn oversized_tapes_are_not_cached() {
        let t = tape();
        let cache = TapeCache::new(t.heap_bytes() - 1, &Registry::null());
        cache.insert((1, 1), t);
        assert!(cache.is_empty());
        assert!(cache.get((1, 1)).is_none());
    }
}
