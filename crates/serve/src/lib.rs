//! `fmossim-serve` — a long-running campaign server.
//!
//! This crate turns the offline [`fmossim_campaign::Campaign`] runner
//! into a service: clients `POST` a netlist + stimulus + fault
//! universe as JSON and get back a job id; campaigns run as shard
//! tasks on **one shared, fairly-scheduled worker pool** so total
//! simulation CPU stays bounded however many campaigns are in flight;
//! progress streams out live over Server-Sent Events; and the
//! finished v3 [`CampaignReport`](fmossim_campaign::CampaignReport)
//! is fetched from the status endpoint.
//!
//! The headline mechanism is the **good-tape cache**
//! ([`TapeCache`]): the good machine depends only on the circuit and
//! the stimulus, so recorded tapes are cached across campaigns keyed
//! by content hashes. A repeat submission replays the cached tape and
//! skips the record pass entirely (`tape_record_seconds == 0` in its
//! report).
//!
//! Everything is dependency-free `std`: a hand-rolled HTTP/1.1 layer
//! over [`std::net`] ([`http`]), a round-robin job-fair thread pool
//! ([`pool`]), and a tiny blocking client ([`client`]) for the CLI
//! and the end-to-end tests.
//!
//! See `docs/SERVER.md` for the endpoint reference, JSON schemas, and
//! SSE grammar, and [`server`] for the threading model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod client;
pub mod http;
pub mod job;
pub mod pool;
pub mod proto;
pub mod server;

pub use backend::{served_config, ServedBackend};
pub use cache::{TapeCache, TapeKey};
pub use client::{parse_sse, request, sse_events, HttpResponse};
pub use job::{format_job_id, parse_job_id, Job, JobStatus, JobTable};
pub use pool::SharedPool;
pub use proto::{parse_submission, JobSpec, DEFAULT_SHARDS, MAX_SHARDS};
pub use server::{Server, ServerConfig};
