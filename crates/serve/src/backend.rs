//! [`ServedBackend`] — the campaign backend the server runs jobs on.
//!
//! [`fmossim_par::ParallelSim`] spawns *scoped* threads borrowing the
//! caller's network, so every campaign would bring its own pool — and
//! four concurrent submissions on a four-core box would fight over
//! sixteen threads. The served backend instead decomposes a campaign
//! into owned per-shard tasks (each cloning an [`Arc<JobSpec>`]) and
//! submits them to the server's one [`SharedPool`]; the pool's
//! round-robin queues interleave all in-flight campaigns over a fixed
//! worker count.
//!
//! Execution semantics match the parallel backend: the good machine is
//! recorded once (or a cached tape is injected and the record pass is
//! skipped — then `tape_record_seconds == 0`), every shard replays the
//! tape over its fault subset, per-shard reports are relabelled to
//! parent-universe ids and merged, and the merged detection set is
//! bit-identical to an offline single-machine run of the same
//! workload.
//!
//! The server fixes the simulation configuration for every job —
//! [`ConcurrentConfig::paper`] with
//! [`DetectionPolicy::DefiniteOnly`] — so reports are comparable
//! across jobs and the tape cache key (which does not include the
//! configuration) stays sound.

use crate::pool::SharedPool;
use crate::proto::JobSpec;
use fmossim_campaign::{BackendRun, CampaignBackend, RunControl, SimEvent, TapeSlot, Workload};
use fmossim_core::{ConcurrentConfig, ConcurrentSim, DetectionPolicy, GoodTape, RunReport};
use fmossim_faults::FaultId;
use fmossim_par::{ShardPlan, ShardStrategy};
use fmossim_telemetry::Registry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// The one simulation configuration every served campaign runs under.
///
/// [`DetectionPolicy::DefiniteOnly`] keeps detection sets identical
/// across execution strategies (potential detections are the one
/// place serial and concurrent execution can disagree), which is what
/// makes server results comparable to offline runs — and to each
/// other across shard-count choices.
#[must_use]
pub fn served_config() -> ConcurrentConfig {
    ConcurrentConfig {
        policy: DetectionPolicy::DefiniteOnly,
        ..ConcurrentConfig::paper()
    }
}

/// The pool-backed campaign backend (see the module docs).
pub struct ServedBackend {
    spec: Arc<JobSpec>,
    pool: Arc<SharedPool>,
    job: u64,
    /// The job's own token (set by `DELETE /campaigns/{id}`).
    job_cancel: Arc<AtomicBool>,
    /// The hosting campaign's token
    /// ([`Campaign::cancel_token`](fmossim_campaign::Campaign::cancel_token)),
    /// handed over in [`CampaignBackend::attach_cancel`]. Either token
    /// cancels.
    campaign_cancel: Arc<AtomicBool>,
    inject: Option<Arc<GoodTape>>,
    export: Option<TapeSlot>,
    telemetry: Registry,
}

impl ServedBackend {
    /// A backend running `spec` as pool job `job`, cancellable via
    /// `cancel` (the job-table token) in addition to the campaign's
    /// own token.
    #[must_use]
    pub fn new(
        spec: Arc<JobSpec>,
        pool: Arc<SharedPool>,
        job: u64,
        cancel: Arc<AtomicBool>,
    ) -> ServedBackend {
        ServedBackend {
            spec,
            pool,
            job,
            job_cancel: cancel,
            campaign_cancel: Arc::new(AtomicBool::new(false)),
            inject: None,
            export: None,
            telemetry: Registry::null(),
        }
    }

    fn is_cancelled(&self) -> bool {
        self.job_cancel.load(Ordering::Relaxed) || self.campaign_cancel.load(Ordering::Relaxed)
    }
}

impl CampaignBackend for ServedBackend {
    fn name(&self) -> String {
        "served".into()
    }

    fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = registry.clone();
    }

    fn attach_cancel(&mut self, token: &Arc<AtomicBool>) {
        self.campaign_cancel = Arc::clone(token);
    }

    fn inject_good_tape(&mut self, tape: Arc<GoodTape>) {
        self.inject = Some(tape);
    }

    fn export_good_tape(&mut self, slot: &TapeSlot) {
        self.export = Some(Arc::clone(slot));
    }

    fn run(
        &mut self,
        w: &Workload<'_>,
        control: &RunControl,
        emit: &mut dyn FnMut(SimEvent),
    ) -> BackendRun {
        // The workload the campaign hands us borrows from the same
        // `JobSpec` the coordinator built the campaign from — except
        // the universe, which the campaign may have collapsed to class
        // representatives. The tasks below need owned (`'static`)
        // captures, so they clone the spec's Arc and one owned copy of
        // the workload universe. Coverage targets stop the run at
        // shard granularity, like the offline parallel backend;
        // pattern limits are applied by the campaign driver before the
        // backend runs.
        let spec = &self.spec;
        let universe = Arc::new(w.universe.clone());
        let target = control.detection_target(w.coverage_denominator());
        // Set once the coverage target is reached: still-queued shards
        // see it at pick-up and are skipped, like cancellation — but
        // the run counts as stopped-early, not cancelled.
        let coverage_stop = Arc::new(AtomicBool::new(false));
        let config = ConcurrentConfig {
            drop_on_detect: control.drop_detected,
            // Collapsed campaigns gate, like the offline backends.
            gating: control.collapse,
            ..served_config()
        };

        // Tape: replay the injected (cached) tape when its shape
        // matches, otherwise pay the record pass once here on the
        // coordinator thread. `tape_record_seconds == 0` is the
        // cache-hit signature in the report.
        let injected = self
            .inject
            .take()
            .filter(|t| t.matches(spec.net.num_nodes(), &spec.patterns));
        let was_injected = injected.is_some();
        let t0 = Instant::now();
        let tape = injected.unwrap_or_else(|| {
            Arc::new(GoodTape::record(&spec.net, &spec.patterns, config.engine))
        });
        let record_seconds = if was_injected {
            0.0
        } else {
            t0.elapsed().as_secs_f64()
        };
        if let Some(slot) = &self.export {
            *slot.lock().expect("tape slot poisoned") = Some(Arc::clone(&tape));
        }

        let plan = ShardPlan::build(
            &spec.net,
            &universe,
            spec.shards.max(1),
            ShardStrategy::RoundRobin,
        );
        let n_shards = plan.num_shards();

        let run_t0 = Instant::now();
        let (tx, rx) = mpsc::channel();
        for s in 0..n_shards {
            let ids: Vec<FaultId> = plan.shard(s).to_vec();
            let spec = Arc::clone(&self.spec);
            let universe = Arc::clone(&universe);
            let tape = Arc::clone(&tape);
            let cancels = (
                Arc::clone(&self.job_cancel),
                Arc::clone(&self.campaign_cancel),
            );
            let stop = Arc::clone(&coverage_stop);
            let fork = self.telemetry.fork();
            let tx = tx.clone();
            self.pool.submit(self.job, move || {
                // A cancelled (or coverage-stopped) job's still-queued
                // shards are skipped at pick-up — cooperative
                // cancellation reaches through the pool queue, not
                // just between completions.
                let outcome = if cancels.0.load(Ordering::Relaxed)
                    || cancels.1.load(Ordering::Relaxed)
                    || stop.load(Ordering::Relaxed)
                {
                    None
                } else {
                    let shard_universe = universe.subset(&ids);
                    let mut sim = ConcurrentSim::new(&spec.net, shard_universe.faults(), config);
                    sim.attach_metrics(&fork);
                    let mut report = sim.run_replayed_from(&spec.patterns, &spec.outputs, &tape, 0);
                    report.relabel_faults(|local| ids[local.index()]);
                    fork.counter("par.shards").inc();
                    fork.gauge("par.shard.seconds").add(report.total_seconds);
                    Some(report)
                };
                // The coordinator only hangs up after collecting all
                // n_shards messages, so this send cannot fail; being
                // defensive costs nothing.
                let _ = tx.send((s, ids.len(), outcome, fork));
            });
        }
        drop(tx);

        let mut reports = Vec::with_capacity(n_shards);
        let mut max_shard_seconds = 0.0f64;
        let mut skipped = 0usize;
        let mut detected_weight = 0usize;
        let mut stopped_early = false;
        for (s, faults, outcome, fork) in rx {
            self.telemetry.merge(&fork);
            match outcome {
                Some(report) => {
                    for d in &report.detections {
                        emit(SimEvent::Detected {
                            fault: d.fault,
                            pattern: d.pattern,
                            phase: d.phase,
                            potential: d.is_potential(),
                        });
                        if control.drop_detected {
                            emit(SimEvent::FaultDropped { fault: d.fault });
                        }
                    }
                    emit(SimEvent::ShardDone {
                        shard: s,
                        faults,
                        detected: report.detections.len(),
                        seconds: report.total_seconds,
                    });
                    max_shard_seconds = max_shard_seconds.max(report.total_seconds);
                    detected_weight += report
                        .detections
                        .iter()
                        .map(|d| w.detection_weight(d.fault.index()))
                        .sum::<usize>();
                    if !stopped_early && target.is_some_and(|t| detected_weight >= t) {
                        stopped_early = true;
                        coverage_stop.store(true, Ordering::Relaxed);
                    }
                    reports.push(report);
                }
                None => skipped += 1,
            }
        }

        // Skipped shards mean a token fired mid-run: the coverage stop
        // (stopped-early) or a real cancel. Only the latter marks the
        // run cancelled.
        let cancelled = self.is_cancelled() || (skipped > 0 && !stopped_early);
        let mut run = RunReport::merge(reports);
        run.num_faults = universe.len();
        run.detections
            .sort_by_key(|d| (d.pattern, d.phase, d.fault.index()));
        run.total_seconds = run_t0.elapsed().as_secs_f64();

        BackendRun {
            run,
            stopped_early,
            cancelled,
            jobs: Some(self.pool.workers()),
            shards: Some(n_shards),
            max_shard_seconds: Some(max_shard_seconds),
            tape_record_seconds: Some(record_seconds),
            tape_groups: Some(tape.num_groups()),
            ..BackendRun::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_campaign::{Backend, Campaign, ParallelConfig, StopReason};
    use fmossim_circuits::Ram;
    use fmossim_core::stimulus_content_hash;
    use fmossim_faults::FaultUniverse;
    use fmossim_testgen::TestSequence;

    fn spec(shards: usize) -> JobSpec {
        let ram = Ram::new(4, 4);
        let seq = TestSequence::full(&ram);
        JobSpec {
            name: "ram4x4".into(),
            net: ram.network().clone(),
            universe: FaultUniverse::stuck_nodes(ram.network()),
            patterns: seq.patterns().to_vec(),
            outputs: ram.observed_outputs().to_vec(),
            shards,
            collapse: false,
            stop_at_coverage: None,
        }
    }

    fn run_served(
        spec: &Arc<JobSpec>,
        pool: &Arc<SharedPool>,
        tape: Option<Arc<GoodTape>>,
        slot: Option<&TapeSlot>,
    ) -> fmossim_campaign::CampaignReport {
        let cancel = Arc::new(AtomicBool::new(false));
        let backend = ServedBackend::new(
            Arc::clone(spec),
            Arc::clone(pool),
            spec.cache_key().0,
            cancel,
        );
        let mut campaign = Campaign::new(&spec.net)
            .faults(spec.universe.clone())
            .patterns(&spec.patterns)
            .outputs(&spec.outputs)
            .backend_impl(Box::new(backend));
        if let Some(tape) = tape {
            campaign = campaign.with_good_tape(tape);
        }
        if let Some(slot) = slot {
            campaign = campaign.export_good_tape(slot);
        }
        campaign.run()
    }

    #[test]
    fn matches_the_offline_parallel_backend_bit_for_bit() {
        let spec = Arc::new(spec(5));
        let pool = Arc::new(SharedPool::new(2, &Registry::null()));
        let slot: TapeSlot = TapeSlot::default();
        let served = run_served(&spec, &pool, None, Some(&slot));
        assert_eq!(served.backend, "served");
        assert_eq!(served.shards, Some(5));
        assert_eq!(served.jobs, Some(2));
        assert!(served.tape_record_seconds.unwrap() > 0.0, "cold: recorded");
        assert_eq!(served.stop, StopReason::Completed);

        // Offline reference under the same (DefiniteOnly) policy.
        let mut config = ParallelConfig::paper(2);
        config.sim = served_config();
        let offline = Campaign::new(&spec.net)
            .faults(spec.universe.clone())
            .patterns(&spec.patterns)
            .outputs(&spec.outputs)
            .backend(Backend::Parallel(config))
            .run();
        assert!(offline.detected() > 0);
        assert_eq!(served.run.detections, offline.run.detections);

        // The exported tape is the job's real tape, cacheable by key.
        let tape = slot.lock().unwrap().clone().expect("tape deposited");
        assert_eq!(tape.num_patterns(), spec.patterns.len());
        let _ = stimulus_content_hash(&spec.patterns);

        // Warm run: inject the tape back — no record pass, same set.
        let warm = run_served(&spec, &pool, Some(tape), None);
        assert_eq!(warm.tape_record_seconds, Some(0.0), "cache-hit signature");
        assert_eq!(warm.run.detections, offline.run.detections);
    }

    #[test]
    fn collapsed_jobs_match_uncollapsed_ones() {
        let spec = Arc::new(spec(4));
        let pool = Arc::new(SharedPool::new(2, &Registry::null()));
        let plain = run_served(&spec, &pool, None, None);
        let cancel = Arc::new(AtomicBool::new(false));
        let backend = ServedBackend::new(Arc::clone(&spec), Arc::clone(&pool), 9, cancel);
        let collapsed = Campaign::new(&spec.net)
            .faults(spec.universe.clone())
            .patterns(&spec.patterns)
            .outputs(&spec.outputs)
            .backend_impl(Box::new(backend))
            .collapse(true)
            .run();
        assert_eq!(collapsed.run.detections, plain.run.detections);
        assert_eq!(collapsed.run.num_faults, spec.universe.len());
        let stats = collapsed.collapse.expect("collapse ran");
        assert_eq!(stats.total_faults, spec.universe.len());
        assert!(stats.simulated_faults <= stats.total_faults);
    }

    /// Coverage targets stop served runs early — including collapsed
    /// ones, where the target is evaluated over the parent universe —
    /// and a coverage stop is not a cancellation, even though it skips
    /// still-queued shards through the same pool mechanism.
    #[test]
    fn coverage_target_stops_served_runs_without_cancelling() {
        let spec = Arc::new(spec(8));
        // One worker: shards complete strictly one at a time, so a low
        // target reliably leaves later shards queued when it trips.
        let pool = Arc::new(SharedPool::new(1, &Registry::null()));
        for collapse in [false, true] {
            let cancel = Arc::new(AtomicBool::new(false));
            let backend = ServedBackend::new(Arc::clone(&spec), Arc::clone(&pool), 21, cancel);
            let report = Campaign::new(&spec.net)
                .faults(spec.universe.clone())
                .patterns(&spec.patterns)
                .outputs(&spec.outputs)
                .backend_impl(Box::new(backend))
                .collapse(collapse)
                .stop_at_coverage(0.25)
                .run();
            assert_eq!(
                report.stop,
                StopReason::CoverageReached,
                "collapse={collapse}"
            );
            assert!(!report.cancelled, "collapse={collapse}: stop is not cancel");
            assert!(
                report.coverage() >= 0.25,
                "collapse={collapse}: parent-universe coverage {} missed the target",
                report.coverage()
            );
        }
    }

    #[test]
    fn wrong_shape_injected_tape_is_ignored() {
        let spec = Arc::new(spec(3));
        let pool = Arc::new(SharedPool::new(2, &Registry::null()));
        let cold = run_served(&spec, &pool, None, None);
        let stale = Arc::new(GoodTape::default());
        let guarded = run_served(&spec, &pool, Some(stale), None);
        assert!(
            guarded.tape_record_seconds.unwrap() > 0.0,
            "fell back to recording"
        );
        assert_eq!(guarded.run.detections, cold.run.detections);
    }

    #[test]
    fn job_token_cancels_through_the_pool_queue() {
        let spec = Arc::new(spec(8));
        // One worker: shards run strictly one at a time.
        let pool = Arc::new(SharedPool::new(1, &Registry::null()));
        let cancel = Arc::new(AtomicBool::new(false));
        let backend =
            ServedBackend::new(Arc::clone(&spec), Arc::clone(&pool), 1, Arc::clone(&cancel));
        let report = Campaign::new(&spec.net)
            .faults(spec.universe.clone())
            .patterns(&spec.patterns)
            .outputs(&spec.outputs)
            .backend_impl(Box::new(backend))
            .on_event(move |e| {
                if matches!(e, SimEvent::ShardDone { .. }) {
                    // First completed shard: cancel via the *job*
                    // token, as DELETE /campaigns/{id} would.
                    cancel.store(true, Ordering::Relaxed);
                }
            })
            .run();
        assert!(report.cancelled);
        assert_eq!(report.stop, StopReason::Cancelled);
        assert!(
            report.detected() < spec.universe.len(),
            "later shards were skipped"
        );
    }
}
