//! The server's wire formats: campaign submissions in, status
//! documents and SSE event payloads out — all built on the workspace's
//! dependency-free [`fmossim_campaign::json`] reader/writer.
//!
//! # Submission schema (`POST /campaigns`)
//!
//! A JSON object naming the workload either by zoo registry name:
//!
//! ```json
//! {"circuit": "ram4x4", "universe": "stuck-nodes", "shards": 4}
//! ```
//!
//! or inline, as `.snl` netlist text plus an explicit stimulus:
//!
//! ```json
//! {
//!   "netlist": "input A 0\nnode OUT\n...",
//!   "outputs": ["OUT"],
//!   "patterns": [
//!     {"label": "w1", "phases": [
//!       {"inputs": [["A", "1"]], "strobe": true}
//!     ]}
//!   ]
//! }
//! ```
//!
//! `universe` (default `"stuck-nodes"`) takes the CLI spellings of
//! [`fmossim_campaign::universe_from_spec`]; `shards` (bounded by
//! [`MAX_SHARDS`]) overrides the server's default shard count; `name`
//! labels the job in listings; `collapse` (boolean, default `false`)
//! asks the job to run with static fault collapsing + activity gating
//! ([`Campaign::collapse`](fmossim_campaign::Campaign::collapse)) —
//! the report is bit-identical either way, and echoes the choice in
//! its `control` block; `stop_at_coverage` (number in `[0, 1]`,
//! default absent) stops the run once coverage reaches the target
//! ([`Campaign::stop_at_coverage`](fmossim_campaign::Campaign::stop_at_coverage)),
//! evaluated over the full fault universe even under `collapse`.
//! Phase inputs are `[node name, logic char]` pairs in application
//! order, with logic spelled `"0"`, `"1"`, or `"X"`
//! ([`fmossim_netlist::Logic`]).

use crate::cache::TapeKey;
use fmossim_campaign::json::{obj, parse, Value};
use fmossim_campaign::{universe_from_spec, SimEvent};
use fmossim_core::{stimulus_content_hash, Pattern, Phase};
use fmossim_faults::FaultUniverse;
use fmossim_netlist::{parse_netlist, Logic, Network, NodeId};
use fmossim_testgen::zoo::build_zoo;

/// Default shard count when a submission does not set `shards`.
/// Modest oversharding keeps the shared pool load-balanced without
/// paying per-shard setup for tiny jobs.
pub const DEFAULT_SHARDS: usize = 4;

/// Upper bound on a submission's `shards` — per-shard setup cost makes
/// anything beyond this a denial-of-service lever, not a speedup.
pub const MAX_SHARDS: usize = 64;

/// A fully-resolved campaign job: everything the server needs to run
/// it, owned (`'static`) so it can cross threads.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Display name (the zoo circuit name, or the submission's
    /// `name`, or `"custom"`).
    pub name: String,
    /// The circuit under test.
    pub net: Network,
    /// The fault universe to grade.
    pub universe: FaultUniverse,
    /// The stimulus.
    pub patterns: Vec<Pattern>,
    /// Observed output nodes.
    pub outputs: Vec<NodeId>,
    /// Shard count for the pool plan.
    pub shards: usize,
    /// Whether the job runs with static fault collapsing + activity
    /// gating ([`Campaign::collapse`](fmossim_campaign::Campaign::collapse)).
    pub collapse: bool,
    /// Stop once coverage over the full fault universe reaches this
    /// fraction
    /// ([`Campaign::stop_at_coverage`](fmossim_campaign::Campaign::stop_at_coverage)).
    pub stop_at_coverage: Option<f64>,
}

impl JobSpec {
    /// The job's good-tape cache key (see
    /// [`TapeCache`](crate::TapeCache)).
    #[must_use]
    pub fn cache_key(&self) -> TapeKey {
        (
            self.net.content_hash(),
            stimulus_content_hash(&self.patterns),
        )
    }
}

/// Parses a `POST /campaigns` body into a runnable [`JobSpec`].
///
/// ```
/// use fmossim_serve::proto::parse_submission;
///
/// let spec = parse_submission(r#"{"circuit": "ram4x4", "shards": 2}"#, 4).unwrap();
/// assert_eq!(spec.name, "ram4x4");
/// assert_eq!(spec.shards, 2);
/// assert!(spec.universe.len() > 0);
/// assert!(parse_submission("{}", 4).is_err(), "no workload named");
/// ```
///
/// # Errors
///
/// Returns a message on malformed JSON, unknown zoo circuits, netlist
/// parse errors, unresolvable node names, or bad field types.
pub fn parse_submission(body: &str, default_shards: usize) -> Result<JobSpec, String> {
    let v = parse(body).map_err(|e| format!("malformed JSON: {e}"))?;
    if !matches!(v, Value::Obj(_)) {
        return Err("submission must be a JSON object".into());
    }

    let (name, net, outputs, patterns) = match (v.get("circuit"), v.get("netlist")) {
        (Some(circuit), None) => {
            let circuit = circuit
                .as_str()
                .ok_or_else(|| "\"circuit\" must be a string".to_string())?;
            let zoo = build_zoo(circuit)?;
            (zoo.name.to_string(), zoo.net, zoo.outputs, zoo.patterns)
        }
        (None, Some(netlist)) => {
            let text = netlist
                .as_str()
                .ok_or_else(|| "\"netlist\" must be a string of .snl text".to_string())?;
            let net = parse_netlist(text).map_err(|e| format!("bad netlist: {e}"))?;
            let outputs = v
                .get("outputs")
                .and_then(Value::as_arr)
                .ok_or_else(|| "inline netlists need an \"outputs\" array".to_string())?
                .iter()
                .map(|o| {
                    let name = o
                        .as_str()
                        .ok_or_else(|| "output names must be strings".to_string())?;
                    net.find_node(name)
                        .ok_or_else(|| format!("unknown output node {name:?}"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let patterns = patterns_from_json(
                &net,
                v.get("patterns")
                    .ok_or_else(|| "inline netlists need a \"patterns\" array".to_string())?,
            )?;
            let name = match v.get("name") {
                None | Some(Value::Null) => "custom".to_string(),
                Some(n) => n
                    .as_str()
                    .ok_or_else(|| "\"name\" must be a string".to_string())?
                    .to_string(),
            };
            (name, net, outputs, patterns)
        }
        (Some(_), Some(_)) => return Err("give either \"circuit\" or \"netlist\", not both".into()),
        (None, None) => {
            return Err("submission names no workload: give \"circuit\" or \"netlist\"".into())
        }
    };

    let universe_spec = match v.get("universe") {
        None | Some(Value::Null) => "stuck-nodes",
        Some(u) => u
            .as_str()
            .ok_or_else(|| "\"universe\" must be a string".to_string())?,
    };
    let universe = universe_from_spec(&net, universe_spec)?;

    let shards = match v.get("shards") {
        None | Some(Value::Null) => default_shards,
        Some(s) => s
            .as_usize()
            .filter(|&s| (1..=MAX_SHARDS).contains(&s))
            .ok_or_else(|| format!("\"shards\" must be an integer in 1..={MAX_SHARDS}"))?,
    };

    let collapse = match v.get("collapse") {
        None | Some(Value::Null) => false,
        Some(c) => c
            .as_bool()
            .ok_or_else(|| "\"collapse\" must be a boolean".to_string())?,
    };

    let stop_at_coverage = match v.get("stop_at_coverage") {
        None | Some(Value::Null) => None,
        Some(c) => Some(
            c.as_f64()
                .filter(|t| (0.0..=1.0).contains(t))
                .ok_or_else(|| "\"stop_at_coverage\" must be a number in [0, 1]".to_string())?,
        ),
    };

    Ok(JobSpec {
        name,
        net,
        universe,
        patterns,
        outputs,
        shards,
        collapse,
        stop_at_coverage,
    })
}

/// Decodes the wire form of a pattern list (see the module docs)
/// against `net`'s node names.
///
/// # Errors
///
/// Returns a message on shape errors, unknown node names, or logic
/// values outside `0`/`1`/`X`.
pub fn patterns_from_json(net: &Network, v: &Value) -> Result<Vec<Pattern>, String> {
    let arr = v
        .as_arr()
        .ok_or_else(|| "\"patterns\" must be an array".to_string())?;
    arr.iter()
        .enumerate()
        .map(|(pi, p)| {
            let label = match p.get("label") {
                None | Some(Value::Null) => String::new(),
                Some(l) => l
                    .as_str()
                    .ok_or_else(|| format!("pattern {pi}: label must be a string"))?
                    .to_string(),
            };
            let phases = p
                .get("phases")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("pattern {pi}: needs a \"phases\" array"))?
                .iter()
                .map(|ph| phase_from_json(net, ph, pi))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Pattern { phases, label })
        })
        .collect()
}

fn phase_from_json(net: &Network, ph: &Value, pi: usize) -> Result<Phase, String> {
    let inputs = ph
        .get("inputs")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("pattern {pi}: each phase needs an \"inputs\" array"))?
        .iter()
        .map(|pair| {
            let Some([name, logic]) = pair.as_arr() else {
                return Err(format!("pattern {pi}: inputs are [name, logic] pairs"));
            };
            let name = name
                .as_str()
                .ok_or_else(|| format!("pattern {pi}: input node names must be strings"))?;
            let id = net
                .find_node(name)
                .ok_or_else(|| format!("pattern {pi}: unknown input node {name:?}"))?;
            let logic = logic
                .as_str()
                .and_then(|s| {
                    let mut chars = s.chars();
                    match (chars.next(), chars.next()) {
                        (Some(c), None) => Logic::from_char(c),
                        _ => None,
                    }
                })
                .ok_or_else(|| format!("pattern {pi}: logic values are \"0\", \"1\", or \"X\""))?;
            Ok((id, logic))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let strobe = match ph.get("strobe") {
        None | Some(Value::Null) => false,
        Some(s) => s
            .as_bool()
            .ok_or_else(|| format!("pattern {pi}: strobe must be a boolean"))?,
    };
    Ok(Phase { inputs, strobe })
}

/// Encodes patterns into the wire form [`patterns_from_json`] reads —
/// the client half of the inline-submission path.
#[must_use]
pub fn patterns_to_json(net: &Network, patterns: &[Pattern]) -> Value {
    Value::Arr(
        patterns
            .iter()
            .map(|p| {
                obj([
                    ("label", Value::Str(p.label.clone())),
                    (
                        "phases",
                        Value::Arr(
                            p.phases
                                .iter()
                                .map(|ph| {
                                    obj([
                                        (
                                            "inputs",
                                            Value::Arr(
                                                ph.inputs
                                                    .iter()
                                                    .map(|&(id, logic)| {
                                                        Value::Arr(vec![
                                                            Value::Str(net.node(id).name.clone()),
                                                            Value::Str(logic.to_char().to_string()),
                                                        ])
                                                    })
                                                    .collect(),
                                            ),
                                        ),
                                        ("strobe", Value::Bool(ph.strobe)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// Renders a [`SimEvent`] as its SSE `(event name, JSON data)` pair.
///
/// Event names are the snake-case variant names (`pattern_start`,
/// `pattern_done`, `detected`, `fault_dropped`, `shard_done`,
/// `batch_done`, `span`); payload keys mirror the variant fields.
///
/// ```
/// use fmossim_campaign::SimEvent;
/// use fmossim_serve::proto::sse_event;
///
/// let (name, data) = sse_event(&SimEvent::Span { name: "campaign.run", seconds: 0.5 });
/// assert_eq!(name, "span");
/// assert_eq!(data, r#"{"name":"campaign.run","seconds":0.5}"#);
/// ```
#[must_use]
pub fn sse_event(e: &SimEvent) -> (&'static str, String) {
    let num = |n: usize| Value::Num(n as f64);
    let (name, data) = match *e {
        SimEvent::PatternStart { pattern, live } => (
            "pattern_start",
            obj([("live", num(live)), ("pattern", num(pattern))]),
        ),
        SimEvent::PatternDone {
            pattern,
            detected_so_far,
            seconds,
        } => (
            "pattern_done",
            obj([
                ("detected_so_far", num(detected_so_far)),
                ("pattern", num(pattern)),
                ("seconds", Value::Num(seconds)),
            ]),
        ),
        SimEvent::Detected {
            fault,
            pattern,
            phase,
            potential,
        } => (
            "detected",
            obj([
                ("fault", num(fault.index())),
                ("pattern", num(pattern)),
                ("phase", num(phase)),
                ("potential", Value::Bool(potential)),
            ]),
        ),
        SimEvent::FaultDropped { fault } => ("fault_dropped", obj([("fault", num(fault.index()))])),
        SimEvent::ShardDone {
            shard,
            faults,
            detected,
            seconds,
        } => (
            "shard_done",
            obj([
                ("detected", num(detected)),
                ("faults", num(faults)),
                ("seconds", Value::Num(seconds)),
                ("shard", num(shard)),
            ]),
        ),
        SimEvent::BatchDone {
            batch,
            first_pattern,
            patterns,
            shards,
            detected_so_far,
            imbalance,
        } => (
            "batch_done",
            obj([
                ("batch", num(batch)),
                ("detected_so_far", num(detected_so_far)),
                ("first_pattern", num(first_pattern)),
                ("imbalance", Value::Num(imbalance)),
                ("patterns", num(patterns)),
                ("shards", num(shards)),
            ]),
        ),
        SimEvent::Span { name, seconds } => (
            "span",
            obj([
                ("name", Value::Str(name.to_string())),
                ("seconds", Value::Num(seconds)),
            ]),
        ),
    };
    (name, data.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_faults::FaultId;

    #[test]
    fn zoo_submissions_resolve() {
        let spec = parse_submission(r#"{"circuit": "ram4x4"}"#, DEFAULT_SHARDS).unwrap();
        assert_eq!(spec.name, "ram4x4");
        assert_eq!(spec.shards, DEFAULT_SHARDS);
        assert!(!spec.collapse, "collapsing is opt-in");
        let collapsed =
            parse_submission(r#"{"circuit": "ram4x4", "collapse": true}"#, DEFAULT_SHARDS).unwrap();
        assert!(collapsed.collapse);
        assert_eq!(spec.stop_at_coverage, None, "coverage stop is opt-in");
        let targeted = parse_submission(
            r#"{"circuit": "ram4x4", "collapse": true, "stop_at_coverage": 0.9}"#,
            DEFAULT_SHARDS,
        )
        .unwrap();
        assert_eq!(targeted.stop_at_coverage, Some(0.9));
        assert!(targeted.collapse, "combination is accepted");
        assert!(!spec.patterns.is_empty());
        assert!(!spec.outputs.is_empty());
        let (net_hash, stim_hash) = spec.cache_key();
        assert_eq!(net_hash, spec.net.content_hash());
        assert_ne!(stim_hash, 0);
    }

    #[test]
    fn inline_submissions_round_trip_through_the_wire_form() {
        let zoo = build_zoo("ram4x4").unwrap();
        let netlist = fmossim_netlist::write_netlist(&zoo.net);
        let body = obj([
            ("name", Value::Str("mine".into())),
            ("netlist", Value::Str(netlist)),
            (
                "outputs",
                Value::Arr(
                    zoo.outputs
                        .iter()
                        .map(|&o| Value::Str(zoo.net.node(o).name.clone()))
                        .collect(),
                ),
            ),
            ("patterns", patterns_to_json(&zoo.net, &zoo.patterns)),
            ("universe", Value::Str("stuck-transistors".into())),
            ("shards", Value::Num(3.0)),
        ])
        .to_string();
        let spec = parse_submission(&body, DEFAULT_SHARDS).unwrap();
        assert_eq!(spec.name, "mine");
        assert_eq!(spec.shards, 3);
        assert_eq!(spec.patterns, zoo.patterns, "stimulus survives the wire");
        assert_eq!(spec.outputs, zoo.outputs);
        // Same circuit + stimulus ⇒ same cache key as the zoo build.
        assert_eq!(spec.net.content_hash(), zoo.net.content_hash());
        assert_eq!(
            stimulus_content_hash(&spec.patterns),
            stimulus_content_hash(&zoo.patterns)
        );
    }

    #[test]
    fn rejects_bad_submissions_with_messages() {
        let cases = [
            ("not json", "malformed JSON"),
            ("[]", "must be a JSON object"),
            ("{}", "names no workload"),
            (r#"{"circuit": "nope"}"#, "unknown zoo circuit"),
            (r#"{"circuit": "ram4x4", "netlist": "x"}"#, "not both"),
            (
                r#"{"circuit": "ram4x4", "universe": "everything"}"#,
                "unknown universe",
            ),
            (r#"{"circuit": "ram4x4", "shards": 0}"#, "shards"),
            (r#"{"circuit": "ram4x4", "shards": 1e9}"#, "shards"),
            (r#"{"circuit": "ram4x4", "collapse": 3}"#, "collapse"),
            (
                r#"{"circuit": "ram4x4", "collapse": "yes"}"#,
                "must be a boolean",
            ),
            (
                r#"{"circuit": "ram4x4", "stop_at_coverage": 1.5}"#,
                "stop_at_coverage",
            ),
            (
                r#"{"circuit": "ram4x4", "stop_at_coverage": "most"}"#,
                "must be a number",
            ),
            (r#"{"netlist": "input A 0"}"#, "outputs"),
        ];
        for (body, needle) in cases {
            let err = parse_submission(body, DEFAULT_SHARDS).expect_err(body);
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn pattern_decode_rejects_unknown_nodes_and_bad_logic() {
        let zoo = build_zoo("ram4x4").unwrap();
        let bad_node = parse(r#"[{"phases": [{"inputs": [["GHOST", "1"]]}]}]"#).unwrap();
        assert!(patterns_from_json(&zoo.net, &bad_node)
            .unwrap_err()
            .contains("GHOST"));
        let name = zoo.net.node(zoo.outputs[0]).name.clone();
        let bad_logic = parse(&format!(
            r#"[{{"phases": [{{"inputs": [["{name}", "2"]]}}]}}]"#
        ))
        .unwrap();
        assert!(patterns_from_json(&zoo.net, &bad_logic)
            .unwrap_err()
            .contains("logic"));
    }

    #[test]
    fn sse_payloads_are_stable_json() {
        let (name, data) = sse_event(&SimEvent::Detected {
            fault: FaultId(7),
            pattern: 2,
            phase: 5,
            potential: true,
        });
        assert_eq!(name, "detected");
        assert_eq!(
            data,
            r#"{"fault":7,"pattern":2,"phase":5,"potential":true}"#
        );
        let (name, data) = sse_event(&SimEvent::ShardDone {
            shard: 1,
            faults: 16,
            detected: 9,
            seconds: 0.25,
        });
        assert_eq!(name, "shard_done");
        assert_eq!(
            data,
            r#"{"detected":9,"faults":16,"seconds":0.25,"shard":1}"#
        );
    }
}
