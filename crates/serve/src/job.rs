//! The job table: one entry per submitted campaign, carrying its
//! lifecycle state, cancel token, finished report, and the SSE event
//! backlog.
//!
//! Every job's stream of [`SimEvent`]s is rendered to SSE frames
//! *once* (by the coordinator thread, via [`crate::proto::sse_event`]) and
//! appended to a per-job backlog; any number of `GET
//! /campaigns/{id}/events` readers replay the backlog from the start
//! and then block on the job's condvar for more — a late subscriber
//! sees the identical stream a prompt one did. The backlog is capped
//! at [`MAX_EVENT_FRAMES`] frames ([`Detected`](SimEvent::Detected)
//! events scale with the universe); overflow drops *sim* frames,
//! counts them, and reports the count in the terminal `done` frame.
//! The first drop also appends one synthetic `frames_dropped` frame,
//! so readers see the gap *in-stream* at the point it opens instead
//! of only discovering it from the terminal count. Lifecycle
//! (`status`/`done`/`error`) frames and the gap marker are never
//! dropped.

use crate::proto::sse_event;
use fmossim_campaign::json::{obj, parse, Value};
use fmossim_campaign::{CampaignReport, SimEvent};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Cap on buffered SSE frames per job (see the module docs).
pub const MAX_EVENT_FRAMES: usize = 8192;

/// A job's lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, coordinator not yet running the campaign.
    Queued,
    /// The campaign is running (or waiting for pool slots).
    Running,
    /// Finished normally; the report is available.
    Done,
    /// Finished early after a cooperative cancel; the partial report
    /// is available.
    Cancelled,
    /// The coordinator failed; `error` says why.
    Failed,
}

impl JobStatus {
    /// The wire spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Failed => "failed",
        }
    }

    /// True once the job can no longer change state.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Cancelled | JobStatus::Failed
        )
    }
}

/// Formats a job id for the wire (`job-7`).
#[must_use]
pub fn format_job_id(id: u64) -> String {
    format!("job-{id}")
}

/// Parses a wire job id (`job-7` → `7`).
#[must_use]
pub fn parse_job_id(s: &str) -> Option<u64> {
    s.strip_prefix("job-")?.parse().ok()
}

struct JobState {
    status: JobStatus,
    cache_hit: Option<bool>,
    report: Option<CampaignReport>,
    error: Option<String>,
    frames: Vec<Arc<str>>,
    dropped: usize,
}

/// One submitted campaign (see the module docs).
pub struct Job {
    /// Numeric id (`format_job_id` for the wire form).
    pub id: u64,
    /// Display name from the submission.
    pub name: String,
    /// The cooperative cancel token, shared with the running backend.
    pub cancel: Arc<AtomicBool>,
    state: Mutex<JobState>,
    cond: Condvar,
}

impl Job {
    fn new(id: u64, name: String) -> Arc<Job> {
        let job = Arc::new(Job {
            id,
            name,
            cancel: Arc::new(AtomicBool::new(false)),
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                cache_hit: None,
                report: None,
                error: None,
                frames: Vec::new(),
                dropped: 0,
            }),
            cond: Condvar::new(),
        });
        job.push_status_frame(JobStatus::Queued, None);
        job
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JobState> {
        self.state.lock().expect("job state poisoned")
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn status(&self) -> JobStatus {
        self.lock().status
    }

    /// Whether the run reused a cached tape (`None` until known).
    #[must_use]
    pub fn cache_hit(&self) -> Option<bool> {
        self.lock().cache_hit
    }

    /// The finished report, if terminal with one.
    #[must_use]
    pub fn report(&self) -> Option<CampaignReport> {
        self.lock().report.clone()
    }

    /// Requests a cooperative cancel. The running backend observes the
    /// token at its next work-item boundary; a queued job cancels
    /// before simulating anything.
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Marks the job running and records the cache-lookup outcome.
    pub fn set_running(&self, cache_hit: bool) {
        {
            let mut st = self.lock();
            st.status = JobStatus::Running;
            st.cache_hit = Some(cache_hit);
        }
        self.push_status_frame(JobStatus::Running, Some(cache_hit));
    }

    /// Appends one simulation event to the SSE backlog (dropped, and
    /// counted, past [`MAX_EVENT_FRAMES`]). The first drop appends a
    /// synthetic `frames_dropped` marker — cap-exempt, like lifecycle
    /// frames — so the stream shows where the gap opens; the terminal
    /// `done` frame carries the final count.
    pub fn push_event(&self, e: &SimEvent) {
        let (event, data) = sse_event(e);
        let frame = crate::http::sse_frame(event, &data);
        let mut st = self.lock();
        if st.frames.len() >= MAX_EVENT_FRAMES {
            st.dropped += 1;
            if st.dropped == 1 {
                let data = obj([
                    ("cap", Value::Num(MAX_EVENT_FRAMES as f64)),
                    ("id", Value::Str(format_job_id(self.id))),
                ]);
                let marker = crate::http::sse_frame("frames_dropped", &data.to_string());
                st.frames.push(Arc::from(marker.as_str()));
                drop(st);
                self.cond.notify_all();
            }
            return;
        }
        st.frames.push(Arc::from(frame.as_str()));
        drop(st);
        self.cond.notify_all();
    }

    /// Finishes the job with its report: [`JobStatus::Cancelled`] when
    /// the report says so, [`JobStatus::Done`] otherwise.
    pub fn finish(&self, report: CampaignReport) {
        let status = if report.cancelled {
            JobStatus::Cancelled
        } else {
            JobStatus::Done
        };
        let (detected, coverage, dropped) = {
            let mut st = self.lock();
            st.status = status;
            let detected = report.detected();
            let coverage = report.coverage();
            st.report = Some(report);
            (detected, coverage, st.dropped)
        };
        let data = obj([
            ("coverage", Value::Num(coverage)),
            ("detected", Value::Num(detected as f64)),
            ("dropped_frames", Value::Num(dropped as f64)),
            ("id", Value::Str(format_job_id(self.id))),
            ("status", Value::Str(status.as_str().to_string())),
        ]);
        self.push_lifecycle_frame("done", &data.to_string());
    }

    /// Finishes the job as [`JobStatus::Failed`].
    pub fn fail(&self, error: String) {
        {
            let mut st = self.lock();
            st.status = JobStatus::Failed;
            st.error = Some(error.clone());
        }
        let data = obj([
            ("error", Value::Str(error)),
            ("id", Value::Str(format_job_id(self.id))),
        ]);
        self.push_lifecycle_frame("error", &data.to_string());
    }

    fn push_status_frame(&self, status: JobStatus, cache_hit: Option<bool>) {
        let mut pairs = vec![
            ("id", Value::Str(format_job_id(self.id))),
            ("status", Value::Str(status.as_str().to_string())),
        ];
        if let Some(hit) = cache_hit {
            pairs.push(("cache_hit", Value::Bool(hit)));
        }
        let data = obj(pairs);
        self.push_lifecycle_frame("status", &data.to_string());
    }

    /// Lifecycle frames ignore the cap — they are few and load-bearing.
    fn push_lifecycle_frame(&self, event: &str, data: &str) {
        let frame = crate::http::sse_frame(event, data);
        self.lock().frames.push(Arc::from(frame.as_str()));
        self.cond.notify_all();
    }

    /// Blocks until there are frames past `cursor` or the job is
    /// terminal; returns the new frames and whether the stream is
    /// complete (terminal *and* fully delivered).
    #[must_use]
    pub fn wait_frames(&self, cursor: usize) -> (Vec<Arc<str>>, bool) {
        let mut st = self.lock();
        while st.frames.len() <= cursor && !st.status.is_terminal() {
            st = self.cond.wait(st).expect("job state poisoned");
        }
        let new = st.frames[cursor.min(st.frames.len())..].to_vec();
        let complete = st.status.is_terminal();
        (new, complete)
    }

    /// The status document for `GET /campaigns/{id}`: id, name,
    /// status, cache outcome, error, and — once terminal — the full
    /// v3 report embedded under `"report"`.
    #[must_use]
    pub fn status_json(&self) -> String {
        let st = self.lock();
        let mut pairs = vec![
            ("id", Value::Str(format_job_id(self.id))),
            ("name", Value::Str(self.name.clone())),
            ("status", Value::Str(st.status.as_str().to_string())),
            ("cache_hit", st.cache_hit.map_or(Value::Null, Value::Bool)),
            (
                "error",
                st.error
                    .as_ref()
                    .map_or(Value::Null, |e| Value::Str(e.clone())),
            ),
        ];
        let report = st
            .report
            .as_ref()
            .map(|r| parse(&r.to_json()).expect("report JSON round-trips"));
        pairs.push(("report", report.unwrap_or(Value::Null)));
        let doc = obj(pairs);
        drop(st);
        doc.to_string()
    }

    /// The one-line summary used by `GET /campaigns` listings.
    #[must_use]
    pub fn summary_json(&self) -> Value {
        let st = self.lock();
        obj([
            ("id", Value::Str(format_job_id(self.id))),
            ("name", Value::Str(self.name.clone())),
            ("status", Value::Str(st.status.as_str().to_string())),
            ("cache_hit", st.cache_hit.map_or(Value::Null, Value::Bool)),
        ])
    }
}

/// The server's id-ordered registry of jobs.
#[derive(Default)]
pub struct JobTable {
    jobs: Mutex<BTreeMap<u64, Arc<Job>>>,
    next: AtomicU64,
}

impl JobTable {
    /// An empty table; ids start at `job-1`.
    #[must_use]
    pub fn new() -> JobTable {
        JobTable {
            jobs: Mutex::new(BTreeMap::new()),
            next: AtomicU64::new(1),
        }
    }

    /// Creates and registers a fresh [`JobStatus::Queued`] job.
    pub fn create(&self, name: String) -> Arc<Job> {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        let job = Job::new(id, name);
        self.jobs
            .lock()
            .expect("job table poisoned")
            .insert(id, Arc::clone(&job));
        job
    }

    /// Looks up a job by numeric id.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs
            .lock()
            .expect("job table poisoned")
            .get(&id)
            .cloned()
    }

    /// Summaries of every job, in id order.
    #[must_use]
    pub fn summaries(&self) -> Vec<Value> {
        self.jobs
            .lock()
            .expect("job table poisoned")
            .values()
            .map(|j| j.summary_json())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_campaign::StopReason;

    fn report(cancelled: bool) -> CampaignReport {
        let mut r = CampaignReport {
            backend: "served".into(),
            ..CampaignReport::default()
        };
        r.cancelled = cancelled;
        if cancelled {
            r.stop = StopReason::Cancelled;
        }
        r
    }

    #[test]
    fn ids_round_trip_the_wire_form() {
        assert_eq!(format_job_id(7), "job-7");
        assert_eq!(parse_job_id("job-7"), Some(7));
        assert_eq!(parse_job_id("7"), None);
        assert_eq!(parse_job_id("job-x"), None);
    }

    #[test]
    fn lifecycle_frames_bracket_the_stream() {
        let table = JobTable::new();
        let job = table.create("ram4x4".into());
        assert_eq!(job.status(), JobStatus::Queued);
        job.set_running(true);
        job.push_event(&SimEvent::Span {
            name: "campaign.run",
            seconds: 0.5,
        });
        job.finish(report(false));
        assert_eq!(job.status(), JobStatus::Done);

        let (frames, complete) = job.wait_frames(0);
        assert!(complete);
        let all: String = frames.iter().map(|f| f.as_ref()).collect();
        assert!(
            all.starts_with("event: status\ndata: {\"id\":\"job-1\",\"status\":\"queued\"}\n\n")
        );
        assert!(all.contains("\"status\":\"running\""));
        assert!(all.contains("\"cache_hit\":true"));
        assert!(all.contains("event: span\n"));
        assert!(all.contains("event: done\n"));
        assert!(all.contains("\"dropped_frames\":0"));

        // A later cursor sees only the tail.
        let (tail, complete) = job.wait_frames(frames.len() - 1);
        assert!(complete);
        assert_eq!(tail.len(), 1);
        assert!(tail[0].starts_with("event: done\n"));
    }

    #[test]
    fn backlog_caps_sim_frames_but_never_lifecycle_frames() {
        let table = JobTable::new();
        let job = table.create("x".into());
        job.set_running(false);
        for i in 0..(MAX_EVENT_FRAMES + 10) {
            job.push_event(&SimEvent::PatternStart {
                pattern: i,
                live: 0,
            });
        }
        job.finish(report(false));
        let (frames, complete) = job.wait_frames(0);
        assert!(complete);
        assert_eq!(
            frames.len(),
            MAX_EVENT_FRAMES + 2,
            "cap plus gap marker plus done frame"
        );
        let done = frames.last().unwrap();
        assert!(done.contains("\"dropped_frames\":12"), "{done}");
    }

    /// The first dropped frame leaves an in-stream `frames_dropped`
    /// marker exactly where the gap opens — once, no matter how many
    /// frames fall into the gap — and a stream that never overflows
    /// carries no marker.
    #[test]
    fn a_gap_marker_frame_flags_the_first_drop() {
        let table = JobTable::new();
        let job = table.create("x".into());
        job.set_running(false);
        let push = |i: usize| {
            job.push_event(&SimEvent::PatternStart {
                pattern: i,
                live: 0,
            });
        };
        // Fill to the cap exactly: two lifecycle frames are already in
        // the backlog, so MAX - 2 sim events land and none drop.
        for i in 0..(MAX_EVENT_FRAMES - 2) {
            push(i);
        }
        let (frames, _) = job.wait_frames(0);
        assert_eq!(frames.len(), MAX_EVENT_FRAMES);
        assert!(
            !frames
                .iter()
                .any(|f| f.starts_with("event: frames_dropped")),
            "no marker before the first drop"
        );

        // The next event is the first casualty: it is dropped and the
        // marker takes its place in the stream.
        push(MAX_EVENT_FRAMES);
        let (frames, _) = job.wait_frames(MAX_EVENT_FRAMES);
        assert_eq!(frames.len(), 1);
        assert!(
            frames[0].starts_with("event: frames_dropped\n"),
            "{}",
            frames[0]
        );
        assert!(frames[0].contains("\"cap\":8192"), "{}", frames[0]);
        assert!(frames[0].contains("\"id\":\"job-1\""), "{}", frames[0]);

        // Further drops are counted but leave no additional markers.
        for i in 0..5 {
            push(MAX_EVENT_FRAMES + 1 + i);
        }
        job.finish(report(false));
        let (frames, complete) = job.wait_frames(0);
        assert!(complete);
        let markers = frames
            .iter()
            .filter(|f| f.starts_with("event: frames_dropped"))
            .count();
        assert_eq!(markers, 1, "the marker is emitted once");
        assert!(
            frames.last().unwrap().contains("\"dropped_frames\":6"),
            "{}",
            frames.last().unwrap()
        );
    }

    #[test]
    fn status_json_embeds_the_report_once_terminal() {
        let table = JobTable::new();
        let job = table.create("ram4x4".into());
        let doc = parse(&job.status_json()).unwrap();
        assert!(doc.get("report").unwrap().is_null());
        assert!(doc.get("cache_hit").unwrap().is_null());

        job.set_running(false);
        job.finish(report(true));
        assert_eq!(job.status(), JobStatus::Cancelled);
        let doc = parse(&job.status_json()).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("cancelled"));
        assert_eq!(doc.get("cache_hit").unwrap().as_bool(), Some(false));
        let embedded = doc.get("report").unwrap();
        assert_eq!(
            embedded.get("cancelled").unwrap().as_bool(),
            Some(true),
            "v3 report embedded verbatim"
        );
    }

    #[test]
    fn failed_jobs_carry_the_error() {
        let table = JobTable::new();
        let job = table.create("x".into());
        job.fail("boom".into());
        assert_eq!(job.status(), JobStatus::Failed);
        let doc = parse(&job.status_json()).unwrap();
        assert_eq!(doc.get("error").unwrap().as_str(), Some("boom"));
        let (frames, complete) = job.wait_frames(0);
        assert!(complete);
        assert!(frames.last().unwrap().starts_with("event: error\n"));
    }
}
