//! The campaign server: a `std::net` accept loop, the HTTP routes,
//! and the per-job coordinator threads gluing the job table, worker
//! pool, and tape cache together.
//!
//! # Endpoints
//!
//! | Method   | Path                     | Purpose |
//! |----------|--------------------------|---------|
//! | `POST`   | `/campaigns`             | Submit a campaign (JSON body, see [`proto`](crate::proto)); `202` with the job id. |
//! | `GET`    | `/campaigns`             | List all jobs (id, name, status, cache outcome). |
//! | `GET`    | `/campaigns/{id}`        | Status document; embeds the v3 report once terminal. |
//! | `GET`    | `/campaigns/{id}/events` | SSE stream of the job's lifecycle + simulation events. |
//! | `DELETE` | `/campaigns/{id}`        | Cooperative cancel. |
//! | `GET`    | `/metrics`               | Prometheus text: server counters merged with every finished job's telemetry. |
//! | `GET`    | `/healthz`               | Liveness probe. |
//!
//! # Threading model
//!
//! One OS thread per connection (requests are short except SSE, which
//! parks its thread on the job's condvar), one lightweight
//! *coordinator* thread per job, and exactly `workers` simulation
//! threads in the [`SharedPool`]. Coordinators never occupy pool
//! workers — they record the good tape, enqueue per-shard tasks, and
//! collect results — so total simulation CPU stays bounded no matter
//! how many campaigns are in flight.

use crate::backend::ServedBackend;
use crate::cache::TapeCache;
use crate::http::{
    finish_chunked, parse_request, write_chunk, write_event_stream_head, write_response, Request,
    Response,
};
use crate::job::{format_job_id, parse_job_id, Job, JobTable};
use crate::pool::SharedPool;
use crate::proto::{parse_submission, JobSpec, DEFAULT_SHARDS};
use fmossim_campaign::json::{obj, Value};
use fmossim_campaign::{Campaign, TapeSlot};
use fmossim_telemetry::Registry;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Server construction knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port `0` picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Simulation worker threads in the shared pool.
    pub workers: usize,
    /// Good-tape cache budget in bytes.
    pub cache_bytes: usize,
    /// Shard count for submissions that do not set `shards`.
    pub default_shards: usize,
}

impl Default for ServerConfig {
    /// Loopback on a free port, two workers, a 64 MiB tape cache.
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            cache_bytes: 64 << 20,
            default_shards: DEFAULT_SHARDS,
        }
    }
}

pub(crate) struct ServerState {
    pool: Arc<SharedPool>,
    jobs: JobTable,
    cache: TapeCache,
    /// Server counters plus every finished job's merged telemetry —
    /// the `/metrics` source of truth.
    registry: Registry,
    default_shards: usize,
}

/// The bound, not-yet-serving campaign server.
///
/// ```no_run
/// use fmossim_serve::{Server, ServerConfig};
///
/// let server = Server::bind(&ServerConfig::default()).unwrap();
/// println!("listening on {}", server.local_addr().unwrap());
/// server.run().unwrap(); // serves forever
/// ```
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener and builds the shared state (pool, job
    /// table, tape cache, metrics registry).
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind(config: &ServerConfig) -> io::Result<Server> {
        let registry = Registry::new();
        let state = Arc::new(ServerState {
            pool: Arc::new(SharedPool::new(config.workers, &registry)),
            jobs: JobTable::new(),
            cache: TapeCache::new(config.cache_bytes, &registry),
            registry,
            default_shards: config.default_shards.clamp(1, crate::proto::MAX_SHARDS),
        });
        Ok(Server {
            listener: TcpListener::bind(&config.addr)?,
            state,
        })
    }

    /// The bound address (resolves port `0` to the actual port).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until the process exits (one thread per
    /// connection).
    ///
    /// # Errors
    ///
    /// Returns only the accept loop's fatal errors; per-connection
    /// errors close that connection.
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let state = Arc::clone(&self.state);
            let _ = std::thread::Builder::new()
                .name("serve-conn".into())
                .spawn(move || handle_connection(&state, stream));
        }
        Ok(())
    }
}

fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let req = match parse_request(&mut reader) {
            Ok(None) => return,
            Ok(Some(req)) => req,
            Err(e) => {
                let _ = write_response(&mut writer, &Response::from_error(&e));
                return;
            }
        };
        // SSE takes over the connection; everything else is
        // request/response with keep-alive.
        if let Some(job) = sse_target(state, &req) {
            let _ = stream_events(&job, &mut writer);
            return;
        }
        let mut resp = route(state, &req);
        resp.keep_alive &= req.keep_alive;
        if write_response(&mut writer, &resp).is_err() || !resp.keep_alive {
            return;
        }
    }
}

/// Path segments, query string stripped.
fn segments(target: &str) -> Vec<&str> {
    let path = target.split('?').next().unwrap_or(target);
    path.split('/').filter(|s| !s.is_empty()).collect()
}

fn sse_target(state: &ServerState, req: &Request) -> Option<Arc<Job>> {
    match (req.method.as_str(), segments(&req.target).as_slice()) {
        ("GET", ["campaigns", id, "events"]) => state.jobs.get(parse_job_id(id)?),
        _ => None,
    }
}

fn route(state: &Arc<ServerState>, req: &Request) -> Response {
    let segs = segments(&req.target);
    match (req.method.as_str(), segs.as_slice()) {
        ("GET", ["healthz"]) => Response::json(200, "{\"ok\":true}".into()),
        ("GET", ["metrics"]) => Response::text(200, state.registry.to_prometheus()),
        ("POST", ["campaigns"]) => submit(state, req),
        ("GET", ["campaigns"]) => {
            let doc = obj([("jobs", Value::Arr(state.jobs.summaries()))]);
            Response::json(200, doc.to_string())
        }
        ("GET", ["campaigns", id]) => match lookup(state, id) {
            Ok(job) => Response::json(200, job.status_json()),
            Err(resp) => resp,
        },
        ("DELETE", ["campaigns", id]) => match lookup(state, id) {
            Ok(job) => {
                job.request_cancel();
                state.registry.counter("serve.jobs.cancel_requests").inc();
                let doc = obj([
                    ("cancelling", Value::Bool(!job.status().is_terminal())),
                    ("id", Value::Str(format_job_id(job.id))),
                    ("status", Value::Str(job.status().as_str().to_string())),
                ]);
                Response::json(200, doc.to_string())
            }
            Err(resp) => resp,
        },
        // `GET /campaigns/{id}/events` is intercepted before routing;
        // reaching it here means the job id did not resolve.
        ("GET", ["campaigns", _, "events"]) => not_found("no such campaign"),
        (_, ["healthz" | "metrics"]) | (_, ["campaigns", ..]) => {
            let mut resp = Response::text(405, "method not allowed\n".into());
            resp.keep_alive = true;
            resp
        }
        _ => not_found("no such resource"),
    }
}

fn not_found(detail: &str) -> Response {
    Response::text(404, format!("{detail}\n"))
}

fn lookup(state: &ServerState, id: &str) -> Result<Arc<Job>, Response> {
    parse_job_id(id)
        .and_then(|id| state.jobs.get(id))
        .ok_or_else(|| not_found("no such campaign"))
}

fn submit(state: &Arc<ServerState>, req: &Request) -> Response {
    let body = match req.body_str() {
        Ok(b) => b,
        Err(e) => return Response::from_error(&e),
    };
    let spec = match parse_submission(body, state.default_shards) {
        Ok(spec) => spec,
        Err(e) => return Response::text(400, format!("{e}\n")),
    };
    let job = state.jobs.create(spec.name.clone());
    state.registry.counter("serve.jobs.accepted").inc();
    // One coordinator thread per job: it owns the campaign run end to
    // end, while all simulation happens on the shared pool.
    // (Failure to spawn would leak a forever-Queued job, so fail it.)
    let spawned = {
        let state = Arc::clone(state);
        let job = Arc::clone(&job);
        std::thread::Builder::new()
            .name(format!("serve-coord-{}", job.id))
            .spawn(move || run_job(&state, &job, spec))
    };
    if let Err(e) = spawned {
        job.fail(format!("spawn coordinator: {e}"));
        state.registry.counter("serve.jobs.failed").inc();
        return Response::text(500, "cannot start job\n".into());
    }
    let doc = obj([
        ("id", Value::Str(format_job_id(job.id))),
        ("status", Value::Str("queued".into())),
    ]);
    Response::json(202, doc.to_string())
}

/// The per-job coordinator: cache lookup, campaign run on the served
/// backend, cache fill, terminal bookkeeping.
fn run_job(state: &Arc<ServerState>, job: &Arc<Job>, spec: JobSpec) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let key = spec.cache_key();
        let cached = state.cache.get(key);
        job.set_running(cached.is_some());

        let spec = Arc::new(spec);
        let slot = TapeSlot::default();
        let job_registry = Registry::new();
        let backend = ServedBackend::new(
            Arc::clone(&spec),
            Arc::clone(&state.pool),
            job.id,
            Arc::clone(&job.cancel),
        );
        let observer_job = Arc::clone(job);
        let mut campaign = Campaign::new(&spec.net)
            .faults(spec.universe.clone())
            .patterns(&spec.patterns)
            .outputs(&spec.outputs)
            .backend_impl(Box::new(backend))
            .collapse(spec.collapse)
            .with_telemetry(&job_registry)
            .export_good_tape(&slot)
            .on_event(move |e| observer_job.push_event(&e));
        if let Some(target) = spec.stop_at_coverage {
            campaign = campaign.stop_at_coverage(target);
        }
        if let Some(tape) = cached {
            campaign = campaign.with_good_tape(tape);
        }
        let report = campaign.run();

        // Cache the tape only from complete runs; a cancelled run's
        // tape is fine too (recording happens before simulation), but
        // never overwrite on a hit — `insert` refreshing recency via
        // `get` already happened.
        if let Some(tape) = slot.lock().expect("tape slot poisoned").take() {
            state.cache.insert(key, tape);
        }

        // Fold the job's sim telemetry into the server registry so
        // `/metrics` carries the per-layer counters alongside the
        // `serve.*` ones.
        state.registry.merge(&job_registry);
        report
    }));
    match outcome {
        Ok(report) => {
            let counter = if report.cancelled {
                "serve.jobs.cancelled"
            } else {
                "serve.jobs.completed"
            };
            state.registry.counter(counter).inc();
            job.finish(report);
        }
        Err(_) => {
            state.registry.counter("serve.jobs.failed").inc();
            job.fail("internal error while running the campaign".into());
        }
    }
}

/// Streams a job's SSE frames: full backlog replay, then live frames
/// until the job is terminal, then a clean chunked terminator.
fn stream_events(job: &Arc<Job>, w: &mut BufWriter<TcpStream>) -> io::Result<()> {
    write_event_stream_head(w)?;
    let mut cursor = 0usize;
    loop {
        let (frames, complete) = job.wait_frames(cursor);
        for frame in &frames {
            write_chunk(w, frame.as_bytes())?;
        }
        cursor += frames.len();
        w.flush()?;
        if complete && frames.is_empty() {
            break;
        }
        if complete {
            // Terminal: one more pass collects nothing and exits.
            continue;
        }
    }
    finish_chunked(w)
}
