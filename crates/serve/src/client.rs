//! A minimal blocking HTTP client for the campaign server, used by
//! the `fmossim` CLI subcommands and the end-to-end tests. It speaks
//! exactly the subset the server emits: `HTTP/1.1` responses with
//! either a `content-length` body or a chunked `text/event-stream`.

use crate::http::MAX_BODY;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// A fully-read HTTP response.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// Status code, e.g. `202`.
    pub status: u16,
    /// Headers as `(lowercased-name, value)` pairs in wire order.
    pub headers: Vec<(String, String)>,
    /// The (de-chunked) body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First value of a header, by case-insensitive name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Fails on invalid UTF-8.
    pub fn body_str(&self) -> io::Result<&str> {
        std::str::from_utf8(&self.body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Performs one request and reads the whole response (the connection
/// is not reused).
///
/// # Errors
///
/// Propagates socket and malformed-response errors.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)
}

/// Connects to a job's SSE stream and collects `(event, data)` pairs
/// until the server closes the stream (the job reached a terminal
/// state). Multi-line `data:` payloads are joined with `\n`.
///
/// # Errors
///
/// Propagates socket and framing errors.
pub fn sse_events(addr: SocketAddr, path: &str) -> io::Result<Vec<(String, String)>> {
    let resp = request(addr, "GET", path, None)?;
    if resp.status != 200 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("SSE request failed with status {}", resp.status),
        ));
    }
    Ok(parse_sse(resp.body_str()?))
}

/// Splits an SSE document into `(event, data)` pairs.
#[must_use]
pub fn parse_sse(text: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let (mut event, mut data) = (String::new(), Vec::new());
    for line in text.split('\n') {
        if line.is_empty() {
            if !event.is_empty() || !data.is_empty() {
                out.push((std::mem::take(&mut event), data.join("\n")));
                data.clear();
            }
        } else if let Some(v) = line.strip_prefix("event: ") {
            event = v.to_string();
        } else if let Some(v) = line.strip_prefix("data: ") {
            data.push(v.to_string());
        }
    }
    out
}

fn read_response(r: &mut impl BufRead) -> io::Result<HttpResponse> {
    let status_line = read_line(r)?;
    let mut parts = status_line.split(' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(bad(&format!("not an HTTP response: {status_line:?}")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("missing status code"))?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad(&format!("malformed header: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        read_chunked(r)?
    } else {
        let len: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .map_or(Ok(0), |(_, v)| {
                v.parse().map_err(|_| bad("bad content-length"))
            })?;
        if len > MAX_BODY {
            return Err(bad("response body too large"));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        body
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

fn read_chunked(r: &mut impl BufRead) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let size_line = read_line(r)?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| bad(&format!("bad chunk size: {size_line:?}")))?;
        if body.len() + size > MAX_BODY {
            return Err(bad("chunked response too large"));
        }
        let mut chunk = vec![0u8; size + 2]; // data + trailing CRLF
        r.read_exact(&mut chunk)?;
        if &chunk[size..] != b"\r\n" {
            return Err(bad("chunk missing CRLF terminator"));
        }
        if size == 0 {
            return Ok(body);
        }
        chunk.truncate(size);
        body.extend_from_slice(&chunk);
    }
}

/// Reads one CRLF- (or LF-) terminated line without the terminator.
fn read_line(r: &mut impl BufRead) -> io::Result<String> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

fn bad(detail: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn reads_a_content_length_response() {
        let wire = b"HTTP/1.1 202 Accepted\r\ncontent-length: 9\r\ncontent-type: application/json\r\n\r\n{\"ok\":true".to_vec();
        // Body is 9 bytes — the final byte of the payload above is
        // deliberately beyond it and must not be consumed.
        let mut r = BufReader::new(&wire[..]);
        let resp = read_response(&mut r).unwrap();
        assert_eq!(resp.status, 202);
        assert_eq!(resp.header("Content-Type"), Some("application/json"));
        assert_eq!(resp.body_str().unwrap(), "{\"ok\":tru");
    }

    #[test]
    fn reads_a_chunked_sse_response() {
        let wire = concat!(
            "HTTP/1.1 200 OK\r\n",
            "transfer-encoding: chunked\r\n",
            "content-type: text/event-stream\r\n",
            "\r\n",
            "18\r\nevent: status\ndata: {}\n\n\r\n",
            "16\r\nevent: done\ndata: {}\n\n\r\n",
            "0\r\n\r\n",
        )
        .as_bytes()
        .to_vec();
        let mut r = BufReader::new(&wire[..]);
        let resp = read_response(&mut r).unwrap();
        assert_eq!(resp.status, 200);
        let events = parse_sse(resp.body_str().unwrap());
        assert_eq!(
            events,
            vec![
                ("status".to_string(), "{}".to_string()),
                ("done".to_string(), "{}".to_string()),
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        let mut r = BufReader::new(&b"not http at all\r\n\r\n"[..]);
        assert!(read_response(&mut r).is_err());
    }
}
