//! State views: how the solver reads and writes node states.

use fmossim_netlist::{Conduction, Logic, Network, NodeId, TransistorId};

/// A read/write view of a network's simulation state.
///
/// The steady-state solver and the [`Engine`](crate::Engine) are generic
/// over this trait so that the *same* algorithm simulates:
///
/// * the fault-free circuit (a dense state vector, [`DenseState`]);
/// * a faulty circuit in the concurrent simulator (divergence records
///   overlaid on the good circuit's dense state);
/// * a faulty circuit in the serial baseline (a dense state vector plus
///   structural overrides).
///
/// The three overridable queries (`is_input`, `conduction`) exist
/// because faults change them per circuit: a stuck node behaves as an
/// input node; a stuck transistor ignores its gate.
pub trait SwitchState {
    /// The network being simulated. The engine assumes the network
    /// outlives and is never structurally modified during a settle.
    fn network(&self) -> &Network;

    /// Current logic state of node `n`.
    fn node_state(&self, n: NodeId) -> Logic;

    /// Writes a new state for node `n`. Called only for nodes that are
    /// not input-classified under [`SwitchState::is_input`].
    fn set_node_state(&mut self, n: NodeId, v: Logic);

    /// Whether `n` acts as an input (externally forced) node in this
    /// view. Defaults to the netlist classification; stuck-node faults
    /// override this.
    #[inline]
    fn is_input(&self, n: NodeId) -> bool {
        self.network().node(n).is_input()
    }

    /// Conduction state of transistor `t` in this view. Defaults to the
    /// type-dependent function of the gate-node state (Table 1);
    /// stuck-open/closed faults override this.
    #[inline]
    fn conduction(&self, t: TransistorId) -> Conduction {
        let tr = self.network().transistor(t);
        tr.ttype.conduction(self.node_state(tr.gate))
    }
}

/// Dense per-node state storage for whole-circuit simulation.
///
/// Storage nodes start at `X` (uninitialized charge); input nodes start
/// at their declared default values.
#[derive(Clone, Debug)]
pub struct DenseState<'n> {
    net: &'n Network,
    states: Vec<Logic>,
}

impl<'n> DenseState<'n> {
    /// Creates the reset state for `net`: inputs at their defaults,
    /// storage nodes at `X`.
    #[must_use]
    pub fn new(net: &'n Network) -> Self {
        let states = net
            .nodes()
            .map(|(_, node)| match node.class {
                fmossim_netlist::NodeClass::Input(v) => v,
                fmossim_netlist::NodeClass::Storage(_) => Logic::X,
            })
            .collect();
        DenseState { net, states }
    }

    /// Direct read access to the state vector (for snapshotting and
    /// divergence comparison in the fault simulator).
    #[must_use]
    pub fn states(&self) -> &[Logic] {
        &self.states
    }

    /// Overwrites the state of `n` without any perturbation bookkeeping.
    /// Used by the engine for input application; simulators should go
    /// through [`crate::Engine::apply_input`].
    #[inline]
    pub fn force(&mut self, n: NodeId, v: Logic) {
        self.states[n.index()] = v;
    }
}

impl SwitchState for DenseState<'_> {
    #[inline]
    fn network(&self) -> &Network {
        self.net
    }

    #[inline]
    fn node_state(&self, n: NodeId) -> Logic {
        self.states[n.index()]
    }

    #[inline]
    fn set_node_state(&mut self, n: NodeId, v: Logic) {
        self.states[n.index()] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_netlist::{Drive, Size, TransistorType};

    #[test]
    fn reset_state_matches_declarations() {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::X);
        let s = net.add_storage("S", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, a, s, gnd);
        let st = DenseState::new(&net);
        assert_eq!(st.node_state(vdd), Logic::H);
        assert_eq!(st.node_state(gnd), Logic::L);
        assert_eq!(st.node_state(a), Logic::X);
        assert_eq!(st.node_state(s), Logic::X);
        assert!(st.is_input(a));
        assert!(!st.is_input(s));
    }

    #[test]
    fn conduction_tracks_gate_state() {
        let mut net = Network::new();
        let g = net.add_input("G", Logic::L);
        let a = net.add_input("A", Logic::L);
        let b = net.add_storage("B", Size::S1);
        let t = net.add_transistor(TransistorType::N, Drive::D2, g, a, b);
        let mut st = DenseState::new(&net);
        assert_eq!(st.conduction(t), Conduction::Open);
        st.force(g, Logic::H);
        assert_eq!(st.conduction(t), Conduction::Closed);
        st.force(g, Logic::X);
        assert_eq!(st.conduction(t), Conduction::Maybe);
    }
}
