//! State views: how the solver reads and writes node states.
//!
//! Two families live here. [`SwitchState`] is the scalar view — one
//! circuit, one [`Logic`] per node — that the [`Engine`](crate::Engine)
//! and [`Scratch`](crate::Scratch) drive. [`PackedState`] is its
//! bit-parallel sibling: up to 64 fault machines evaluated at once,
//! each ternary node value encoded across two `u64` *planes*
//! ([`PackedLogic`]), so one pass of bitwise plane operations settles
//! every machine in the word.

use fmossim_netlist::{Conduction, Logic, Network, NodeId, TransistorId, TransistorType};

/// A read/write view of a network's simulation state.
///
/// The steady-state solver and the [`Engine`](crate::Engine) are generic
/// over this trait so that the *same* algorithm simulates:
///
/// * the fault-free circuit (a dense state vector, [`DenseState`]);
/// * a faulty circuit in the concurrent simulator (divergence records
///   overlaid on the good circuit's dense state);
/// * a faulty circuit in the serial baseline (a dense state vector plus
///   structural overrides).
///
/// The three overridable queries (`is_input`, `conduction`) exist
/// because faults change them per circuit: a stuck node behaves as an
/// input node; a stuck transistor ignores its gate.
pub trait SwitchState {
    /// The network being simulated. The engine assumes the network
    /// outlives and is never structurally modified during a settle.
    fn network(&self) -> &Network;

    /// Current logic state of node `n`.
    fn node_state(&self, n: NodeId) -> Logic;

    /// Writes a new state for node `n`. Called only for nodes that are
    /// not input-classified under [`SwitchState::is_input`].
    fn set_node_state(&mut self, n: NodeId, v: Logic);

    /// Whether `n` acts as an input (externally forced) node in this
    /// view. Defaults to the netlist classification; stuck-node faults
    /// override this.
    #[inline]
    fn is_input(&self, n: NodeId) -> bool {
        self.network().node(n).is_input()
    }

    /// Conduction state of transistor `t` in this view. Defaults to the
    /// type-dependent function of the gate-node state (Table 1);
    /// stuck-open/closed faults override this.
    #[inline]
    fn conduction(&self, t: TransistorId) -> Conduction {
        let tr = self.network().transistor(t);
        tr.ttype.conduction(self.node_state(tr.gate))
    }
}

/// Dense per-node state storage for whole-circuit simulation.
///
/// Storage nodes start at `X` (uninitialized charge); input nodes start
/// at their declared default values.
#[derive(Clone, Debug)]
pub struct DenseState<'n> {
    net: &'n Network,
    states: Vec<Logic>,
}

impl<'n> DenseState<'n> {
    /// Creates the reset state for `net`: inputs at their defaults,
    /// storage nodes at `X`.
    #[must_use]
    pub fn new(net: &'n Network) -> Self {
        let states = net
            .nodes()
            .map(|(_, node)| match node.class {
                fmossim_netlist::NodeClass::Input(v) => v,
                fmossim_netlist::NodeClass::Storage(_) => Logic::X,
            })
            .collect();
        DenseState { net, states }
    }

    /// Direct read access to the state vector (for snapshotting and
    /// divergence comparison in the fault simulator).
    #[must_use]
    pub fn states(&self) -> &[Logic] {
        &self.states
    }

    /// Overwrites the state of `n` without any perturbation bookkeeping.
    /// Used by the engine for input application; simulators should go
    /// through [`crate::Engine::apply_input`].
    #[inline]
    pub fn force(&mut self, n: NodeId, v: Logic) {
        self.states[n.index()] = v;
    }
}

impl SwitchState for DenseState<'_> {
    #[inline]
    fn network(&self) -> &Network {
        self.net
    }

    #[inline]
    fn node_state(&self, n: NodeId) -> Logic {
        self.states[n.index()]
    }

    #[inline]
    fn set_node_state(&mut self, n: NodeId, v: Logic) {
        self.states[n.index()] = v;
    }
}

/// Up to 64 ternary logic values in a two-plane bit encoding.
///
/// Lane `i` (bit `i` of each plane) holds one fault machine's value:
///
/// | value | `h` bit | `l` bit |
/// |-------|---------|---------|
/// | `H`   | 1       | 0       |
/// | `L`   | 0       | 1       |
/// | `X`   | 1       | 1       |
///
/// The encoding is chosen so the common lattice queries are single
/// bitwise operations: `lub` is plane-wise OR, "may be high"
/// (`old ∈ {H, X}`) is the `h` plane, "may be low" is the `l` plane,
/// and "definitely high" is `h & !l`. Both bits clear means the lane is
/// inactive; active lanes always have at least one bit set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackedLogic {
    /// Plane of "may be high" bits (set for `H` and `X` lanes).
    pub h: u64,
    /// Plane of "may be low" bits (set for `L` and `X` lanes).
    pub l: u64,
}

impl PackedLogic {
    /// Broadcasts a scalar value to every lane in `lanes`.
    #[inline]
    #[must_use]
    pub fn splat(v: Logic, lanes: u64) -> Self {
        match v {
            Logic::H => PackedLogic { h: lanes, l: 0 },
            Logic::L => PackedLogic { h: 0, l: lanes },
            Logic::X => PackedLogic { h: lanes, l: lanes },
        }
    }

    /// Reads the value of lane `lane`. Returns `None` if the lane is
    /// inactive (both plane bits clear).
    #[inline]
    #[must_use]
    pub fn get(self, lane: u32) -> Option<Logic> {
        let bit = 1u64 << lane;
        match (self.h & bit != 0, self.l & bit != 0) {
            (true, false) => Some(Logic::H),
            (false, true) => Some(Logic::L),
            (true, true) => Some(Logic::X),
            (false, false) => None,
        }
    }

    /// Overwrites lane `lane` with `v`.
    #[inline]
    pub fn set(&mut self, lane: u32, v: Logic) {
        let bit = 1u64 << lane;
        self.h &= !bit;
        self.l &= !bit;
        match v {
            Logic::H => self.h |= bit,
            Logic::L => self.l |= bit,
            Logic::X => {
                self.h |= bit;
                self.l |= bit;
            }
        }
    }

    /// Per-lane least upper bound (`X` damping): plane-wise OR, so any
    /// lane where the two values differ becomes `X`.
    #[inline]
    #[must_use]
    pub fn lub(self, other: Self) -> Self {
        PackedLogic {
            h: self.h | other.h,
            l: self.l | other.l,
        }
    }

    /// Mask of lanes where `self` and `other` hold different values
    /// (inactive lanes compare on their raw plane bits).
    #[inline]
    #[must_use]
    pub fn diff_mask(self, other: Self) -> u64 {
        (self.h ^ other.h) | (self.l ^ other.l)
    }

    /// Mask of lanes that are exactly `H`.
    #[inline]
    #[must_use]
    pub fn exactly_h(self) -> u64 {
        self.h & !self.l
    }

    /// Mask of lanes that are exactly `L`.
    #[inline]
    #[must_use]
    pub fn exactly_l(self) -> u64 {
        self.l & !self.h
    }

    /// Mask of lanes that are `X`.
    #[inline]
    #[must_use]
    pub fn is_x(self) -> u64 {
        self.h & self.l
    }

    /// Restricts both planes to `lanes`.
    #[inline]
    #[must_use]
    pub fn masked(self, lanes: u64) -> Self {
        PackedLogic {
            h: self.h & lanes,
            l: self.l & lanes,
        }
    }

    /// Merges the lanes of `other` selected by `lanes` into `self`,
    /// leaving other lanes untouched.
    #[inline]
    pub fn overlay(&mut self, other: Self, lanes: u64) {
        self.h = (self.h & !lanes) | (other.h & lanes);
        self.l = (self.l & !lanes) | (other.l & lanes);
    }
}

/// Per-lane conduction classification of one transistor.
///
/// Active lanes not in `closed` or `maybe` are open. The packed solver
/// requires each vicinity to be lane-uniform (one class across all
/// lanes of a group), which extraction enforces by evicting minority
/// lanes; this struct is the pre-eviction, per-lane answer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackedConduction {
    /// Lanes where the transistor definitely conducts.
    pub closed: u64,
    /// Lanes where the transistor may conduct (gate at `X`).
    pub maybe: u64,
}

impl PackedConduction {
    /// Classifies `ttype` from the packed gate value, Table 1 per lane:
    /// N closed on `H`, P closed on `L`, both `Maybe` on `X`; depletion
    /// devices always conduct.
    #[inline]
    #[must_use]
    pub fn from_gate(ttype: TransistorType, gate: PackedLogic, lanes: u64) -> Self {
        match ttype {
            TransistorType::N => PackedConduction {
                closed: gate.exactly_h() & lanes,
                maybe: gate.is_x() & lanes,
            },
            TransistorType::P => PackedConduction {
                closed: gate.exactly_l() & lanes,
                maybe: gate.is_x() & lanes,
            },
            TransistorType::D => PackedConduction {
                closed: lanes,
                maybe: 0,
            },
        }
    }

    /// Lanes where the transistor may pass a signal (closed or maybe).
    #[inline]
    #[must_use]
    pub fn may_conduct(self) -> u64 {
        self.closed | self.maybe
    }
}

/// A read/write view over up to 64 fault machines at once — the
/// bit-parallel sibling of [`SwitchState`].
///
/// Lane `i` of every [`PackedLogic`] belongs to one fault machine; the
/// active machines are the set bits of [`PackedState::lanes`]. The
/// packed solver and [`PackedEngine`](crate::PackedEngine) are generic
/// over this trait so that the switch crate can be tested against a
/// dense implementation ([`PackedDenseState`]) while `fmossim-core`
/// supplies a view that gathers lanes from the concurrent simulator's
/// divergence records.
///
/// Like the scalar trait, `is_input_lanes` and `conduction` are
/// overridable because faults change them per machine — here per
/// *lane*.
pub trait PackedState {
    /// The network being simulated.
    fn network(&self) -> &Network;

    /// Mask of active lanes. Must stay constant during a settle.
    fn lanes(&self) -> u64;

    /// Current value of node `n` across all active lanes.
    fn node_state(&self, n: NodeId) -> PackedLogic;

    /// Writes `v`'s value into node `n` for each lane in `lanes` only;
    /// other lanes keep their current value. Called only for lanes that
    /// are not input-classified under [`PackedState::is_input_lanes`].
    fn set_node_state(&mut self, n: NodeId, lanes: u64, v: PackedLogic);

    /// Mask of lanes in which `n` acts as an input (externally forced)
    /// node. Defaults to the netlist classification (all lanes or
    /// none); stuck-node faults add per-lane bits.
    #[inline]
    fn is_input_lanes(&self, n: NodeId) -> u64 {
        if self.network().node(n).is_input() {
            self.lanes()
        } else {
            0
        }
    }

    /// Per-lane conduction of transistor `t`. Defaults to the
    /// type-dependent function of the packed gate value;
    /// stuck-open/closed faults override individual lanes.
    #[inline]
    fn conduction(&self, t: TransistorId) -> PackedConduction {
        let tr = self.network().transistor(t);
        PackedConduction::from_gate(tr.ttype, self.node_state(tr.gate), self.lanes())
    }
}

/// Dense packed storage: a full two-plane value vector per node, with
/// optional per-lane input forcing and transistor conduction overrides.
///
/// This is the reference [`PackedState`] implementation used by the
/// switch crate's own tests and benchmarks; `fmossim-core` supplies a
/// record-backed view for the concurrent simulator instead.
#[derive(Clone, Debug)]
pub struct PackedDenseState<'n> {
    net: &'n Network,
    lanes: u64,
    values: Vec<PackedLogic>,
    input_lanes: Vec<u64>,
    forced_cond: Vec<(TransistorId, u64, Conduction)>,
}

impl<'n> PackedDenseState<'n> {
    /// Broadcasts a scalar state to `count` lanes (1..=64): every lane
    /// starts with the same per-node values and input classification.
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0 or exceeds 64.
    #[must_use]
    pub fn broadcast(scalar: &DenseState<'n>, count: u32) -> Self {
        assert!((1..=64).contains(&count), "lane count must be in 1..=64");
        let lanes = if count == 64 {
            u64::MAX
        } else {
            (1u64 << count) - 1
        };
        let net = scalar.net;
        let values = scalar
            .states()
            .iter()
            .map(|&v| PackedLogic::splat(v, lanes))
            .collect();
        let input_lanes = net
            .nodes()
            .map(|(_, node)| if node.is_input() { lanes } else { 0 })
            .collect();
        PackedDenseState {
            net,
            lanes,
            values,
            input_lanes,
            forced_cond: Vec::new(),
        }
    }

    /// Overwrites node `n` in lane `lane` without any bookkeeping.
    #[inline]
    pub fn force_lane(&mut self, n: NodeId, lane: u32, v: Logic) {
        self.values[n.index()].set(lane, v);
    }

    /// Additionally classifies `n` as an input in lane `lane` with value
    /// `v` (a stuck-node fault in that machine).
    pub fn force_input_lane(&mut self, n: NodeId, lane: u32, v: Logic) {
        self.input_lanes[n.index()] |= 1u64 << lane;
        self.force_lane(n, lane, v);
    }

    /// Forces transistor `t` to conduction `c` in lane `lane` (a
    /// stuck-open/closed fault in that machine).
    pub fn force_conduction_lane(&mut self, t: TransistorId, lane: u32, c: Conduction) {
        self.forced_cond.push((t, 1u64 << lane, c));
    }

    /// Extracts the scalar value of node `n` in lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if the lane is inactive.
    #[must_use]
    pub fn lane_value(&self, n: NodeId, lane: u32) -> Logic {
        self.values[n.index()].get(lane).expect("active lane")
    }
}

impl PackedState for PackedDenseState<'_> {
    #[inline]
    fn network(&self) -> &Network {
        self.net
    }

    #[inline]
    fn lanes(&self) -> u64 {
        self.lanes
    }

    #[inline]
    fn node_state(&self, n: NodeId) -> PackedLogic {
        self.values[n.index()]
    }

    #[inline]
    fn set_node_state(&mut self, n: NodeId, lanes: u64, v: PackedLogic) {
        self.values[n.index()].overlay(v, lanes);
    }

    #[inline]
    fn is_input_lanes(&self, n: NodeId) -> u64 {
        self.input_lanes[n.index()]
    }

    fn conduction(&self, t: TransistorId) -> PackedConduction {
        let tr = self.net.transistor(t);
        let mut pc = PackedConduction::from_gate(tr.ttype, self.node_state(tr.gate), self.lanes);
        for &(ft, mask, c) in &self.forced_cond {
            if ft != t {
                continue;
            }
            pc.closed &= !mask;
            pc.maybe &= !mask;
            match c {
                Conduction::Closed => pc.closed |= mask,
                Conduction::Maybe => pc.maybe |= mask,
                Conduction::Open => {}
            }
        }
        pc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_netlist::{Drive, Size, TransistorType};

    #[test]
    fn reset_state_matches_declarations() {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::X);
        let s = net.add_storage("S", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, a, s, gnd);
        let st = DenseState::new(&net);
        assert_eq!(st.node_state(vdd), Logic::H);
        assert_eq!(st.node_state(gnd), Logic::L);
        assert_eq!(st.node_state(a), Logic::X);
        assert_eq!(st.node_state(s), Logic::X);
        assert!(st.is_input(a));
        assert!(!st.is_input(s));
    }

    #[test]
    fn conduction_tracks_gate_state() {
        let mut net = Network::new();
        let g = net.add_input("G", Logic::L);
        let a = net.add_input("A", Logic::L);
        let b = net.add_storage("B", Size::S1);
        let t = net.add_transistor(TransistorType::N, Drive::D2, g, a, b);
        let mut st = DenseState::new(&net);
        assert_eq!(st.conduction(t), Conduction::Open);
        st.force(g, Logic::H);
        assert_eq!(st.conduction(t), Conduction::Closed);
        st.force(g, Logic::X);
        assert_eq!(st.conduction(t), Conduction::Maybe);
    }

    #[test]
    fn packed_logic_roundtrip_and_masks() {
        let mut p = PackedLogic::splat(Logic::X, 0b111);
        p.set(0, Logic::H);
        p.set(1, Logic::L);
        assert_eq!(p.get(0), Some(Logic::H));
        assert_eq!(p.get(1), Some(Logic::L));
        assert_eq!(p.get(2), Some(Logic::X));
        assert_eq!(p.get(3), None);
        assert_eq!(p.exactly_h(), 0b001);
        assert_eq!(p.exactly_l(), 0b010);
        assert_eq!(p.is_x(), 0b100);
        // lub of H and L is X; lub of equal values is the value itself.
        let q = PackedLogic::splat(Logic::L, 0b011);
        let r = p.lub(q);
        assert_eq!(r.get(0), Some(Logic::X));
        assert_eq!(r.get(1), Some(Logic::L));
        assert_eq!(p.diff_mask(q) & 0b011, 0b001);
    }

    #[test]
    fn packed_overlay_touches_only_selected_lanes() {
        let mut p = PackedLogic::splat(Logic::H, 0b1111);
        p.overlay(PackedLogic::splat(Logic::L, 0b1111), 0b0110);
        assert_eq!(p.get(0), Some(Logic::H));
        assert_eq!(p.get(1), Some(Logic::L));
        assert_eq!(p.get(2), Some(Logic::L));
        assert_eq!(p.get(3), Some(Logic::H));
    }

    #[test]
    fn packed_conduction_matches_scalar_table() {
        for ttype in TransistorType::ALL {
            for v in Logic::ALL {
                let mut gate = PackedLogic::splat(Logic::X, 0b11);
                gate.set(0, v);
                let pc = PackedConduction::from_gate(ttype, gate, 0b11);
                let scalar = ttype.conduction(v);
                let bit = 1u64;
                assert_eq!(pc.closed & bit != 0, scalar == Conduction::Closed);
                assert_eq!(pc.maybe & bit != 0, scalar == Conduction::Maybe);
                assert_eq!(pc.may_conduct() & bit != 0, scalar.may_conduct());
            }
        }
    }

    #[test]
    fn packed_dense_broadcast_and_overrides() {
        let mut net = Network::new();
        let g = net.add_input("G", Logic::H);
        let a = net.add_input("A", Logic::L);
        let b = net.add_storage("B", Size::S1);
        let t = net.add_transistor(TransistorType::N, Drive::D2, g, a, b);
        let scalar = DenseState::new(&net);
        let mut p = PackedDenseState::broadcast(&scalar, 3);
        assert_eq!(p.lanes(), 0b111);
        assert_eq!(p.is_input_lanes(g), 0b111);
        assert_eq!(p.is_input_lanes(b), 0);
        assert_eq!(p.node_state(g), PackedLogic::splat(Logic::H, 0b111));
        // Lane 1 carries a stuck-at fault on B.
        p.force_input_lane(b, 1, Logic::H);
        assert_eq!(p.is_input_lanes(b), 0b010);
        assert_eq!(p.lane_value(b, 1), Logic::H);
        // Lane 2 carries a stuck-open fault on the transistor.
        p.force_conduction_lane(t, 2, Conduction::Open);
        let pc = p.conduction(t);
        assert_eq!(pc.closed, 0b011);
        assert_eq!(pc.maybe, 0);
    }
}
