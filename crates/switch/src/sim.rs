//! High-level fault-free simulation: [`LogicSim`].

use crate::engine::{Engine, EngineConfig, SettleReport};
use crate::state::{DenseState, SwitchState};
use fmossim_netlist::{Logic, Network, NodeId};

/// A convenient fault-free switch-level simulator: a dense state plus an
/// [`Engine`], with name-based helpers.
///
/// This is the MOSSIM II equivalent used to simulate the *good* circuit,
/// to compute expected outputs for test sequences, and as the baseline
/// "good circuit alone" measurement of the paper's evaluation.
///
/// # Example
///
/// ```
/// use fmossim_netlist::{Network, Logic, TransistorType, Drive, Size};
/// use fmossim_switch::LogicSim;
///
/// let mut net = Network::new();
/// let vdd = net.add_input("Vdd", Logic::H);
/// let gnd = net.add_input("Gnd", Logic::L);
/// let a = net.add_input("A", Logic::H);
/// let out = net.add_storage("OUT", Size::S1);
/// net.add_transistor(TransistorType::P, Drive::D2, a, vdd, out);
/// net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
///
/// let mut sim = LogicSim::new(&net);
/// sim.settle();
/// assert_eq!(sim.get_by_name("OUT"), Some(Logic::L));
/// ```
#[derive(Clone, Debug)]
pub struct LogicSim<'n> {
    net: &'n Network,
    state: DenseState<'n>,
    engine: Engine,
}

impl<'n> LogicSim<'n> {
    /// Creates a simulator at the reset state (inputs at their declared
    /// defaults, storage nodes at `X`) with every storage node pending
    /// evaluation; call [`LogicSim::settle`] to reach the initial
    /// steady state.
    #[must_use]
    pub fn new(net: &'n Network) -> Self {
        LogicSim::with_config(net, EngineConfig::default())
    }

    /// As [`LogicSim::new`] with an explicit engine configuration.
    #[must_use]
    pub fn with_config(net: &'n Network, config: EngineConfig) -> Self {
        let state = DenseState::new(net);
        let mut engine = Engine::with_config(net, config);
        engine.perturb_all_storage(&state);
        LogicSim { net, state, engine }
    }

    /// The network being simulated.
    #[must_use]
    pub fn network(&self) -> &'n Network {
        self.net
    }

    /// Current state of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range for the network.
    #[must_use]
    pub fn get(&self, n: NodeId) -> Logic {
        self.state.node_state(n)
    }

    /// Current state of the node called `name`, or `None` if no such
    /// node exists.
    #[must_use]
    pub fn get_by_name(&self, name: &str) -> Option<Logic> {
        self.net.find_node(name).map(|n| self.get(n))
    }

    /// Sets input node `n` to `v` and schedules the consequences (the
    /// change takes effect at the next [`LogicSim::settle`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an input node.
    pub fn set_input(&mut self, n: NodeId, v: Logic) {
        self.engine.apply_input(&mut self.state, n, v);
    }

    /// Sets the input called `name`; returns false if no such node.
    ///
    /// # Panics
    ///
    /// Panics if the node exists but is not an input node.
    pub fn set_input_by_name(&mut self, name: &str, v: Logic) -> bool {
        match self.net.find_node(name) {
            Some(n) => {
                self.set_input(n, v);
                true
            }
            None => false,
        }
    }

    /// Applies a batch of input changes and settles the network.
    pub fn step(&mut self, inputs: &[(NodeId, Logic)]) -> SettleReport {
        for &(n, v) in inputs {
            self.set_input(n, v);
        }
        self.settle()
    }

    /// Drains all pending perturbations to a stable state.
    pub fn settle(&mut self) -> SettleReport {
        self.engine.settle(&mut self.state)
    }

    /// Re-schedules every storage node and settles. On an already
    /// stable network this must change nothing — the property tests use
    /// it to check that settled states are true fixed points of the
    /// steady-state response.
    pub fn resettle_all(&mut self) -> SettleReport {
        self.engine.perturb_all_storage(&self.state);
        self.engine.settle(&mut self.state)
    }

    /// Read access to the dense state vector (indexed by node id).
    #[must_use]
    pub fn states(&self) -> &[Logic] {
        self.state.states()
    }

    /// The underlying dense state (a [`crate::SwitchState`]), e.g. for
    /// sampling into a [`crate::Trace`].
    #[must_use]
    pub fn state(&self) -> &DenseState<'n> {
        &self.state
    }

    /// Splits the simulator into its state and engine halves; used by
    /// the fault simulators, which drive the same machinery with
    /// observers and overlays.
    #[must_use]
    pub fn into_parts(self) -> (DenseState<'n>, Engine) {
        (self.state, self.engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_netlist::{Drive, Size, TransistorType};

    /// Build a CMOS NAND gate and check its truth table, including X
    /// behaviour.
    #[test]
    fn cmos_nand_truth_table() {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::L);
        let b = net.add_input("B", Logic::L);
        let out = net.add_storage("OUT", Size::S1);
        let mid = net.add_storage("MID", Size::S1);
        // Parallel p pull-ups, series n pull-downs.
        net.add_transistor(TransistorType::P, Drive::D2, a, vdd, out);
        net.add_transistor(TransistorType::P, Drive::D2, b, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, mid);
        net.add_transistor(TransistorType::N, Drive::D2, b, mid, gnd);

        let mut sim = LogicSim::new(&net);
        sim.settle();
        let cases = [
            (Logic::L, Logic::L, Logic::H),
            (Logic::L, Logic::H, Logic::H),
            (Logic::H, Logic::L, Logic::H),
            (Logic::H, Logic::H, Logic::L),
            // One X input with the other low still pulls up definitely.
            (Logic::X, Logic::L, Logic::H),
            (Logic::L, Logic::X, Logic::H),
            // X with the other high: output uncertain.
            (Logic::X, Logic::H, Logic::X),
        ];
        for (va, vb, want) in cases {
            sim.set_input(a, va);
            sim.set_input(b, vb);
            sim.settle();
            assert_eq!(sim.get(out), want, "NAND({va},{vb})");
        }
    }

    #[test]
    fn nmos_nor_truth_table() {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::L);
        let b = net.add_input("B", Logic::L);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::D, Drive::D1, out, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
        net.add_transistor(TransistorType::N, Drive::D2, b, out, gnd);

        let mut sim = LogicSim::new(&net);
        sim.settle();
        let cases = [
            (Logic::L, Logic::L, Logic::H),
            (Logic::L, Logic::H, Logic::L),
            (Logic::H, Logic::L, Logic::L),
            (Logic::H, Logic::H, Logic::L),
            (Logic::X, Logic::H, Logic::L), // one definite pulldown suffices
        ];
        for (va, vb, want) in cases {
            sim.set_input(a, va);
            sim.set_input(b, vb);
            sim.settle();
            assert_eq!(sim.get(out), want, "NOR({va},{vb})");
        }
    }

    #[test]
    fn name_helpers() {
        let mut net = Network::new();
        net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::L);
        let s = net.add_storage("S", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, a, s, gnd);
        let mut sim = LogicSim::new(&net);
        sim.settle();
        assert!(sim.set_input_by_name("A", Logic::H));
        assert!(!sim.set_input_by_name("missing", Logic::H));
        sim.settle();
        assert_eq!(sim.get_by_name("S"), Some(Logic::L));
        assert_eq!(sim.get_by_name("missing"), None);
        assert_eq!(sim.states().len(), net.num_nodes());
    }

    /// Uninitialized circuit: everything X until clocks/data arrive.
    #[test]
    fn x_initialization_resolves_after_inputs() {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::X);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::P, Drive::D2, a, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
        let mut sim = LogicSim::new(&net);
        sim.settle();
        assert_eq!(sim.get(out), Logic::X);
        sim.set_input(a, Logic::L);
        sim.settle();
        assert_eq!(sim.get(out), Logic::H);
    }
}
