//! Vicinity extraction and the steady-state solver.
//!
//! See the crate-level documentation for the algorithm description. All
//! scratch memory is owned by [`Scratch`] and reused across calls, so a
//! steady-state solve allocates nothing in the common case.

use crate::state::{PackedLogic, PackedState, SwitchState};
use fmossim_netlist::{Logic, NodeId, Strength, TransistorId};

/// Number of strength planes in a packed thermometer code — one per
/// lattice rank (λ, κ1…κ7, γ1…γ7, ω).
const PLANES: usize = Strength::NUM_RANKS;

/// Reusable scratch buffers for vicinity extraction and steady-state
/// solving, sized for a particular network (node/transistor counts).
///
/// A `Scratch` may be reused across different [`SwitchState`] views of
/// the *same* network (the concurrent fault simulator reuses one for
/// the good circuit and every faulty circuit).
#[derive(Clone, Debug)]
pub struct Scratch {
    /// Epoch-stamped membership marks, one per node.
    node_epoch: Vec<u32>,
    /// Local (within-group) index of each marked node.
    node_local: Vec<u32>,
    /// Epoch-stamped marks for visited transistors.
    t_epoch: Vec<u32>,
    current_epoch: u32,
    /// Members of the current group, in discovery order.
    pub(crate) members: Vec<NodeId>,
    /// Directed in-edges per member (indexed by local id).
    edges: Vec<Vec<Edge>>,
    /// Input-boundary source contributions per member.
    sources: Vec<Vec<SourceSig>>,
    /// Strength arrays for the five fixed-point passes.
    def_s: Vec<Strength>,
    pos: [Vec<Strength>; 2],
    defv: [Vec<Strength>; 2],
    /// Resolved steady-state values, parallel to `members`.
    pub(crate) out_values: Vec<Logic>,
    /// All transistors incident on the group (for support reporting).
    pub(crate) incident: Vec<TransistorId>,
    /// Input nodes adjacent to the group through channel edges.
    pub(crate) boundary_inputs: Vec<NodeId>,
}

/// A directed conduction edge into a member node.
#[derive(Clone, Copy, Debug)]
struct Edge {
    /// Local index of the node the signal comes *from*.
    from: u32,
    /// Attenuation of the traversed transistor.
    drive: fmossim_netlist::Drive,
    /// Whether the transistor definitely conducts (`Closed`) rather
    /// than only possibly (`Maybe`).
    definite: bool,
}

/// A boundary signal entering the group from an input node.
#[derive(Clone, Copy, Debug)]
struct SourceSig {
    /// Strength after attenuation by the boundary transistor.
    strength: Strength,
    /// The input node's value.
    value: Logic,
    /// Whether the boundary transistor definitely conducts.
    definite: bool,
}

/// The result of solving one vicinity with
/// [`Scratch::solve_group`]: members and their steady-state values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GroupOutcome {
    /// The storage nodes of the vicinity, in discovery order.
    pub members: Vec<NodeId>,
    /// The steady-state value for each member (parallel to `members`).
    pub values: Vec<Logic>,
}

impl Scratch {
    /// Creates scratch buffers for a network with the given counts.
    #[must_use]
    pub fn new(num_nodes: usize, num_transistors: usize) -> Self {
        Scratch {
            node_epoch: vec![0; num_nodes],
            node_local: vec![0; num_nodes],
            t_epoch: vec![0; num_transistors],
            current_epoch: 0,
            members: Vec::new(),
            edges: Vec::new(),
            sources: Vec::new(),
            def_s: Vec::new(),
            pos: [Vec::new(), Vec::new()],
            defv: [Vec::new(), Vec::new()],
            out_values: Vec::new(),
            incident: Vec::new(),
            boundary_inputs: Vec::new(),
        }
    }

    /// Re-fits the buffers to a network's counts, keeping every
    /// allocation that already suffices. Afterwards the scratch is
    /// indistinguishable from a fresh [`Scratch::new`] — the recycle
    /// path for drivers that rebuild simulators over the same network.
    pub fn fit(&mut self, num_nodes: usize, num_transistors: usize) {
        self.node_epoch.clear();
        self.node_epoch.resize(num_nodes, 0);
        self.node_local.clear();
        self.node_local.resize(num_nodes, 0);
        self.t_epoch.clear();
        self.t_epoch.resize(num_transistors, 0);
        self.current_epoch = 0;
    }

    /// True iff `n` belongs to the group extracted in the current epoch.
    #[inline]
    pub(crate) fn in_group(&self, n: NodeId) -> bool {
        self.node_epoch[n.index()] == self.current_epoch
    }

    /// Extracts and solves the vicinity containing `seed`, returning an
    /// owned outcome. This is the allocating convenience wrapper around
    /// the zero-allocation internals used by the
    /// [`Engine`](crate::Engine); it is public for solver-level testing
    /// and benchmarking.
    ///
    /// `static_locality` selects the pre-MOSSIM-II partitioning (whole
    /// DC-connected component) used by the locality ablation bench.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `seed` is input-classified under
    /// `st`; vicinity seeds must be storage nodes.
    pub fn solve_group<S: SwitchState>(
        &mut self,
        st: &S,
        seed: NodeId,
        static_locality: bool,
    ) -> GroupOutcome {
        let (members, values) = self.solve(st, seed, static_locality);
        GroupOutcome {
            members: members.to_vec(),
            values: values.to_vec(),
        }
    }

    /// Zero-allocation solve: extracts the vicinity of `seed` and
    /// resolves its steady state. The returned slices borrow scratch
    /// storage and are valid until the next call.
    pub(crate) fn solve<S: SwitchState>(
        &mut self,
        st: &S,
        seed: NodeId,
        static_locality: bool,
    ) -> (&[NodeId], &[Logic]) {
        self.extract(st, seed, static_locality);
        self.steady_state(st);
        (&self.members, &self.out_values)
    }

    /// Breadth-first vicinity extraction from `seed`.
    pub(crate) fn extract<S: SwitchState>(&mut self, st: &S, seed: NodeId, static_locality: bool) {
        self.current_epoch = self.current_epoch.wrapping_add(1);
        if self.current_epoch == 0 {
            // Extremely rare wraparound: clear stamps and restart at 1.
            self.node_epoch.fill(0);
            self.t_epoch.fill(0);
            self.current_epoch = 1;
        }
        self.members.clear();
        self.incident.clear();
        self.boundary_inputs.clear();
        debug_assert!(!st.is_input(seed), "vicinity seeds must be storage nodes");
        self.mark(seed);
        let net = st.network();
        let mut head = 0;
        while head < self.members.len() {
            let m = self.members[head];
            head += 1;
            for &t in net.channel_transistors(m) {
                if self.t_epoch[t.index()] == self.current_epoch {
                    continue;
                }
                self.t_epoch[t.index()] = self.current_epoch;
                self.incident.push(t);
                let cond = st.conduction(t);
                if !static_locality && !cond.may_conduct() {
                    continue;
                }
                let tr = net.transistor(t);
                let other = tr.other_end(m);
                if other == m {
                    continue; // self-loop carries no signal
                }
                if st.is_input(other) {
                    // Input nodes are never members, so reusing the node
                    // mark for dedup of the boundary list is safe.
                    if self.node_epoch[other.index()] != self.current_epoch {
                        self.node_epoch[other.index()] = self.current_epoch;
                        self.boundary_inputs.push(other);
                    }
                } else if self.node_epoch[other.index()] != self.current_epoch {
                    self.mark(other);
                }
            }
        }
        // Undo the membership stamp borrowed by boundary inputs so that
        // `in_group` answers correctly for them.
        for &b in &self.boundary_inputs {
            self.node_epoch[b.index()] = self.current_epoch.wrapping_sub(1);
        }
        // Second pass: build in-edges and boundary sources per member
        // (after extraction so local indices are final).
        let n = self.members.len();
        for v in &mut self.edges {
            v.clear();
        }
        for v in &mut self.sources {
            v.clear();
        }
        while self.edges.len() < n {
            self.edges.push(Vec::new());
        }
        while self.sources.len() < n {
            self.sources.push(Vec::new());
        }
        for li in 0..n {
            let m = self.members[li];
            for &t in net.channel_transistors(m) {
                let cond = st.conduction(t);
                if !cond.may_conduct() {
                    continue;
                }
                let definite = cond.is_closed();
                let tr = net.transistor(t);
                let other = tr.other_end(m);
                if other == m {
                    continue;
                }
                if st.is_input(other) {
                    self.sources[li].push(SourceSig {
                        strength: Strength::INPUT.through(tr.strength),
                        value: st.node_state(other),
                        definite,
                    });
                } else {
                    debug_assert!(
                        self.in_group(other),
                        "conducting neighbour must be in group"
                    );
                    self.edges[li].push(Edge {
                        from: self.node_local[other.index()],
                        drive: tr.strength,
                        definite,
                    });
                }
            }
        }
    }

    #[inline]
    fn mark(&mut self, n: NodeId) {
        self.node_epoch[n.index()] = self.current_epoch;
        self.node_local[n.index()] = u32::try_from(self.members.len()).expect("group too large");
        self.members.push(n);
    }

    /// Solves the five fixed points and resolves member values into
    /// `out_values`.
    #[allow(clippy::needless_range_loop)] // `li` indexes several parallel arrays
    pub(crate) fn steady_state<S: SwitchState>(&mut self, st: &S) {
        let n = self.members.len();
        let net = st.network();
        let resize = |v: &mut Vec<Strength>| {
            v.clear();
            v.resize(n, Strength::NONE);
        };
        resize(&mut self.def_s);
        resize(&mut self.pos[0]);
        resize(&mut self.pos[1]);
        resize(&mut self.defv[0]);
        resize(&mut self.defv[1]);

        // Pass 1: defS — definite presence. Sources: own charge (always
        // definitely present at size strength) and definite input edges.
        let mut def_s = std::mem::take(&mut self.def_s);
        for li in 0..n {
            let node = self.members[li];
            def_s[li] = Strength::from_size(net.node(node).size());
            for s in &self.sources[li] {
                if s.definite {
                    def_s[li] = def_s[li].max(s.strength);
                }
            }
        }
        self.relax(&mut def_s, /*definite_edges_only=*/ true, |_, _| true);

        // Pass 2: pos1 / pos0 — possible presence per value class.
        // A possible signal is blocked at `m` when strictly weaker than
        // the strongest definitely-present signal there.
        for (idx, want) in [(0usize, Logic::H), (1usize, Logic::L)] {
            let mut pos = std::mem::take(&mut self.pos[idx]);
            for li in 0..n {
                let node = self.members[li];
                let old = st.node_state(node);
                if old == want || old == Logic::X {
                    pos[li] = Strength::from_size(net.node(node).size());
                }
                for s in &self.sources[li] {
                    if s.value == want || s.value == Logic::X {
                        pos[li] = pos[li].max(s.strength);
                    }
                }
            }
            self.relax(
                &mut pos,
                /*definite_edges_only=*/ false,
                |str_, from| str_[from as usize] >= def_s[from as usize],
            );
            self.pos[idx] = pos;
        }

        // Pass 3: def1 / def0 — definite winners of a definite value.
        // Propagates through `m` only when nothing possibly stronger
        // exists at `m` (otherwise its onward presence is not certain).
        let (pos1, pos0) = (&self.pos[0], &self.pos[1]);
        for (idx, want) in [(0usize, Logic::H), (1usize, Logic::L)] {
            let mut defv = std::mem::take(&mut self.defv[idx]);
            for li in 0..n {
                let node = self.members[li];
                if st.node_state(node) == want {
                    defv[li] = Strength::from_size(net.node(node).size());
                }
                for s in &self.sources[li] {
                    if s.definite && s.value == want {
                        defv[li] = defv[li].max(s.strength);
                    }
                }
            }
            relax_edges(&self.edges[..n], &mut defv, true, |str_, from| {
                let f = from as usize;
                str_[f] >= pos1[f].max(pos0[f])
            });
            self.defv[idx] = defv;
        }
        self.def_s = def_s;

        // Resolution: 1 iff def1 > pos0; 0 iff def0 > pos1; else X.
        self.out_values.clear();
        for li in 0..n {
            let one = self.defv[0][li] > self.pos[1][li];
            let zero = self.defv[1][li] > self.pos[0][li];
            debug_assert!(!(one && zero), "resolution rule cannot pick both values");
            self.out_values.push(if one {
                Logic::H
            } else if zero {
                Logic::L
            } else {
                Logic::X
            });
        }
    }

    /// Monotone relaxation to the least fixed point of
    /// `s[v] = max(init[v], max over in-edges (u→v): eligible(u) ? min(s[u], drive) : λ)`.
    fn relax<F>(&self, strengths: &mut [Strength], definite_edges_only: bool, eligible: F)
    where
        F: Fn(&[Strength], u32) -> bool,
    {
        relax_edges(
            &self.edges[..strengths.len()],
            strengths,
            definite_edges_only,
            eligible,
        );
    }
}

/// Sweep-to-fixpoint relaxation. Strengths only grow and the lattice is
/// finite, so this terminates; vicinities are small (a handful of nodes
/// in typical circuits), so repeated sweeps beat the bookkeeping cost
/// of a worklist.
fn relax_edges<F>(
    edges: &[Vec<Edge>],
    strengths: &mut [Strength],
    definite_edges_only: bool,
    eligible: F,
) where
    F: Fn(&[Strength], u32) -> bool,
{
    loop {
        let mut changed = false;
        for v in 0..strengths.len() {
            let mut best = strengths[v];
            for e in &edges[v] {
                if definite_edges_only && !e.definite {
                    continue;
                }
                if !eligible(strengths, e.from) {
                    continue;
                }
                best = best.max(strengths[e.from as usize].through(e.drive));
            }
            if best > strengths[v] {
                strengths[v] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

/// Per-lane strengths as a thermometer code over the lattice ranks.
///
/// `ge[r]` holds the mask of lanes whose strength rank is at least `r`
/// (see [`Strength::rank`]); `ge[0]` is unused and always zero so that
/// plane-wise comparisons can sweep all [`PLANES`] words uniformly.
/// Strength comparison, attenuation (`min` with a drive rank), and
/// `max`-merge all become a handful of bitwise plane operations, which
/// is what lets one relaxation sweep settle up to 64 fault machines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Ranks {
    ge: [u64; PLANES],
}

/// Plane selectors for attenuation: `RANK_SELECTORS[d][r]` is all-ones
/// iff `1 <= r <= d`, so ANDing a source's planes with row `d` computes
/// `min(strength, rank d)` for every lane at once.
#[cfg(feature = "simd")]
const RANK_SELECTORS: [[u64; PLANES]; PLANES] = {
    let mut t = [[0u64; PLANES]; PLANES];
    let mut d = 0;
    while d < PLANES {
        let mut r = 1;
        while r <= d {
            t[d][r] = u64::MAX;
            r += 1;
        }
        d += 1;
    }
    t
};

impl Ranks {
    const EMPTY: Ranks = Ranks { ge: [0; PLANES] };

    /// Raises the lanes in `mask` to at least `rank` (a `max` with a
    /// uniform strength).
    #[inline]
    fn raise(&mut self, mask: u64, rank: usize) {
        for r in 1..=rank {
            self.ge[r] |= mask;
        }
    }

    /// Mask of lanes whose strength rank is at least `rank`.
    /// `rank` must be nonzero (every lane is trivially ≥ λ).
    #[inline]
    fn at_least(&self, rank: usize) -> u64 {
        debug_assert!(rank > 0);
        self.ge[rank]
    }

    /// Mask of lanes where `self`'s strength is strictly greater than
    /// `other`'s: some plane is set in `self` but not in `other`.
    #[cfg(not(feature = "simd"))]
    #[inline]
    fn gt(&self, other: &Ranks) -> u64 {
        let mut acc = 0u64;
        for r in 1..PLANES {
            acc |= self.ge[r] & !other.ge[r];
        }
        acc
    }

    /// Mask of lanes where `self`'s strength is strictly greater than
    /// `other`'s: some plane is set in `self` but not in `other`.
    #[cfg(feature = "simd")]
    #[inline]
    fn gt(&self, other: &Ranks) -> u64 {
        use std::simd::prelude::*;
        let mut acc = u64x8::splat(0);
        let mut o = 0;
        while o < PLANES {
            acc |= u64x8::from_slice(&self.ge[o..o + 8]) & !u64x8::from_slice(&other.ge[o..o + 8]);
            o += 8;
        }
        acc.reduce_or()
    }

    /// Merges `min(src, rank max_rank)` into `self` for the lanes in
    /// `mask` (attenuation through a drive followed by `max`). Returns
    /// whether any plane changed.
    #[cfg(not(feature = "simd"))]
    #[inline]
    fn merge_through(&mut self, src: &Ranks, max_rank: usize, mask: u64) -> bool {
        let mut changed = 0u64;
        for r in 1..=max_rank {
            let add = src.ge[r] & mask & !self.ge[r];
            self.ge[r] |= add;
            changed |= add;
        }
        changed != 0
    }

    /// Merges `min(src, rank max_rank)` into `self` for the lanes in
    /// `mask` (attenuation through a drive followed by `max`). Returns
    /// whether any plane changed.
    #[cfg(feature = "simd")]
    #[inline]
    fn merge_through(&mut self, src: &Ranks, max_rank: usize, mask: u64) -> bool {
        use std::simd::prelude::*;
        let sel = &RANK_SELECTORS[max_rank];
        let m = u64x8::splat(mask);
        let mut changed = u64x8::splat(0);
        let mut o = 0;
        while o < PLANES {
            let cur = u64x8::from_slice(&self.ge[o..o + 8]);
            let add =
                u64x8::from_slice(&src.ge[o..o + 8]) & u64x8::from_slice(&sel[o..o + 8]) & m & !cur;
            changed |= add;
            (cur | add).copy_to_slice(&mut self.ge[o..o + 8]);
            o += 8;
        }
        changed.reduce_or() != 0
    }
}

/// A boundary signal entering a packed group from an input node, with a
/// per-lane value (input *values* may differ across fault machines even
/// though strength and definiteness are lane-uniform after eviction).
#[derive(Clone, Copy, Debug)]
struct PackedSource {
    /// Strength after attenuation by the boundary transistor.
    strength: Strength,
    /// The input node's per-lane value.
    value: PackedLogic,
    /// Whether the boundary transistor definitely conducts.
    definite: bool,
}

/// The result of solving one vicinity for up to 64 fault machines with
/// [`PackedScratch::solve_group_packed`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PackedOutcome {
    /// The storage nodes of the vicinity, in discovery order.
    pub members: Vec<NodeId>,
    /// The per-lane steady-state value of each member (parallel to
    /// `members`; only the bits in `lanes` are meaningful).
    pub values: Vec<PackedLogic>,
    /// The lanes actually solved by this pass.
    pub lanes: u64,
    /// Lanes evicted because their vicinity diverged (different
    /// conduction or input classification); re-solve these from the
    /// same seed — typically through the scalar path or another packed
    /// pass.
    pub evicted: u64,
}

/// Reusable scratch buffers for the bit-parallel (PPSFP-style) group
/// solver: the packed sibling of [`Scratch`].
///
/// One packed solve settles a vicinity for every lane (fault machine)
/// whose support coincides. Where the machines disagree about the
/// *structure* of the group — a transistor conducts in one lane but not
/// another, or a node is input-classified in only some lanes — the
/// minority lanes are evicted mid-extraction and reported back for a
/// scalar (or later packed) re-solve; the surviving lanes share one
/// lane-uniform vicinity and settle together in bitwise plane
/// operations.
#[derive(Clone, Debug)]
pub struct PackedScratch {
    node_epoch: Vec<u32>,
    node_local: Vec<u32>,
    t_epoch: Vec<u32>,
    current_epoch: u32,
    /// Members of the current group, in discovery order.
    pub(crate) members: Vec<NodeId>,
    edges: Vec<Vec<Edge>>,
    sources: Vec<Vec<PackedSource>>,
    /// Definite-presence strengths (lane-uniform, hence scalar).
    def_s: Vec<Strength>,
    pos: [Vec<Ranks>; 2],
    defv: [Vec<Ranks>; 2],
    /// Resolved per-lane values, parallel to `members`.
    pub(crate) out_values: Vec<PackedLogic>,
    /// Lanes kept by the current extraction.
    pub(crate) cur: u64,
    /// Lanes evicted by the current extraction.
    pub(crate) evicted: u64,
}

impl PackedScratch {
    /// Creates packed scratch buffers for a network with the given
    /// counts.
    #[must_use]
    pub fn new(num_nodes: usize, num_transistors: usize) -> Self {
        PackedScratch {
            node_epoch: vec![0; num_nodes],
            node_local: vec![0; num_nodes],
            t_epoch: vec![0; num_transistors],
            current_epoch: 0,
            members: Vec::new(),
            edges: Vec::new(),
            sources: Vec::new(),
            def_s: Vec::new(),
            pos: [Vec::new(), Vec::new()],
            defv: [Vec::new(), Vec::new()],
            out_values: Vec::new(),
            cur: 0,
            evicted: 0,
        }
    }

    /// True iff `n` belongs to the group extracted in the current epoch.
    #[inline]
    pub(crate) fn in_group(&self, n: NodeId) -> bool {
        self.node_epoch[n.index()] == self.current_epoch
    }

    /// Extracts and solves the vicinity of `seed` for the machines in
    /// `active`, returning an owned outcome. Up to 64 machines settle
    /// in one pass; machines whose support diverges are evicted (see
    /// [`PackedOutcome::evicted`]) and must be re-solved from the same
    /// seed.
    ///
    /// This is the allocating convenience wrapper around the
    /// zero-allocation internals used by the
    /// [`PackedEngine`](crate::PackedEngine).
    ///
    /// # Panics
    ///
    /// Panics if `active` is empty, and (in debug builds) if `seed` is
    /// input-classified in any active lane.
    pub fn solve_group_packed<P: PackedState>(
        &mut self,
        st: &P,
        seed: NodeId,
        active: u64,
    ) -> PackedOutcome {
        let (kept, evicted) = self.solve(st, seed, active);
        PackedOutcome {
            members: self.members.clone(),
            values: self.out_values.clone(),
            lanes: kept,
            evicted,
        }
    }

    /// Zero-allocation packed solve; members and values stay borrowable
    /// from scratch storage until the next call. Returns
    /// `(kept, evicted)` lane masks.
    pub(crate) fn solve<P: PackedState>(
        &mut self,
        st: &P,
        seed: NodeId,
        active: u64,
    ) -> (u64, u64) {
        assert!(active != 0, "packed solve needs at least one active lane");
        debug_assert_eq!(
            active & st.is_input_lanes(seed),
            0,
            "vicinity seeds must be storage nodes in every active lane"
        );
        self.extract(st, seed, active);
        self.steady_state(st);
        (self.cur, self.evicted)
    }

    /// Breadth-first vicinity extraction from `seed`, evicting lanes
    /// whose structure diverges from the majority class.
    ///
    /// Uniformity rule: whenever the active lanes disagree on a
    /// transistor's conduction class (open / closed / maybe) or on a
    /// node's input classification, the class containing the lowest
    /// active lane is kept and the others are evicted. Shrinking the
    /// lane set mid-walk is sound because every classification already
    /// made is uniform over a superset of the surviving lanes.
    fn extract<P: PackedState>(&mut self, st: &P, seed: NodeId, active: u64) {
        self.current_epoch = self.current_epoch.wrapping_add(1);
        if self.current_epoch == 0 {
            self.node_epoch.fill(0);
            self.t_epoch.fill(0);
            self.current_epoch = 1;
        }
        self.members.clear();
        let mut cur = active;
        self.evicted = 0;
        self.mark(seed);
        let net = st.network();
        let mut head = 0;
        while head < self.members.len() {
            let m = self.members[head];
            head += 1;
            for &t in net.channel_transistors(m) {
                if self.t_epoch[t.index()] == self.current_epoch {
                    continue;
                }
                self.t_epoch[t.index()] = self.current_epoch;
                let pc = st.conduction(t);
                let closed = pc.closed & cur;
                let maybe = pc.maybe & cur;
                let open = cur & !closed & !maybe;
                let lowest = cur & cur.wrapping_neg();
                let keep = if closed & lowest != 0 {
                    closed
                } else if maybe & lowest != 0 {
                    maybe
                } else {
                    open
                };
                if keep != cur {
                    self.evicted |= cur & !keep;
                    cur = keep;
                }
                if open & cur != 0 {
                    continue; // surviving class is open: no signal path
                }
                let tr = net.transistor(t);
                let other = tr.other_end(m);
                if other == m {
                    continue; // self-loop carries no signal
                }
                let mut inp = st.is_input_lanes(other) & cur;
                if inp != 0 && inp != cur {
                    let keep = if inp & (cur & cur.wrapping_neg()) != 0 {
                        inp
                    } else {
                        cur & !inp
                    };
                    self.evicted |= cur & !keep;
                    cur = keep;
                    inp &= cur;
                }
                if inp == 0 && self.node_epoch[other.index()] != self.current_epoch {
                    self.mark(other);
                }
            }
        }
        self.cur = cur;
        // Second pass: build in-edges and boundary sources per member.
        // Eviction guarantees every incident transistor and neighbour is
        // lane-uniform over `cur`, so edges carry scalar structure and
        // only source *values* stay per-lane.
        let n = self.members.len();
        for v in &mut self.edges {
            v.clear();
        }
        for v in &mut self.sources {
            v.clear();
        }
        while self.edges.len() < n {
            self.edges.push(Vec::new());
        }
        while self.sources.len() < n {
            self.sources.push(Vec::new());
        }
        for li in 0..n {
            let m = self.members[li];
            for &t in net.channel_transistors(m) {
                let pc = st.conduction(t);
                let may = pc.may_conduct() & cur;
                if may == 0 {
                    continue;
                }
                debug_assert_eq!(may, cur, "conduction must be lane-uniform after eviction");
                let definite = pc.closed & cur == cur;
                let tr = net.transistor(t);
                let other = tr.other_end(m);
                if other == m {
                    continue;
                }
                let inp = st.is_input_lanes(other) & cur;
                if inp == cur {
                    self.sources[li].push(PackedSource {
                        strength: Strength::INPUT.through(tr.strength),
                        value: st.node_state(other).masked(cur),
                        definite,
                    });
                } else {
                    debug_assert_eq!(inp, 0, "input class must be lane-uniform after eviction");
                    debug_assert!(
                        self.in_group(other),
                        "conducting neighbour must be in group"
                    );
                    self.edges[li].push(Edge {
                        from: self.node_local[other.index()],
                        drive: tr.strength,
                        definite,
                    });
                }
            }
        }
    }

    #[inline]
    fn mark(&mut self, n: NodeId) {
        self.node_epoch[n.index()] = self.current_epoch;
        self.node_local[n.index()] = u32::try_from(self.members.len()).expect("group too large");
        self.members.push(n);
    }

    /// Solves the five fixed points for every surviving lane at once and
    /// resolves per-lane member values into `out_values`.
    ///
    /// Pass 1 (defS) is lane-uniform — it depends only on node sizes and
    /// the structure eviction just made uniform — so it runs on scalar
    /// [`Strength`] values. Passes 2 and 3 depend on per-lane node
    /// values and run on thermometer [`Ranks`] planes.
    #[allow(clippy::needless_range_loop)] // `li` indexes several parallel arrays
    fn steady_state<P: PackedState>(&mut self, st: &P) {
        let n = self.members.len();
        let net = st.network();
        let lanes = self.cur;
        self.def_s.clear();
        self.def_s.resize(n, Strength::NONE);
        for arr in [&mut self.pos, &mut self.defv] {
            for v in arr.iter_mut() {
                v.clear();
                v.resize(n, Ranks::EMPTY);
            }
        }

        // Pass 1: defS — definite presence (lane-uniform, scalar).
        let mut def_s = std::mem::take(&mut self.def_s);
        for li in 0..n {
            let node = self.members[li];
            def_s[li] = Strength::from_size(net.node(node).size());
            for s in &self.sources[li] {
                if s.definite {
                    def_s[li] = def_s[li].max(s.strength);
                }
            }
        }
        relax_edges(&self.edges[..n], &mut def_s, true, |_, _| true);

        // Pass 2: pos1 / pos0 — possible presence per value class.
        // `admits(want)` on the two-plane encoding is just the plane
        // bit: `h` admits H, `l` admits L.
        for (idx, want_h) in [(0usize, true), (1usize, false)] {
            let mut pos = std::mem::take(&mut self.pos[idx]);
            for li in 0..n {
                let node = self.members[li];
                let old = st.node_state(node);
                let admit = if want_h { old.h } else { old.l };
                let size_rank = Strength::from_size(net.node(node).size()).rank();
                pos[li].raise(admit & lanes, size_rank);
                for s in &self.sources[li] {
                    let adm = if want_h { s.value.h } else { s.value.l };
                    pos[li].raise(adm & lanes, s.strength.rank());
                }
            }
            packed_relax(&self.edges[..n], &mut pos, false, lanes, |ranks, from| {
                let d = def_s[from as usize].rank();
                if d == 0 {
                    lanes
                } else {
                    ranks[from as usize].at_least(d)
                }
            });
            self.pos[idx] = pos;
        }

        // Pass 3: def1 / def0 — definite winners of a definite value.
        let (pos1, pos0) = {
            let (a, b) = self.pos.split_at(1);
            (&a[0], &b[0])
        };
        for (idx, want_h) in [(0usize, true), (1usize, false)] {
            let mut defv = std::mem::take(&mut self.defv[idx]);
            for li in 0..n {
                let node = self.members[li];
                let old = st.node_state(node);
                let exact = if want_h {
                    old.exactly_h()
                } else {
                    old.exactly_l()
                };
                let size_rank = Strength::from_size(net.node(node).size()).rank();
                defv[li].raise(exact & lanes, size_rank);
                for s in &self.sources[li] {
                    if !s.definite {
                        continue;
                    }
                    let exact = if want_h {
                        s.value.exactly_h()
                    } else {
                        s.value.exactly_l()
                    };
                    defv[li].raise(exact & lanes, s.strength.rank());
                }
            }
            packed_relax(&self.edges[..n], &mut defv, true, lanes, |ranks, from| {
                let f = from as usize;
                lanes & !pos1[f].gt(&ranks[f]) & !pos0[f].gt(&ranks[f])
            });
            self.defv[idx] = defv;
        }
        self.def_s = def_s;

        // Resolution per lane: 1 iff def1 > pos0; 0 iff def0 > pos1.
        self.out_values.clear();
        for li in 0..n {
            let one = self.defv[0][li].gt(&self.pos[1][li]) & lanes;
            let zero = self.defv[1][li].gt(&self.pos[0][li]) & lanes;
            debug_assert_eq!(one & zero, 0, "resolution rule cannot pick both values");
            self.out_values.push(PackedLogic {
                h: lanes & !zero,
                l: lanes & !one,
            });
        }
    }
}

/// Packed sweep-to-fixpoint relaxation: the per-lane analogue of
/// [`relax_edges`]. `eligible` returns the mask of lanes in which the
/// upstream node may propagate; strengths only grow per lane and the
/// lattice is finite, so this terminates at the same least fixed point
/// the scalar relaxation reaches lane by lane.
fn packed_relax<F>(
    edges: &[Vec<Edge>],
    ranks: &mut [Ranks],
    definite_edges_only: bool,
    lanes: u64,
    eligible: F,
) where
    F: Fn(&[Ranks], u32) -> u64,
{
    loop {
        let mut changed = false;
        for v in 0..ranks.len() {
            for &e in &edges[v] {
                if definite_edges_only && !e.definite {
                    continue;
                }
                let elig = eligible(ranks, e.from) & lanes;
                if elig == 0 {
                    continue;
                }
                let src = ranks[e.from as usize];
                let d = Strength::from_drive(e.drive).rank();
                if ranks[v].merge_through(&src, d, elig) {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::DenseState;
    use fmossim_netlist::{Drive, Network, Size, TransistorType};

    /// Solve the group containing `seed` and return (members, values).
    fn run(net: &Network, st: &DenseState<'_>, seed: NodeId) -> GroupOutcome {
        let mut scr = Scratch::new(net.num_nodes(), net.num_transistors());
        scr.solve_group(st, seed, false)
    }

    fn value_of(out: &GroupOutcome, n: NodeId) -> Logic {
        let i = out
            .members
            .iter()
            .position(|&m| m == n)
            .expect("node in group");
        out.values[i]
    }

    #[test]
    fn nmos_inverter_both_ways() {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::H);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::D, Drive::D1, out, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);

        let mut st = DenseState::new(&net);
        // A = 1 → pulldown wins over weak pullup.
        assert_eq!(value_of(&run(&net, &st, out), out), Logic::L);
        // A = 0 → only the pullup drives.
        st.force(a, Logic::L);
        assert_eq!(value_of(&run(&net, &st, out), out), Logic::H);
        // A = X → the pulldown may fight the pullup: X.
        st.force(a, Logic::X);
        assert_eq!(value_of(&run(&net, &st, out), out), Logic::X);
    }

    #[test]
    fn charge_sharing_big_node_wins() {
        let mut net = Network::new();
        let clk = net.add_input("CLK", Logic::H);
        let bus = net.add_storage("BUS", Size::S2);
        let s = net.add_storage("S", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, clk, bus, s);
        let mut st = DenseState::new(&net);
        st.force(bus, Logic::H);
        st.force(s, Logic::L);
        let out = run(&net, &st, s);
        assert_eq!(value_of(&out, bus), Logic::H);
        assert_eq!(value_of(&out, s), Logic::H);
    }

    #[test]
    fn charge_sharing_equal_sizes_gives_x() {
        let mut net = Network::new();
        let clk = net.add_input("CLK", Logic::H);
        let a = net.add_storage("A1", Size::S1);
        let b = net.add_storage("B1", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, clk, a, b);
        let mut st = DenseState::new(&net);
        st.force(a, Logic::H);
        st.force(b, Logic::L);
        let out = run(&net, &st, a);
        assert_eq!(value_of(&out, a), Logic::X);
        assert_eq!(value_of(&out, b), Logic::X);
    }

    #[test]
    fn isolated_node_keeps_charge() {
        let mut net = Network::new();
        let clk = net.add_input("CLK", Logic::L);
        let a = net.add_storage("A1", Size::S1);
        let b = net.add_storage("B1", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, clk, a, b);
        let mut st = DenseState::new(&net);
        st.force(a, Logic::H);
        let out = run(&net, &st, a);
        // CLK=0 isolates A: group is {A} alone, charge retained.
        assert_eq!(out.members.len(), 1);
        assert_eq!(value_of(&out, a), Logic::H);
    }

    #[test]
    fn short_circuit_through_pass_gates_gives_x() {
        // Two strong inputs of opposite value connected through
        // conducting transistors to a middle node: X.
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let clk = net.add_input("CLK", Logic::H);
        let mid = net.add_storage("MID", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, clk, vdd, mid);
        net.add_transistor(TransistorType::N, Drive::D2, clk, mid, gnd);
        let st = DenseState::new(&net);
        assert_eq!(value_of(&run(&net, &st, mid), mid), Logic::X);
    }

    #[test]
    fn ratioed_nand_pulls_low_through_series_stack() {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::H);
        let b = net.add_input("B", Logic::H);
        let out = net.add_storage("OUT", Size::S1);
        let mid = net.add_storage("MID", Size::S1);
        net.add_transistor(TransistorType::D, Drive::D1, out, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, mid);
        net.add_transistor(TransistorType::N, Drive::D2, b, mid, gnd);
        let mut st = DenseState::new(&net);
        let o = run(&net, &st, out);
        assert_eq!(value_of(&o, out), Logic::L);
        assert_eq!(value_of(&o, mid), Logic::L);
        // B low: output pulls high through the pullup; mid charges high
        // through the series transistor.
        st.force(b, Logic::L);
        let o = run(&net, &st, out);
        assert_eq!(value_of(&o, out), Logic::H);
        assert_eq!(value_of(&o, mid), Logic::H);
    }

    #[test]
    fn precharged_bus_discharge_depends_on_cell_value() {
        // 3T-DRAM read path: RBL(κ2,H) -t_rs(closed)- mid -t_cell(gate=S)- Gnd
        let mut net = Network::new();
        let gnd = net.add_input("Gnd", Logic::L);
        let rs = net.add_input("RS", Logic::H);
        let cell = net.add_storage("CELL", Size::S1);
        let rbl = net.add_storage("RBL", Size::S2);
        let mid = net.add_storage("MID", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, rs, rbl, mid);
        net.add_transistor(TransistorType::N, Drive::D2, cell, mid, gnd);

        let mut st = DenseState::new(&net);
        st.force(rbl, Logic::H);
        st.force(cell, Logic::H); // cell stores 1 → bus discharges
        let o = run(&net, &st, rbl);
        assert_eq!(value_of(&o, rbl), Logic::L);

        st.force(rbl, Logic::H);
        st.force(cell, Logic::L); // cell stores 0 → bus keeps precharge
        st.force(mid, Logic::L);
        let o = run(&net, &st, rbl);
        assert_eq!(value_of(&o, rbl), Logic::H);

        st.force(rbl, Logic::H);
        st.force(cell, Logic::X); // unknown cell → bus may discharge
        let o = run(&net, &st, rbl);
        assert_eq!(value_of(&o, rbl), Logic::X);
    }

    #[test]
    fn x_input_keeps_definite_when_harmless() {
        // A node driven high through a closed transistor is 1 even if an
        // unrelated X-gated transistor merely *might* connect it to
        // another high source.
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let vdd2 = net.add_input("Vdd2", Logic::H);
        let en = net.add_input("EN", Logic::H);
        let maybe = net.add_input("MAYBE", Logic::X);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, en, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, maybe, vdd2, out);
        let st = DenseState::new(&net);
        assert_eq!(value_of(&run(&net, &st, out), out), Logic::H);
    }

    #[test]
    fn x_gated_path_to_opposite_rail_gives_x() {
        // As above but the uncertain path leads to ground: the node may
        // or may not be shorted low → X.
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let en = net.add_input("EN", Logic::H);
        let maybe = net.add_input("MAYBE", Logic::X);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, en, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, maybe, out, gnd);
        let st = DenseState::new(&net);
        assert_eq!(value_of(&run(&net, &st, out), out), Logic::X);
    }

    #[test]
    fn weak_charge_does_not_corrupt_strong_drive() {
        // A driven node connected through a closed pass gate to a stale
        // charge of opposite value: drive wins, charge node follows.
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let en = net.add_input("EN", Logic::H);
        let clk = net.add_input("CLK", Logic::H);
        let a = net.add_storage("A1", Size::S1);
        let b = net.add_storage("B1", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, en, vdd, a);
        net.add_transistor(TransistorType::N, Drive::D2, clk, a, b);
        let mut st = DenseState::new(&net);
        st.force(b, Logic::L);
        let o = run(&net, &st, a);
        assert_eq!(value_of(&o, a), Logic::H);
        assert_eq!(value_of(&o, b), Logic::H);
    }

    #[test]
    fn static_locality_extracts_whole_component() {
        let mut net = Network::new();
        let clk = net.add_input("CLK", Logic::L); // open transistor
        let a = net.add_storage("A1", Size::S1);
        let b = net.add_storage("B1", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, clk, a, b);
        let st = DenseState::new(&net);
        let mut scr = Scratch::new(net.num_nodes(), net.num_transistors());
        scr.extract(&st, a, false);
        assert_eq!(
            scr.members.len(),
            1,
            "dynamic locality stops at open transistor"
        );
        scr.extract(&st, a, true);
        assert_eq!(
            scr.members.len(),
            2,
            "static locality spans the DC component"
        );
    }

    #[test]
    fn static_locality_same_values_as_dynamic() {
        // The ablation mode must not change results, only group sizes.
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::H);
        let out = net.add_storage("OUT", Size::S1);
        let far = net.add_storage("FAR", Size::S1);
        net.add_transistor(TransistorType::D, Drive::D1, out, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
        // `far` is connected to OUT through an open transistor.
        let off = net.add_input("OFF", Logic::L);
        net.add_transistor(TransistorType::N, Drive::D2, off, out, far);
        let mut st = DenseState::new(&net);
        st.force(far, Logic::H);
        let mut scr = Scratch::new(net.num_nodes(), net.num_transistors());
        let dynamic = scr.solve_group(&st, out, false);
        let static_ = scr.solve_group(&st, out, true);
        assert_eq!(value_of(&dynamic, out), Logic::L);
        assert_eq!(value_of(&static_, out), Logic::L);
        // In static mode `far` is a member but keeps its charge.
        assert_eq!(value_of(&static_, far), Logic::H);
    }

    #[test]
    fn boundary_inputs_are_reported() {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let en = net.add_input("EN", Logic::H);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, en, vdd, out);
        let st = DenseState::new(&net);
        let mut scr = Scratch::new(net.num_nodes(), net.num_transistors());
        scr.extract(&st, out, false);
        assert_eq!(scr.boundary_inputs, vec![vdd]);
        assert_eq!(scr.incident.len(), 1);
        assert!(scr.in_group(out));
        assert!(!scr.in_group(vdd));
    }

    #[test]
    fn fault_strength_short_overrides_functional_driver() {
        // A γ7 "fault transistor" shorting a driven-high node to ground
        // wins against the γ2 functional driver — the paper's bridge
        // fault injection mechanism.
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let en = net.add_input("EN", Logic::H);
        let fault_en = net.add_input("FAULT", Logic::H);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, en, vdd, out);
        net.add_transistor(TransistorType::N, Drive::FAULT, fault_en, out, gnd);
        let st = DenseState::new(&net);
        assert_eq!(value_of(&run(&net, &st, out), out), Logic::L);
    }

    // ---- bit-parallel (packed) solver ----

    use crate::state::{PackedDenseState, PackedState};
    use std::collections::HashMap;

    /// Runs the packed solver to completion for every lane in `active`:
    /// evicted lanes re-enter from the same seed until none remain.
    /// Returns the per-(node, lane) values and the number of passes.
    fn packed_solve_all(
        net: &Network,
        st: &PackedDenseState<'_>,
        seed: NodeId,
        active: u64,
    ) -> (HashMap<(NodeId, u32), Logic>, u32) {
        let mut scr = PackedScratch::new(net.num_nodes(), net.num_transistors());
        let mut out = HashMap::new();
        let mut pending = active;
        let mut passes = 0;
        while pending != 0 {
            let o = scr.solve_group_packed(st, seed, pending);
            passes += 1;
            assert_eq!(o.lanes & o.evicted, 0);
            assert_eq!(o.lanes | o.evicted, pending);
            for (mi, &m) in o.members.iter().enumerate() {
                let mut lanes = o.lanes;
                while lanes != 0 {
                    let lane = lanes.trailing_zeros();
                    lanes &= lanes - 1;
                    let prev = out.insert((m, lane), o.values[mi].get(lane).unwrap());
                    assert!(prev.is_none(), "each lane solved exactly once per node");
                }
            }
            pending = o.evicted;
            assert!(passes <= 64, "eviction must make progress");
        }
        (out, passes)
    }

    /// Differential check: per-lane forces applied to a broadcast packed
    /// state must settle to exactly the per-lane scalar solution (same
    /// member sets, same values).
    fn diff_check(net: &Network, seed: NodeId, lane_forces: &[Vec<(NodeId, Logic)>]) {
        let base = DenseState::new(net);
        let mut packed =
            PackedDenseState::broadcast(&base, u32::try_from(lane_forces.len()).unwrap());
        for (lane, forces) in lane_forces.iter().enumerate() {
            for &(n, v) in forces {
                packed.force_lane(n, u32::try_from(lane).unwrap(), v);
            }
        }
        let (got, _passes) = packed_solve_all(net, &packed, seed, packed.lanes());
        for (lane, forces) in lane_forces.iter().enumerate() {
            let lane = u32::try_from(lane).unwrap();
            let mut st = DenseState::new(net);
            for &(n, v) in forces {
                st.force(n, v);
            }
            let mut scr = Scratch::new(net.num_nodes(), net.num_transistors());
            let o = scr.solve_group(&st, seed, false);
            for (i, &m) in o.members.iter().enumerate() {
                assert_eq!(
                    got.get(&(m, lane)).copied(),
                    Some(o.values[i]),
                    "lane {lane} node {i}"
                );
            }
            let solved = got.keys().filter(|&&(_, l)| l == lane).count();
            assert_eq!(solved, o.members.len(), "lane {lane} member set");
        }
    }

    fn inverter() -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::H);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::D, Drive::D1, out, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
        (net, a, out)
    }

    #[test]
    fn packed_identical_lanes_solve_in_one_pass() {
        let (net, _a, out) = inverter();
        let st = DenseState::new(&net);
        let packed = PackedDenseState::broadcast(&st, 64);
        let (got, passes) = packed_solve_all(&net, &packed, out, packed.lanes());
        assert_eq!(passes, 1);
        for lane in 0..64 {
            assert_eq!(got.get(&(out, lane)).copied(), Some(Logic::L));
        }
    }

    #[test]
    fn packed_inverter_per_lane_gate_values_evict_and_match_scalar() {
        // The pulldown gate differs per lane (H / L / X), so conduction
        // classes diverge: lanes settle in three eviction passes, each
        // bit-identical to the scalar solve.
        let (net, a, out) = inverter();
        diff_check(
            &net,
            out,
            &[
                vec![(a, Logic::H)],
                vec![(a, Logic::L)],
                vec![(a, Logic::X)],
            ],
        );
        // Count the passes explicitly: three conduction classes.
        let base = DenseState::new(&net);
        let mut packed = PackedDenseState::broadcast(&base, 3);
        packed.force_lane(a, 1, Logic::L);
        packed.force_lane(a, 2, Logic::X);
        let (_, passes) = packed_solve_all(&net, &packed, out, packed.lanes());
        assert_eq!(passes, 3);
    }

    #[test]
    fn packed_charge_sharing_per_lane_initial_values() {
        let mut net = Network::new();
        let clk = net.add_input("CLK", Logic::H);
        let bus = net.add_storage("BUS", Size::S2);
        let s = net.add_storage("S", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, clk, bus, s);
        // Conduction is lane-uniform (CLK identical), so all four lanes
        // settle in one pass despite different charge states.
        diff_check(
            &net,
            s,
            &[
                vec![(bus, Logic::H), (s, Logic::L)],
                vec![(bus, Logic::L), (s, Logic::H)],
                vec![(bus, Logic::H), (s, Logic::H)],
                vec![(bus, Logic::X), (s, Logic::L)],
            ],
        );
    }

    #[test]
    fn packed_ratioed_nand_mixed_lane_inputs() {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::H);
        let b = net.add_input("B", Logic::H);
        let out = net.add_storage("OUT", Size::S1);
        let mid = net.add_storage("MID", Size::S1);
        net.add_transistor(TransistorType::D, Drive::D1, out, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, mid);
        net.add_transistor(TransistorType::N, Drive::D2, b, mid, gnd);
        diff_check(
            &net,
            out,
            &[
                vec![],
                vec![(b, Logic::L)],
                vec![(a, Logic::L)],
                vec![(a, Logic::X), (b, Logic::H)],
                vec![(b, Logic::X)],
            ],
        );
    }

    #[test]
    fn packed_forced_input_lane_acts_as_boundary() {
        // vdd -(en)- a -(clk)- b, all gates high. Lane 1 forces b to a
        // stuck-low *input*: the packed walk splits the lanes on b's
        // input classification and lane 1 sees b as a γ2-strength L
        // source fighting the γ2 H drive at a → X.
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let en = net.add_input("EN", Logic::H);
        let clk = net.add_input("CLK", Logic::H);
        let a = net.add_storage("A1", Size::S1);
        let b = net.add_storage("B1", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, en, vdd, a);
        net.add_transistor(TransistorType::N, Drive::D2, clk, a, b);
        let base = DenseState::new(&net);
        let mut packed = PackedDenseState::broadcast(&base, 2);
        packed.force_input_lane(b, 1, Logic::L);
        let (got, passes) = packed_solve_all(&net, &packed, a, packed.lanes());
        assert_eq!(passes, 2);
        assert_eq!(got.get(&(a, 0)).copied(), Some(Logic::H));
        assert_eq!(got.get(&(b, 0)).copied(), Some(Logic::H));
        assert_eq!(got.get(&(a, 1)).copied(), Some(Logic::X));
        assert_eq!(got.get(&(b, 1)).copied(), None, "b is an input in lane 1");
    }

    #[test]
    fn packed_forced_conduction_lane_evicts_and_solves() {
        // Vdd -t1- mid -t2- Gnd with both gates high: X in the fault-free
        // lane. Lane 1 forces t2 stuck-open, leaving only the pullup: H.
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let clk = net.add_input("CLK", Logic::H);
        let mid = net.add_storage("MID", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, clk, vdd, mid);
        let t2 = net.add_transistor(TransistorType::N, Drive::D2, clk, mid, gnd);
        let base = DenseState::new(&net);
        let mut packed = PackedDenseState::broadcast(&base, 2);
        packed.force_conduction_lane(t2, 1, fmossim_netlist::Conduction::Open);
        let (got, passes) = packed_solve_all(&net, &packed, mid, packed.lanes());
        assert_eq!(passes, 2);
        assert_eq!(got.get(&(mid, 0)).copied(), Some(Logic::X));
        assert_eq!(got.get(&(mid, 1)).copied(), Some(Logic::H));
    }

    #[test]
    fn ranks_thermometer_matches_strength_order() {
        let mut all = vec![Strength::NONE];
        for k in 1..=7 {
            all.push(Strength::from_size(Size::new(k).unwrap()));
        }
        for g in 1..=7 {
            all.push(Strength::from_drive(Drive::new(g).unwrap()));
        }
        all.push(Strength::INPUT);
        for &sa in &all {
            for &sb in &all {
                let mut ra = Ranks::EMPTY;
                ra.raise(0b1, sa.rank());
                let mut rb = Ranks::EMPTY;
                rb.raise(0b1, sb.rank());
                assert_eq!(ra.gt(&rb) & 0b1 != 0, sa > sb, "{sa} > {sb}");
            }
        }
    }

    #[test]
    fn ranks_merge_through_is_attenuated_max() {
        let strengths: Vec<Strength> = {
            let mut v = vec![Strength::NONE, Strength::INPUT];
            for k in 1..=7 {
                v.push(Strength::from_size(Size::new(k).unwrap()));
            }
            for g in 1..=7 {
                v.push(Strength::from_drive(Drive::new(g).unwrap()));
            }
            v
        };
        for &src in &strengths {
            for &dst in &strengths {
                for d in [Drive::D1, Drive::D2, Drive::FAULT] {
                    let mut rs = Ranks::EMPTY;
                    rs.raise(0b1, src.rank());
                    let mut rd = Ranks::EMPTY;
                    rd.raise(0b1, dst.rank());
                    let changed = rd.merge_through(&rs, Strength::from_drive(d).rank(), 0b1);
                    let expect = dst.max(src.through(d));
                    for r in 1..PLANES {
                        assert_eq!(
                            rd.at_least(r) & 0b1 != 0,
                            r <= expect.rank(),
                            "{src} through {d} into {dst}, plane {r}"
                        );
                    }
                    assert_eq!(changed, expect > dst);
                }
            }
        }
    }
}
