//! Vicinity extraction and the steady-state solver.
//!
//! See the crate-level documentation for the algorithm description. All
//! scratch memory is owned by [`Scratch`] and reused across calls, so a
//! steady-state solve allocates nothing in the common case.

use crate::state::SwitchState;
use fmossim_netlist::{Logic, NodeId, Strength, TransistorId};

/// Reusable scratch buffers for vicinity extraction and steady-state
/// solving, sized for a particular network (node/transistor counts).
///
/// A `Scratch` may be reused across different [`SwitchState`] views of
/// the *same* network (the concurrent fault simulator reuses one for
/// the good circuit and every faulty circuit).
#[derive(Clone, Debug)]
pub struct Scratch {
    /// Epoch-stamped membership marks, one per node.
    node_epoch: Vec<u32>,
    /// Local (within-group) index of each marked node.
    node_local: Vec<u32>,
    /// Epoch-stamped marks for visited transistors.
    t_epoch: Vec<u32>,
    current_epoch: u32,
    /// Members of the current group, in discovery order.
    pub(crate) members: Vec<NodeId>,
    /// Directed in-edges per member (indexed by local id).
    edges: Vec<Vec<Edge>>,
    /// Input-boundary source contributions per member.
    sources: Vec<Vec<SourceSig>>,
    /// Strength arrays for the five fixed-point passes.
    def_s: Vec<Strength>,
    pos: [Vec<Strength>; 2],
    defv: [Vec<Strength>; 2],
    /// Resolved steady-state values, parallel to `members`.
    pub(crate) out_values: Vec<Logic>,
    /// All transistors incident on the group (for support reporting).
    pub(crate) incident: Vec<TransistorId>,
    /// Input nodes adjacent to the group through channel edges.
    pub(crate) boundary_inputs: Vec<NodeId>,
}

/// A directed conduction edge into a member node.
#[derive(Clone, Copy, Debug)]
struct Edge {
    /// Local index of the node the signal comes *from*.
    from: u32,
    /// Attenuation of the traversed transistor.
    drive: fmossim_netlist::Drive,
    /// Whether the transistor definitely conducts (`Closed`) rather
    /// than only possibly (`Maybe`).
    definite: bool,
}

/// A boundary signal entering the group from an input node.
#[derive(Clone, Copy, Debug)]
struct SourceSig {
    /// Strength after attenuation by the boundary transistor.
    strength: Strength,
    /// The input node's value.
    value: Logic,
    /// Whether the boundary transistor definitely conducts.
    definite: bool,
}

/// The result of solving one vicinity with
/// [`Scratch::solve_group`]: members and their steady-state values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GroupOutcome {
    /// The storage nodes of the vicinity, in discovery order.
    pub members: Vec<NodeId>,
    /// The steady-state value for each member (parallel to `members`).
    pub values: Vec<Logic>,
}

impl Scratch {
    /// Creates scratch buffers for a network with the given counts.
    #[must_use]
    pub fn new(num_nodes: usize, num_transistors: usize) -> Self {
        Scratch {
            node_epoch: vec![0; num_nodes],
            node_local: vec![0; num_nodes],
            t_epoch: vec![0; num_transistors],
            current_epoch: 0,
            members: Vec::new(),
            edges: Vec::new(),
            sources: Vec::new(),
            def_s: Vec::new(),
            pos: [Vec::new(), Vec::new()],
            defv: [Vec::new(), Vec::new()],
            out_values: Vec::new(),
            incident: Vec::new(),
            boundary_inputs: Vec::new(),
        }
    }

    /// True iff `n` belongs to the group extracted in the current epoch.
    #[inline]
    pub(crate) fn in_group(&self, n: NodeId) -> bool {
        self.node_epoch[n.index()] == self.current_epoch
    }

    /// Extracts and solves the vicinity containing `seed`, returning an
    /// owned outcome. This is the allocating convenience wrapper around
    /// the zero-allocation internals used by the
    /// [`Engine`](crate::Engine); it is public for solver-level testing
    /// and benchmarking.
    ///
    /// `static_locality` selects the pre-MOSSIM-II partitioning (whole
    /// DC-connected component) used by the locality ablation bench.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `seed` is input-classified under
    /// `st`; vicinity seeds must be storage nodes.
    pub fn solve_group<S: SwitchState>(
        &mut self,
        st: &S,
        seed: NodeId,
        static_locality: bool,
    ) -> GroupOutcome {
        let (members, values) = self.solve(st, seed, static_locality);
        GroupOutcome {
            members: members.to_vec(),
            values: values.to_vec(),
        }
    }

    /// Zero-allocation solve: extracts the vicinity of `seed` and
    /// resolves its steady state. The returned slices borrow scratch
    /// storage and are valid until the next call.
    pub(crate) fn solve<S: SwitchState>(
        &mut self,
        st: &S,
        seed: NodeId,
        static_locality: bool,
    ) -> (&[NodeId], &[Logic]) {
        self.extract(st, seed, static_locality);
        self.steady_state(st);
        (&self.members, &self.out_values)
    }

    /// Breadth-first vicinity extraction from `seed`.
    pub(crate) fn extract<S: SwitchState>(&mut self, st: &S, seed: NodeId, static_locality: bool) {
        self.current_epoch = self.current_epoch.wrapping_add(1);
        if self.current_epoch == 0 {
            // Extremely rare wraparound: clear stamps and restart at 1.
            self.node_epoch.fill(0);
            self.t_epoch.fill(0);
            self.current_epoch = 1;
        }
        self.members.clear();
        self.incident.clear();
        self.boundary_inputs.clear();
        debug_assert!(!st.is_input(seed), "vicinity seeds must be storage nodes");
        self.mark(seed);
        let net = st.network();
        let mut head = 0;
        while head < self.members.len() {
            let m = self.members[head];
            head += 1;
            for &t in net.channel_transistors(m) {
                if self.t_epoch[t.index()] == self.current_epoch {
                    continue;
                }
                self.t_epoch[t.index()] = self.current_epoch;
                self.incident.push(t);
                let cond = st.conduction(t);
                if !static_locality && !cond.may_conduct() {
                    continue;
                }
                let tr = net.transistor(t);
                let other = tr.other_end(m);
                if other == m {
                    continue; // self-loop carries no signal
                }
                if st.is_input(other) {
                    // Input nodes are never members, so reusing the node
                    // mark for dedup of the boundary list is safe.
                    if self.node_epoch[other.index()] != self.current_epoch {
                        self.node_epoch[other.index()] = self.current_epoch;
                        self.boundary_inputs.push(other);
                    }
                } else if self.node_epoch[other.index()] != self.current_epoch {
                    self.mark(other);
                }
            }
        }
        // Undo the membership stamp borrowed by boundary inputs so that
        // `in_group` answers correctly for them.
        for &b in &self.boundary_inputs {
            self.node_epoch[b.index()] = self.current_epoch.wrapping_sub(1);
        }
        // Second pass: build in-edges and boundary sources per member
        // (after extraction so local indices are final).
        let n = self.members.len();
        for v in &mut self.edges {
            v.clear();
        }
        for v in &mut self.sources {
            v.clear();
        }
        while self.edges.len() < n {
            self.edges.push(Vec::new());
        }
        while self.sources.len() < n {
            self.sources.push(Vec::new());
        }
        for li in 0..n {
            let m = self.members[li];
            for &t in net.channel_transistors(m) {
                let cond = st.conduction(t);
                if !cond.may_conduct() {
                    continue;
                }
                let definite = cond.is_closed();
                let tr = net.transistor(t);
                let other = tr.other_end(m);
                if other == m {
                    continue;
                }
                if st.is_input(other) {
                    self.sources[li].push(SourceSig {
                        strength: Strength::INPUT.through(tr.strength),
                        value: st.node_state(other),
                        definite,
                    });
                } else {
                    debug_assert!(
                        self.in_group(other),
                        "conducting neighbour must be in group"
                    );
                    self.edges[li].push(Edge {
                        from: self.node_local[other.index()],
                        drive: tr.strength,
                        definite,
                    });
                }
            }
        }
    }

    #[inline]
    fn mark(&mut self, n: NodeId) {
        self.node_epoch[n.index()] = self.current_epoch;
        self.node_local[n.index()] = u32::try_from(self.members.len()).expect("group too large");
        self.members.push(n);
    }

    /// Solves the five fixed points and resolves member values into
    /// `out_values`.
    #[allow(clippy::needless_range_loop)] // `li` indexes several parallel arrays
    pub(crate) fn steady_state<S: SwitchState>(&mut self, st: &S) {
        let n = self.members.len();
        let net = st.network();
        let resize = |v: &mut Vec<Strength>| {
            v.clear();
            v.resize(n, Strength::NONE);
        };
        resize(&mut self.def_s);
        resize(&mut self.pos[0]);
        resize(&mut self.pos[1]);
        resize(&mut self.defv[0]);
        resize(&mut self.defv[1]);

        // Pass 1: defS — definite presence. Sources: own charge (always
        // definitely present at size strength) and definite input edges.
        let mut def_s = std::mem::take(&mut self.def_s);
        for li in 0..n {
            let node = self.members[li];
            def_s[li] = Strength::from_size(net.node(node).size());
            for s in &self.sources[li] {
                if s.definite {
                    def_s[li] = def_s[li].max(s.strength);
                }
            }
        }
        self.relax(&mut def_s, /*definite_edges_only=*/ true, |_, _| true);

        // Pass 2: pos1 / pos0 — possible presence per value class.
        // A possible signal is blocked at `m` when strictly weaker than
        // the strongest definitely-present signal there.
        for (idx, want) in [(0usize, Logic::H), (1usize, Logic::L)] {
            let mut pos = std::mem::take(&mut self.pos[idx]);
            for li in 0..n {
                let node = self.members[li];
                let old = st.node_state(node);
                if old == want || old == Logic::X {
                    pos[li] = Strength::from_size(net.node(node).size());
                }
                for s in &self.sources[li] {
                    if s.value == want || s.value == Logic::X {
                        pos[li] = pos[li].max(s.strength);
                    }
                }
            }
            self.relax(
                &mut pos,
                /*definite_edges_only=*/ false,
                |str_, from| str_[from as usize] >= def_s[from as usize],
            );
            self.pos[idx] = pos;
        }

        // Pass 3: def1 / def0 — definite winners of a definite value.
        // Propagates through `m` only when nothing possibly stronger
        // exists at `m` (otherwise its onward presence is not certain).
        let (pos1, pos0) = (&self.pos[0], &self.pos[1]);
        for (idx, want) in [(0usize, Logic::H), (1usize, Logic::L)] {
            let mut defv = std::mem::take(&mut self.defv[idx]);
            for li in 0..n {
                let node = self.members[li];
                if st.node_state(node) == want {
                    defv[li] = Strength::from_size(net.node(node).size());
                }
                for s in &self.sources[li] {
                    if s.definite && s.value == want {
                        defv[li] = defv[li].max(s.strength);
                    }
                }
            }
            relax_edges(&self.edges[..n], &mut defv, true, |str_, from| {
                let f = from as usize;
                str_[f] >= pos1[f].max(pos0[f])
            });
            self.defv[idx] = defv;
        }
        self.def_s = def_s;

        // Resolution: 1 iff def1 > pos0; 0 iff def0 > pos1; else X.
        self.out_values.clear();
        for li in 0..n {
            let one = self.defv[0][li] > self.pos[1][li];
            let zero = self.defv[1][li] > self.pos[0][li];
            debug_assert!(!(one && zero), "resolution rule cannot pick both values");
            self.out_values.push(if one {
                Logic::H
            } else if zero {
                Logic::L
            } else {
                Logic::X
            });
        }
    }

    /// Monotone relaxation to the least fixed point of
    /// `s[v] = max(init[v], max over in-edges (u→v): eligible(u) ? min(s[u], drive) : λ)`.
    fn relax<F>(&self, strengths: &mut [Strength], definite_edges_only: bool, eligible: F)
    where
        F: Fn(&[Strength], u32) -> bool,
    {
        relax_edges(
            &self.edges[..strengths.len()],
            strengths,
            definite_edges_only,
            eligible,
        );
    }
}

/// Sweep-to-fixpoint relaxation. Strengths only grow and the lattice is
/// finite, so this terminates; vicinities are small (a handful of nodes
/// in typical circuits), so repeated sweeps beat the bookkeeping cost
/// of a worklist.
fn relax_edges<F>(
    edges: &[Vec<Edge>],
    strengths: &mut [Strength],
    definite_edges_only: bool,
    eligible: F,
) where
    F: Fn(&[Strength], u32) -> bool,
{
    loop {
        let mut changed = false;
        for v in 0..strengths.len() {
            let mut best = strengths[v];
            for e in &edges[v] {
                if definite_edges_only && !e.definite {
                    continue;
                }
                if !eligible(strengths, e.from) {
                    continue;
                }
                best = best.max(strengths[e.from as usize].through(e.drive));
            }
            if best > strengths[v] {
                strengths[v] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::DenseState;
    use fmossim_netlist::{Drive, Network, Size, TransistorType};

    /// Solve the group containing `seed` and return (members, values).
    fn run(net: &Network, st: &DenseState<'_>, seed: NodeId) -> GroupOutcome {
        let mut scr = Scratch::new(net.num_nodes(), net.num_transistors());
        scr.solve_group(st, seed, false)
    }

    fn value_of(out: &GroupOutcome, n: NodeId) -> Logic {
        let i = out
            .members
            .iter()
            .position(|&m| m == n)
            .expect("node in group");
        out.values[i]
    }

    #[test]
    fn nmos_inverter_both_ways() {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::H);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::D, Drive::D1, out, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);

        let mut st = DenseState::new(&net);
        // A = 1 → pulldown wins over weak pullup.
        assert_eq!(value_of(&run(&net, &st, out), out), Logic::L);
        // A = 0 → only the pullup drives.
        st.force(a, Logic::L);
        assert_eq!(value_of(&run(&net, &st, out), out), Logic::H);
        // A = X → the pulldown may fight the pullup: X.
        st.force(a, Logic::X);
        assert_eq!(value_of(&run(&net, &st, out), out), Logic::X);
    }

    #[test]
    fn charge_sharing_big_node_wins() {
        let mut net = Network::new();
        let clk = net.add_input("CLK", Logic::H);
        let bus = net.add_storage("BUS", Size::S2);
        let s = net.add_storage("S", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, clk, bus, s);
        let mut st = DenseState::new(&net);
        st.force(bus, Logic::H);
        st.force(s, Logic::L);
        let out = run(&net, &st, s);
        assert_eq!(value_of(&out, bus), Logic::H);
        assert_eq!(value_of(&out, s), Logic::H);
    }

    #[test]
    fn charge_sharing_equal_sizes_gives_x() {
        let mut net = Network::new();
        let clk = net.add_input("CLK", Logic::H);
        let a = net.add_storage("A1", Size::S1);
        let b = net.add_storage("B1", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, clk, a, b);
        let mut st = DenseState::new(&net);
        st.force(a, Logic::H);
        st.force(b, Logic::L);
        let out = run(&net, &st, a);
        assert_eq!(value_of(&out, a), Logic::X);
        assert_eq!(value_of(&out, b), Logic::X);
    }

    #[test]
    fn isolated_node_keeps_charge() {
        let mut net = Network::new();
        let clk = net.add_input("CLK", Logic::L);
        let a = net.add_storage("A1", Size::S1);
        let b = net.add_storage("B1", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, clk, a, b);
        let mut st = DenseState::new(&net);
        st.force(a, Logic::H);
        let out = run(&net, &st, a);
        // CLK=0 isolates A: group is {A} alone, charge retained.
        assert_eq!(out.members.len(), 1);
        assert_eq!(value_of(&out, a), Logic::H);
    }

    #[test]
    fn short_circuit_through_pass_gates_gives_x() {
        // Two strong inputs of opposite value connected through
        // conducting transistors to a middle node: X.
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let clk = net.add_input("CLK", Logic::H);
        let mid = net.add_storage("MID", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, clk, vdd, mid);
        net.add_transistor(TransistorType::N, Drive::D2, clk, mid, gnd);
        let st = DenseState::new(&net);
        assert_eq!(value_of(&run(&net, &st, mid), mid), Logic::X);
    }

    #[test]
    fn ratioed_nand_pulls_low_through_series_stack() {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::H);
        let b = net.add_input("B", Logic::H);
        let out = net.add_storage("OUT", Size::S1);
        let mid = net.add_storage("MID", Size::S1);
        net.add_transistor(TransistorType::D, Drive::D1, out, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, mid);
        net.add_transistor(TransistorType::N, Drive::D2, b, mid, gnd);
        let mut st = DenseState::new(&net);
        let o = run(&net, &st, out);
        assert_eq!(value_of(&o, out), Logic::L);
        assert_eq!(value_of(&o, mid), Logic::L);
        // B low: output pulls high through the pullup; mid charges high
        // through the series transistor.
        st.force(b, Logic::L);
        let o = run(&net, &st, out);
        assert_eq!(value_of(&o, out), Logic::H);
        assert_eq!(value_of(&o, mid), Logic::H);
    }

    #[test]
    fn precharged_bus_discharge_depends_on_cell_value() {
        // 3T-DRAM read path: RBL(κ2,H) -t_rs(closed)- mid -t_cell(gate=S)- Gnd
        let mut net = Network::new();
        let gnd = net.add_input("Gnd", Logic::L);
        let rs = net.add_input("RS", Logic::H);
        let cell = net.add_storage("CELL", Size::S1);
        let rbl = net.add_storage("RBL", Size::S2);
        let mid = net.add_storage("MID", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, rs, rbl, mid);
        net.add_transistor(TransistorType::N, Drive::D2, cell, mid, gnd);

        let mut st = DenseState::new(&net);
        st.force(rbl, Logic::H);
        st.force(cell, Logic::H); // cell stores 1 → bus discharges
        let o = run(&net, &st, rbl);
        assert_eq!(value_of(&o, rbl), Logic::L);

        st.force(rbl, Logic::H);
        st.force(cell, Logic::L); // cell stores 0 → bus keeps precharge
        st.force(mid, Logic::L);
        let o = run(&net, &st, rbl);
        assert_eq!(value_of(&o, rbl), Logic::H);

        st.force(rbl, Logic::H);
        st.force(cell, Logic::X); // unknown cell → bus may discharge
        let o = run(&net, &st, rbl);
        assert_eq!(value_of(&o, rbl), Logic::X);
    }

    #[test]
    fn x_input_keeps_definite_when_harmless() {
        // A node driven high through a closed transistor is 1 even if an
        // unrelated X-gated transistor merely *might* connect it to
        // another high source.
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let vdd2 = net.add_input("Vdd2", Logic::H);
        let en = net.add_input("EN", Logic::H);
        let maybe = net.add_input("MAYBE", Logic::X);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, en, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, maybe, vdd2, out);
        let st = DenseState::new(&net);
        assert_eq!(value_of(&run(&net, &st, out), out), Logic::H);
    }

    #[test]
    fn x_gated_path_to_opposite_rail_gives_x() {
        // As above but the uncertain path leads to ground: the node may
        // or may not be shorted low → X.
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let en = net.add_input("EN", Logic::H);
        let maybe = net.add_input("MAYBE", Logic::X);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, en, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, maybe, out, gnd);
        let st = DenseState::new(&net);
        assert_eq!(value_of(&run(&net, &st, out), out), Logic::X);
    }

    #[test]
    fn weak_charge_does_not_corrupt_strong_drive() {
        // A driven node connected through a closed pass gate to a stale
        // charge of opposite value: drive wins, charge node follows.
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let en = net.add_input("EN", Logic::H);
        let clk = net.add_input("CLK", Logic::H);
        let a = net.add_storage("A1", Size::S1);
        let b = net.add_storage("B1", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, en, vdd, a);
        net.add_transistor(TransistorType::N, Drive::D2, clk, a, b);
        let mut st = DenseState::new(&net);
        st.force(b, Logic::L);
        let o = run(&net, &st, a);
        assert_eq!(value_of(&o, a), Logic::H);
        assert_eq!(value_of(&o, b), Logic::H);
    }

    #[test]
    fn static_locality_extracts_whole_component() {
        let mut net = Network::new();
        let clk = net.add_input("CLK", Logic::L); // open transistor
        let a = net.add_storage("A1", Size::S1);
        let b = net.add_storage("B1", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, clk, a, b);
        let st = DenseState::new(&net);
        let mut scr = Scratch::new(net.num_nodes(), net.num_transistors());
        scr.extract(&st, a, false);
        assert_eq!(
            scr.members.len(),
            1,
            "dynamic locality stops at open transistor"
        );
        scr.extract(&st, a, true);
        assert_eq!(
            scr.members.len(),
            2,
            "static locality spans the DC component"
        );
    }

    #[test]
    fn static_locality_same_values_as_dynamic() {
        // The ablation mode must not change results, only group sizes.
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::H);
        let out = net.add_storage("OUT", Size::S1);
        let far = net.add_storage("FAR", Size::S1);
        net.add_transistor(TransistorType::D, Drive::D1, out, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
        // `far` is connected to OUT through an open transistor.
        let off = net.add_input("OFF", Logic::L);
        net.add_transistor(TransistorType::N, Drive::D2, off, out, far);
        let mut st = DenseState::new(&net);
        st.force(far, Logic::H);
        let mut scr = Scratch::new(net.num_nodes(), net.num_transistors());
        let dynamic = scr.solve_group(&st, out, false);
        let static_ = scr.solve_group(&st, out, true);
        assert_eq!(value_of(&dynamic, out), Logic::L);
        assert_eq!(value_of(&static_, out), Logic::L);
        // In static mode `far` is a member but keeps its charge.
        assert_eq!(value_of(&static_, far), Logic::H);
    }

    #[test]
    fn boundary_inputs_are_reported() {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let en = net.add_input("EN", Logic::H);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, en, vdd, out);
        let st = DenseState::new(&net);
        let mut scr = Scratch::new(net.num_nodes(), net.num_transistors());
        scr.extract(&st, out, false);
        assert_eq!(scr.boundary_inputs, vec![vdd]);
        assert_eq!(scr.incident.len(), 1);
        assert!(scr.in_group(out));
        assert!(!scr.in_group(vdd));
    }

    #[test]
    fn fault_strength_short_overrides_functional_driver() {
        // A γ7 "fault transistor" shorting a driven-high node to ground
        // wins against the γ2 functional driver — the paper's bridge
        // fault injection mechanism.
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let en = net.add_input("EN", Logic::H);
        let fault_en = net.add_input("FAULT", Logic::H);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, en, vdd, out);
        net.add_transistor(TransistorType::N, Drive::FAULT, fault_en, out, gnd);
        let st = DenseState::new(&net);
        assert_eq!(value_of(&run(&net, &st, out), out), Logic::L);
    }
}
