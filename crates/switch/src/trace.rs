//! Waveform capture and VCD export.
//!
//! A [`Trace`] records the values of a chosen set of nodes at caller-
//! defined sample points (typically once per phase or per pattern) and
//! serialises them as a Value Change Dump, viewable in any waveform
//! viewer (GTKWave etc.). Fault-simulation debugging leans on this
//! heavily: dump the same nodes from the good circuit and a faulty
//! overlay and diff the waves.

use crate::state::SwitchState;
use fmossim_netlist::{Logic, Network, NodeId};
use std::fmt::Write as _;

/// A recorded multi-node waveform.
#[derive(Clone, Debug)]
pub struct Trace {
    watched: Vec<NodeId>,
    names: Vec<String>,
    /// Sample times, strictly increasing.
    times: Vec<u64>,
    /// One value row per sample, parallel to `watched`.
    values: Vec<Vec<Logic>>,
}

impl Trace {
    /// Creates a trace watching `nodes` (names are captured from the
    /// network for the VCD header).
    ///
    /// # Panics
    ///
    /// Panics if any node id is out of range for `net`.
    #[must_use]
    pub fn new(net: &Network, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let watched: Vec<NodeId> = nodes.into_iter().collect();
        let names = watched.iter().map(|&n| net.node(n).name.clone()).collect();
        Trace {
            watched,
            names,
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Convenience: a trace over every node of the network.
    #[must_use]
    pub fn all_nodes(net: &Network) -> Self {
        Trace::new(net, net.node_ids())
    }

    /// The watched nodes, in column order.
    #[must_use]
    pub fn watched(&self) -> &[NodeId] {
        &self.watched
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True iff nothing has been sampled yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Records the current state of every watched node at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not strictly greater than the previous
    /// sample time.
    pub fn sample<S: SwitchState>(&mut self, time: u64, st: &S) {
        if let Some(&last) = self.times.last() {
            assert!(time > last, "sample times must be strictly increasing");
        }
        self.times.push(time);
        self.values
            .push(self.watched.iter().map(|&n| st.node_state(n)).collect());
    }

    /// The value of watched node `n` at sample index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not watched or `idx` is out of range.
    #[must_use]
    pub fn value_at(&self, n: NodeId, idx: usize) -> Logic {
        let col = self
            .watched
            .iter()
            .position(|&w| w == n)
            .expect("node is watched");
        self.values[idx][col]
    }

    /// The change list of watched node `n`: `(time, new_value)` pairs,
    /// starting with the first sample.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not watched.
    #[must_use]
    pub fn changes(&self, n: NodeId) -> Vec<(u64, Logic)> {
        let col = self
            .watched
            .iter()
            .position(|&w| w == n)
            .expect("node is watched");
        let mut out = Vec::new();
        let mut last: Option<Logic> = None;
        for (i, row) in self.values.iter().enumerate() {
            let v = row[col];
            if last != Some(v) {
                out.push((self.times[i], v));
                last = Some(v);
            }
        }
        out
    }

    /// Serialises the trace as a Value Change Dump.
    ///
    /// `timescale` is emitted verbatim (e.g. `"1 ns"`); sample times
    /// become VCD timestamps. Node names are sanitised for VCD
    /// (whitespace replaced by `_`).
    #[must_use]
    pub fn to_vcd(&self, timescale: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$version fmossim switch-level trace $end");
        let _ = writeln!(out, "$timescale {timescale} $end");
        let _ = writeln!(out, "$scope module top $end");
        for (i, name) in self.names.iter().enumerate() {
            let clean: String = name
                .chars()
                .map(|c| if c.is_whitespace() { '_' } else { c })
                .collect();
            let _ = writeln!(out, "$var wire 1 {} {} $end", ident(i), clean);
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        let mut last: Vec<Option<Logic>> = vec![None; self.watched.len()];
        for (si, row) in self.values.iter().enumerate() {
            let mut emitted_time = false;
            for (ci, &v) in row.iter().enumerate() {
                if last[ci] == Some(v) {
                    continue;
                }
                if !emitted_time {
                    let _ = writeln!(out, "#{}", self.times[si]);
                    emitted_time = true;
                }
                let ch = match v {
                    Logic::L => '0',
                    Logic::H => '1',
                    Logic::X => 'x',
                };
                let _ = writeln!(out, "{ch}{}", ident(ci));
                last[ci] = Some(v);
            }
        }
        out
    }
}

/// VCD identifier codes: printable ASCII 33..=126, little-endian
/// multi-character for larger indexes.
fn ident(mut i: usize) -> String {
    const BASE: usize = 94;
    let mut s = String::new();
    loop {
        s.push(char::from(b'!' + u8::try_from(i % BASE).expect("in range")));
        i /= BASE;
        if i == 0 {
            break;
        }
        i -= 1; // bijective numeration so "!" and "!!" differ
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::LogicSim;
    use fmossim_netlist::{Drive, Size, TransistorType};

    fn inverter() -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::L);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::P, Drive::D2, a, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
        (net, a, out)
    }

    #[test]
    fn records_and_reads_back() {
        let (net, a, out) = inverter();
        let mut sim = LogicSim::new(&net);
        let mut trace = Trace::new(&net, [a, out]);
        sim.settle();
        trace.sample(0, sim.state());
        sim.set_input(a, Logic::H);
        sim.settle();
        trace.sample(1, sim.state());
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.value_at(out, 0), Logic::H);
        assert_eq!(trace.value_at(out, 1), Logic::L);
        assert_eq!(trace.changes(out), vec![(0, Logic::H), (1, Logic::L)]);
        assert_eq!(trace.changes(a).len(), 2);
    }

    #[test]
    fn vcd_output_shape() {
        let (net, a, out) = inverter();
        let mut sim = LogicSim::new(&net);
        let mut trace = Trace::new(&net, [a, out]);
        sim.settle();
        trace.sample(0, sim.state());
        sim.set_input(a, Logic::H);
        sim.settle();
        trace.sample(5, sim.state());
        let vcd = trace.to_vcd("1 ns");
        assert!(vcd.contains("$timescale 1 ns $end"));
        assert!(vcd.contains("$var wire 1 ! A $end"));
        assert!(vcd.contains("$var wire 1 \" OUT $end"));
        assert!(vcd.contains("#0\n"));
        assert!(vcd.contains("#5\n"));
        // OUT falls at t=5; unchanged values are not re-emitted.
        let after_t5 = vcd.split("#5\n").nth(1).expect("t5 section");
        assert!(after_t5.contains("0\""), "OUT change emitted: {after_t5}");
        assert_eq!(vcd.matches("1\"").count(), 1, "initial OUT once");
    }

    #[test]
    fn x_renders_lowercase() {
        let (net, a, out) = inverter();
        let mut sim = LogicSim::new(&net);
        sim.set_input(a, Logic::X);
        sim.settle();
        let mut trace = Trace::new(&net, [out]);
        trace.sample(0, sim.state());
        assert!(trace.to_vcd("1 ns").contains("\nx!"));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotonic_time_rejected() {
        let (net, _, out) = inverter();
        let mut sim = LogicSim::new(&net);
        sim.settle();
        let mut trace = Trace::new(&net, [out]);
        trace.sample(3, sim.state());
        trace.sample(3, sim.state());
    }

    #[test]
    fn ident_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let id = ident(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(id), "duplicate identifier at {i}");
        }
        assert_eq!(ident(0), "!");
        assert_eq!(ident(93), "~");
        assert_eq!(ident(94), "!!");
    }

    #[test]
    fn all_nodes_constructor() {
        let (net, _, _) = inverter();
        let trace = Trace::all_nodes(&net);
        assert_eq!(trace.watched().len(), net.num_nodes());
        assert!(trace.is_empty());
    }
}
