//! The event-driven unit-delay scheduler.
//!
//! A *settle* drains a queue of perturbed nodes in rounds: every round
//! extracts the vicinity of each pending node, solves its steady state,
//! applies the new node values, and schedules the channel ends of every
//! transistor whose conduction state was changed by the round for the
//! *next* round — the unit-delay model of MOSSIM II. Settling ends when
//! a round produces no new perturbations.
//!
//! If the network oscillates (e.g. a ring oscillator, or a fault turning
//! a gate into one), the round count exceeds
//! [`EngineConfig::max_rounds`] and the engine enters *X-damping* mode:
//! from then on a node that would change state moves to the least upper
//! bound of old and new value instead. States then move only towards
//! `X`, which bounds the remaining work and leaves the oscillating set
//! at `X` — the MOSSIM II treatment of unstable networks.

use crate::solve::{PackedScratch, Scratch};
use crate::state::{PackedLogic, PackedState, SwitchState};
use fmossim_netlist::{Conduction, Logic, Network, NodeId, TransistorId, TransistorType};
use fmossim_telemetry::{Counter, Histogram, LocalHistogram, Registry};

/// Vicinity partitioning discipline; see the DAC-85 paper's §4
/// discussion of dynamic vs. static locality.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LocalityMode {
    /// Bound vicinities by conduction state (MOSSIM II / FMOSSIM):
    /// source and drain of an open transistor are electrically isolated.
    #[default]
    Dynamic,
    /// Bound vicinities only by DC-connected components, as earlier
    /// switch-level simulators did. Functionally identical results,
    /// larger groups; used by the locality ablation benchmark.
    Static,
}

/// Tunables for the [`Engine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Rounds after which oscillation damping (forcing changing nodes
    /// towards `X`) begins.
    pub max_rounds: usize,
    /// Vicinity partitioning discipline.
    pub locality: LocalityMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_rounds: 400,
            locality: LocalityMode::Dynamic,
        }
    }
}

/// Outcome of one [`Engine::settle`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SettleReport {
    /// Number of unit-delay rounds executed.
    pub rounds: usize,
    /// Number of vicinities extracted and solved.
    pub groups_solved: usize,
    /// Number of node state changes applied.
    pub nodes_changed: usize,
    /// True iff oscillation damping was engaged (some nodes were forced
    /// to `X` to terminate).
    pub oscillation_damped: bool,
}

impl SettleReport {
    /// Merges the counters of two reports (used when a simulation phase
    /// settles in several steps).
    #[must_use]
    pub fn merged(self, other: SettleReport) -> SettleReport {
        SettleReport {
            rounds: self.rounds + other.rounds,
            groups_solved: self.groups_solved + other.groups_solved,
            nodes_changed: self.nodes_changed + other.nodes_changed,
            oscillation_damped: self.oscillation_damped || other.oscillation_damped,
        }
    }
}

/// A solved vicinity, passed to the observer of
/// [`Engine::settle_observed`].
///
/// The concurrent fault simulator uses this to compute the *support* of
/// each good-circuit event — the set of nodes at which a divergence
/// record or fault attachment means a faulty circuit must re-simulate
/// this event privately.
#[derive(Clone, Copy, Debug)]
pub struct GroupView<'a> {
    /// Storage nodes of the vicinity.
    pub members: &'a [NodeId],
    /// All transistors incident on the vicinity (conducting or not —
    /// a divergence on any of their gates can change the vicinity's
    /// boundary in a faulty circuit).
    pub incident_transistors: &'a [TransistorId],
    /// Input nodes feeding the vicinity through channel connections.
    pub boundary_inputs: &'a [NodeId],
    /// State changes applied by this solve: `(node, old, new)`.
    pub changed: &'a [(NodeId, Logic, Logic)],
}

impl GroupView<'_> {
    /// Iterates over the gate nodes of all incident transistors.
    pub fn incident_gates<'n>(
        &self,
        net: &'n Network,
    ) -> impl Iterator<Item = NodeId> + use<'_, 'n> {
        self.incident_transistors
            .iter()
            .map(move |&t| net.transistor(t).gate)
    }
}

/// Telemetry of one [`Engine`]. Settles accumulate into the plain
/// `local_*` fields (no atomics on the per-group hot path) and
/// [`EngineMetrics::flush`] folds them into the shared registry handles;
/// the core simulator flushes once per pattern. `active` is false for an
/// unattached engine, which then skips even the local bucketing.
#[derive(Clone, Debug, Default)]
struct EngineMetrics {
    active: bool,
    /// `switch.settles` — settle calls that did work (≥ 1 round).
    settles: Counter,
    /// `switch.settle.rounds` — unit-delay rounds executed.
    rounds: Counter,
    /// `switch.vicinity.solves` — vicinities extracted and solved.
    vicinity_solves: Counter,
    /// `switch.nodes_changed` — node state changes applied.
    nodes_changed: Counter,
    /// `switch.oscillation.damped` — settles that engaged X-damping.
    oscillation_damped: Counter,
    /// `switch.solve_group.size` — storage-node count per solved group.
    group_size: Histogram,
    local_settles: u64,
    local_rounds: u64,
    local_vicinity_solves: u64,
    local_nodes_changed: u64,
    local_oscillation_damped: u64,
    local_group_size: LocalHistogram,
}

impl EngineMetrics {
    fn attach(registry: &Registry) -> Self {
        EngineMetrics {
            active: registry.is_active(),
            settles: registry.counter("switch.settles"),
            rounds: registry.counter("switch.settle.rounds"),
            vicinity_solves: registry.counter("switch.vicinity.solves"),
            nodes_changed: registry.counter("switch.nodes_changed"),
            oscillation_damped: registry.counter("switch.oscillation.damped"),
            group_size: registry.histogram("switch.solve_group.size"),
            ..EngineMetrics::default()
        }
    }

    fn flush(&mut self) {
        if !self.active {
            return;
        }
        self.settles.add(self.local_settles);
        self.rounds.add(self.local_rounds);
        self.vicinity_solves.add(self.local_vicinity_solves);
        self.nodes_changed.add(self.local_nodes_changed);
        self.oscillation_damped.add(self.local_oscillation_damped);
        self.local_settles = 0;
        self.local_rounds = 0;
        self.local_vicinity_solves = 0;
        self.local_nodes_changed = 0;
        self.local_oscillation_damped = 0;
        self.group_size.merge_local(&mut self.local_group_size);
    }
}

/// The unit-delay event scheduler. Owns the perturbation queues and the
/// solver scratch; generic over the [`SwitchState`] being simulated so
/// the same engine drives good, concurrent-faulty and serial-faulty
/// circuits.
#[derive(Clone, Debug)]
pub struct Engine {
    scratch: Scratch,
    /// Nodes to process this round.
    queue: Vec<NodeId>,
    /// Nodes scheduled for the next round.
    next_queue: Vec<NodeId>,
    /// Per-node flag: node is in `next_queue`.
    queued: Vec<bool>,
    /// Per-node stamp of the round in which the node was last solved.
    solved_round: Vec<u64>,
    round_id: u64,
    changed_buf: Vec<(NodeId, Logic, Logic)>,
    config: EngineConfig,
    metrics: EngineMetrics,
}

impl Engine {
    /// Creates an engine sized for `net`, with default configuration.
    #[must_use]
    pub fn new(net: &Network) -> Self {
        Engine::with_config(net, EngineConfig::default())
    }

    /// Creates an engine sized for `net` with an explicit configuration.
    #[must_use]
    pub fn with_config(net: &Network, config: EngineConfig) -> Self {
        Engine {
            scratch: Scratch::new(net.num_nodes(), net.num_transistors()),
            queue: Vec::new(),
            next_queue: Vec::new(),
            queued: vec![false; net.num_nodes()],
            solved_round: vec![0; net.num_nodes()],
            round_id: 0,
            changed_buf: Vec::new(),
            config,
            metrics: EngineMetrics::default(),
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Resets the engine to the state [`Engine::with_config`] would
    /// produce for `net`, keeping every buffer allocation that already
    /// suffices — the cheap path for drivers that build many
    /// short-lived simulators over the same network (the adaptive
    /// backend rebuilds every shard simulator at every batch
    /// boundary). For a same-sized network no allocation happens; a
    /// differently-sized one re-fits the buffers. Metrics detach:
    /// re-attach after recycling if the new owner is instrumented.
    pub fn recycle(&mut self, net: &Network, config: EngineConfig) {
        self.scratch.fit(net.num_nodes(), net.num_transistors());
        self.queue.clear();
        self.next_queue.clear();
        self.queued.clear();
        self.queued.resize(net.num_nodes(), false);
        self.solved_round.clear();
        self.solved_round.resize(net.num_nodes(), 0);
        self.round_id = 0;
        self.changed_buf.clear();
        self.config = config;
        self.metrics = EngineMetrics::default();
    }

    /// Publishes this engine's activity (`switch.*` metrics) into
    /// `registry`. Handles are minted once here; until attached (or
    /// when `registry` is null) the instrumentation is a no-op.
    ///
    /// Settle activity is accumulated locally (no shared-atomic traffic
    /// per solve group) and published by [`Engine::flush_metrics`] —
    /// the core simulators flush once per pattern. Callers driving the
    /// engine directly must flush before reading the registry.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        self.metrics = EngineMetrics::attach(registry);
    }

    /// Folds locally accumulated settle activity into the attached
    /// registry (a no-op for an unattached engine). Cheap — a handful
    /// of atomic adds — but not meant for the per-settle hot path.
    pub fn flush_metrics(&mut self) {
        self.metrics.flush();
    }

    /// True iff perturbations are pending (a settle would do work).
    #[must_use]
    pub fn has_pending(&self) -> bool {
        !self.next_queue.is_empty()
    }

    /// Discards every pending perturbation. Used by tape replay: the
    /// perturbations a recorded settle would have drained (e.g. the
    /// initial all-storage seeding) are covered by the tape, so a
    /// replaying simulator clears them instead of settling them.
    pub fn clear_pending(&mut self) {
        for &n in &self.next_queue {
            self.queued[n.index()] = false;
        }
        self.next_queue.clear();
    }

    /// Schedules node `n` for (re-)evaluation at the next settle.
    /// Input-classified nodes are filtered out at processing time, so
    /// perturbing them is harmless.
    #[inline]
    pub fn perturb(&mut self, n: NodeId) {
        Self::push(&mut self.next_queue, &mut self.queued, n);
    }

    /// Schedules every storage node — used to initialize a simulation.
    pub fn perturb_all_storage<S: SwitchState>(&mut self, st: &S) {
        let ids: Vec<NodeId> = st
            .network()
            .node_ids()
            .filter(|&n| !st.is_input(n))
            .collect();
        for n in ids {
            self.perturb(n);
        }
    }

    /// Changes the state of input node `n` to `v` and schedules all
    /// consequences: channel neighbours reachable through possibly
    /// conducting transistors, and the channel ends of every transistor
    /// gated by `n` whose conduction state changes.
    ///
    /// Does nothing if the input already has value `v`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not input-classified under `st`.
    pub fn apply_input<S: SwitchState>(&mut self, st: &mut S, n: NodeId, v: Logic) {
        assert!(st.is_input(n), "apply_input requires an input node");
        let old = st.node_state(n);
        if old == v {
            return;
        }
        st.set_node_state(n, v);
        self.wake_neighbours(st, n, old, v);
    }

    /// Schedules the consequences of node `n` having changed `old → new`
    /// by external action (input application or fault planting).
    pub fn wake_neighbours<S: SwitchState>(&mut self, st: &S, n: NodeId, old: Logic, new: Logic) {
        let net = st.network();
        for &t in net.gated_transistors(n) {
            let tr = net.transistor(t);
            if tr.ttype.conduction(old) != tr.ttype.conduction(new) {
                Self::push(&mut self.next_queue, &mut self.queued, tr.source);
                Self::push(&mut self.next_queue, &mut self.queued, tr.drain);
            }
        }
        for &t in net.channel_transistors(n) {
            if st.conduction(t).may_conduct() {
                let other = net.transistor(t).other_end(n);
                Self::push(&mut self.next_queue, &mut self.queued, other);
            }
        }
    }

    /// Drains all pending perturbations, solving vicinities round by
    /// round until the network is stable. Equivalent to
    /// [`Engine::settle_observed`] with a no-op observer.
    pub fn settle<S: SwitchState>(&mut self, st: &mut S) -> SettleReport {
        self.settle_observed(st, |_| {})
    }

    /// Drains all pending perturbations, invoking `observer` once per
    /// solved vicinity with the group's members, incident transistors,
    /// boundary inputs and applied changes.
    pub fn settle_observed<S, F>(&mut self, st: &mut S, mut observer: F) -> SettleReport
    where
        S: SwitchState,
        F: FnMut(&GroupView<'_>),
    {
        let mut report = SettleReport::default();
        let static_locality = self.config.locality == LocalityMode::Static;
        while !self.next_queue.is_empty() {
            report.rounds += 1;
            let x_damp = report.rounds > self.config.max_rounds;
            report.oscillation_damped |= x_damp && !self.next_queue.is_empty();
            self.round_id += 1;
            std::mem::swap(&mut self.queue, &mut self.next_queue);
            // `queued` flags travel with the nodes into `queue`; clear
            // them as nodes are consumed so re-perturbation in this
            // round lands in `next_queue`.
            for qi in 0..self.queue.len() {
                let seed = self.queue[qi];
                self.queued[seed.index()] = false;
            }
            for qi in 0..self.queue.len() {
                let seed = self.queue[qi];
                if st.is_input(seed) {
                    continue; // inputs hold their externally set value
                }
                if self.solved_round[seed.index()] == self.round_id {
                    continue; // already solved as part of an earlier group
                }
                self.scratch.extract(st, seed, static_locality);
                self.scratch.steady_state(st);
                let (members, values) = (&self.scratch.members, &self.scratch.out_values);
                report.groups_solved += 1;
                if self.metrics.active {
                    self.metrics.local_group_size.observe(members.len() as u64);
                }
                self.changed_buf.clear();
                for (i, &m) in members.iter().enumerate() {
                    self.solved_round[m.index()] = self.round_id;
                    let old = st.node_state(m);
                    let mut new = values[i];
                    if x_damp {
                        new = old.lub(new);
                    }
                    if new != old {
                        st.set_node_state(m, new);
                        self.changed_buf.push((m, old, new));
                    }
                }
                report.nodes_changed += self.changed_buf.len();
                observer(&GroupView {
                    members,
                    incident_transistors: &self.scratch.incident,
                    boundary_inputs: &self.scratch.boundary_inputs,
                    changed: &self.changed_buf,
                });
                // Schedule gate-driven consequences for the next round.
                let net = st.network();
                for ci in 0..self.changed_buf.len() {
                    let (c, old, new) = self.changed_buf[ci];
                    for &t in net.gated_transistors(c) {
                        let tr = net.transistor(t);
                        if tr.ttype.conduction(old) != tr.ttype.conduction(new) {
                            Self::push(&mut self.next_queue, &mut self.queued, tr.source);
                            Self::push(&mut self.next_queue, &mut self.queued, tr.drain);
                        }
                    }
                }
            }
            self.queue.clear();
        }
        if report.rounds > 0 {
            self.metrics.local_settles += 1;
            self.metrics.local_rounds += report.rounds as u64;
            self.metrics.local_vicinity_solves += report.groups_solved as u64;
            self.metrics.local_nodes_changed += report.nodes_changed as u64;
            self.metrics.local_oscillation_damped += u64::from(report.oscillation_damped);
        }
        report
    }

    #[inline]
    fn push(queue: &mut Vec<NodeId>, queued: &mut [bool], n: NodeId) {
        if !queued[n.index()] {
            queued[n.index()] = true;
            queue.push(n);
        }
    }
}

/// Outcome of one [`PackedEngine::settle`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackedSettleReport {
    /// Number of unit-delay rounds executed.
    pub rounds: usize,
    /// Number of packed vicinity solves (each covering 1–64 lanes).
    pub groups_solved: usize,
    /// Number of per-lane node state changes applied.
    pub nodes_changed: usize,
    /// Mask of lanes in which oscillation damping was engaged.
    pub damped_lanes: u64,
}

impl PackedSettleReport {
    /// True iff any lane needed X-damping to terminate.
    #[must_use]
    pub fn oscillation_damped(self) -> bool {
        self.damped_lanes != 0
    }
}

/// Telemetry of one [`PackedEngine`], following the same
/// local-accumulate / flush-per-pattern discipline as [`EngineMetrics`].
#[derive(Clone, Debug, Default)]
struct PackedEngineMetrics {
    active: bool,
    /// `switch.packed_solves` — packed solves covering ≥ 2 lanes.
    packed_solves: Counter,
    /// `switch.scalar_fallbacks` — solves degraded to a single lane
    /// (support divergence left nothing to share).
    scalar_fallbacks: Counter,
    /// `switch.lane.occupancy` — lanes per packed solve.
    occupancy: Histogram,
    local_packed: u64,
    local_fallbacks: u64,
    local_occupancy: LocalHistogram,
}

impl PackedEngineMetrics {
    fn attach(registry: &Registry) -> Self {
        PackedEngineMetrics {
            active: registry.is_active(),
            packed_solves: registry.counter("switch.packed_solves"),
            scalar_fallbacks: registry.counter("switch.scalar_fallbacks"),
            occupancy: registry.histogram("switch.lane.occupancy"),
            ..PackedEngineMetrics::default()
        }
    }

    fn flush(&mut self) {
        if !self.active {
            return;
        }
        self.packed_solves.add(self.local_packed);
        self.scalar_fallbacks.add(self.local_fallbacks);
        self.local_packed = 0;
        self.local_fallbacks = 0;
        self.occupancy.merge_local(&mut self.local_occupancy);
    }
}

/// The bit-parallel sibling of [`Engine`]: drains per-lane perturbations
/// in unit-delay rounds, settling up to 64 fault machines per vicinity
/// solve through [`PackedScratch`].
///
/// The scheduling discipline matches the scalar engine round for round:
/// a per-node pending mask plays the role of the scalar queued flag, a
/// per-node `(round, lanes)` stamp plays the role of `solved_round`, and
/// gate-driven wake-ups propagate per changed lane (any value change
/// flips an N/P conduction class; depletion gates never wake). Lanes
/// evicted by a mid-extraction support divergence re-enter the worklist
/// from the same seed in the same round, so each lane settles exactly
/// as its scalar schedule would — the bit-identity the equivalence
/// tests assert.
#[derive(Clone, Debug)]
pub struct PackedEngine {
    scratch: PackedScratch,
    /// Scalar solver for degenerate (single-lane) solves: plane
    /// operations cost the same at one active lane as at sixty-four,
    /// so routing them through the scalar fixed point keeps the packed
    /// path competitive when occupancy is low.
    scalar: Scratch,
    /// Nodes to process this round.
    queue: Vec<NodeId>,
    /// Nodes scheduled for the next round.
    next_queue: Vec<NodeId>,
    /// Per-node lanes scheduled for the next round; nonzero iff the
    /// node is in `next_queue`.
    pending: Vec<u64>,
    /// Per-node lanes awaiting processing in the current round.
    todo: Vec<u64>,
    /// Per-node lanes already solved in the round stamped below.
    solved_mask: Vec<u64>,
    solved_round: Vec<u64>,
    round_id: u64,
    config: EngineConfig,
    metrics: PackedEngineMetrics,
}

impl PackedEngine {
    /// Creates a packed engine sized for `net`, with default
    /// configuration.
    #[must_use]
    pub fn new(net: &Network) -> Self {
        PackedEngine::with_config(net, EngineConfig::default())
    }

    /// Creates a packed engine sized for `net` with an explicit
    /// configuration. The packed path always uses dynamic locality;
    /// callers wanting [`LocalityMode::Static`] must use the scalar
    /// engine.
    #[must_use]
    pub fn with_config(net: &Network, config: EngineConfig) -> Self {
        PackedEngine {
            scratch: PackedScratch::new(net.num_nodes(), net.num_transistors()),
            scalar: Scratch::new(net.num_nodes(), net.num_transistors()),
            queue: Vec::new(),
            next_queue: Vec::new(),
            pending: vec![0; net.num_nodes()],
            todo: vec![0; net.num_nodes()],
            solved_mask: vec![0; net.num_nodes()],
            solved_round: vec![0; net.num_nodes()],
            round_id: 0,
            config,
            metrics: PackedEngineMetrics::default(),
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Publishes this engine's activity (`switch.packed_solves`,
    /// `switch.scalar_fallbacks`, `switch.lane.occupancy`) into
    /// `registry`; see [`Engine::attach_metrics`] for the discipline.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        self.metrics = PackedEngineMetrics::attach(registry);
    }

    /// Folds locally accumulated activity into the attached registry.
    pub fn flush_metrics(&mut self) {
        self.metrics.flush();
    }

    /// True iff perturbations are pending in any lane.
    #[must_use]
    pub fn has_pending(&self) -> bool {
        !self.next_queue.is_empty()
    }

    /// Discards every pending perturbation in every lane.
    pub fn clear_pending(&mut self) {
        for &n in &self.next_queue {
            self.pending[n.index()] = 0;
        }
        self.next_queue.clear();
    }

    /// Schedules node `n` for (re-)evaluation in the given lanes at the
    /// next settle. Input-classified lanes are filtered out at
    /// processing time, so perturbing them is harmless.
    #[inline]
    pub fn perturb(&mut self, n: NodeId, lanes: u64) {
        if lanes == 0 {
            return;
        }
        let e = &mut self.pending[n.index()];
        if *e == 0 {
            self.next_queue.push(n);
        }
        *e |= lanes;
    }

    /// Drains all pending perturbations across every lane, solving
    /// packed vicinities round by round until all machines are stable.
    pub fn settle<P: PackedState>(&mut self, st: &mut P) -> PackedSettleReport {
        let mut report = PackedSettleReport::default();
        let all_lanes = st.lanes();
        while !self.next_queue.is_empty() {
            report.rounds += 1;
            let x_damp = report.rounds > self.config.max_rounds;
            if x_damp {
                for &n in &self.next_queue {
                    report.damped_lanes |= self.pending[n.index()] & all_lanes;
                }
            }
            self.round_id += 1;
            for qi in 0..self.next_queue.len() {
                let n = self.next_queue[qi];
                self.todo[n.index()] = self.pending[n.index()];
                self.pending[n.index()] = 0;
            }
            std::mem::swap(&mut self.queue, &mut self.next_queue);
            let mut qi = 0;
            while qi < self.queue.len() {
                let seed = self.queue[qi];
                qi += 1;
                let mut m = self.todo[seed.index()];
                self.todo[seed.index()] = 0;
                m &= all_lanes & !st.is_input_lanes(seed);
                if self.solved_round[seed.index()] == self.round_id {
                    m &= !self.solved_mask[seed.index()];
                }
                if m == 0 {
                    continue;
                }
                if m & (m - 1) == 0 {
                    // One active lane: the packed fixed point would run
                    // full-width plane operations for it; the scalar
                    // solver computes the identical result cheaper.
                    self.solve_lane_scalar(st, seed, m, x_damp, &mut report);
                    continue;
                }
                let (kept, evicted) = self.scratch.solve(st, seed, m);
                if evicted != 0 {
                    // Diverged lanes re-extract from the same seed in the
                    // same round, preserving each lane's scalar schedule.
                    self.todo[seed.index()] |= evicted;
                    self.queue.push(seed);
                }
                report.groups_solved += 1;
                if self.metrics.active {
                    let occ = u64::from(kept.count_ones());
                    self.metrics.local_occupancy.observe(occ);
                    if occ >= 2 {
                        self.metrics.local_packed += 1;
                    } else {
                        self.metrics.local_fallbacks += 1;
                    }
                }
                for i in 0..self.scratch.members.len() {
                    let member = self.scratch.members[i];
                    if self.solved_round[member.index()] == self.round_id {
                        self.solved_mask[member.index()] |= kept;
                    } else {
                        self.solved_round[member.index()] = self.round_id;
                        self.solved_mask[member.index()] = kept;
                    }
                    let old = st.node_state(member).masked(kept);
                    let mut new = self.scratch.out_values[i];
                    if x_damp {
                        new = old.lub(new);
                    }
                    let ch = old.diff_mask(new) & kept;
                    if ch == 0 {
                        continue;
                    }
                    st.set_node_state(member, ch, new);
                    report.nodes_changed += ch.count_ones() as usize;
                    // Gate-driven wake-ups for the next round: every
                    // value change flips an N/P conduction class, and
                    // depletion gates never change class.
                    let net = st.network();
                    for &t in net.gated_transistors(member) {
                        let tr = net.transistor(t);
                        if tr.ttype == TransistorType::D {
                            continue;
                        }
                        self.perturb_next(tr.source, ch);
                        self.perturb_next(tr.drain, ch);
                    }
                }
            }
            self.queue.clear();
        }
        report
    }

    /// Solves `seed`'s vicinity for exactly one lane through the scalar
    /// solver, with the same round bookkeeping, damping and wake-ups as
    /// the packed branch. Bit-identical to a one-lane packed solve (the
    /// equivalence tests pin the two solvers to each other), so the
    /// dispatch is invisible in the results — only
    /// `switch.scalar_fallbacks` sees it.
    fn solve_lane_scalar<P: PackedState>(
        &mut self,
        st: &mut P,
        seed: NodeId,
        bit: u64,
        x_damp: bool,
        report: &mut PackedSettleReport,
    ) {
        let lane = bit.trailing_zeros();
        {
            let view = LaneView { st: &*st, lane };
            self.scalar.extract(&view, seed, false);
            self.scalar.steady_state(&view);
        }
        report.groups_solved += 1;
        if self.metrics.active {
            self.metrics.local_occupancy.observe(1);
            self.metrics.local_fallbacks += 1;
        }
        for i in 0..self.scalar.members.len() {
            let member = self.scalar.members[i];
            if self.solved_round[member.index()] == self.round_id {
                self.solved_mask[member.index()] |= bit;
            } else {
                self.solved_round[member.index()] = self.round_id;
                self.solved_mask[member.index()] = bit;
            }
            let old = st
                .node_state(member)
                .get(lane)
                .expect("chunk lane holds a value");
            let mut new = self.scalar.out_values[i];
            if x_damp {
                new = old.lub(new);
            }
            if new == old {
                continue;
            }
            let mut pv = PackedLogic::default();
            pv.set(lane, new);
            st.set_node_state(member, bit, pv);
            report.nodes_changed += 1;
            let net = st.network();
            for &t in net.gated_transistors(member) {
                let tr = net.transistor(t);
                if tr.ttype == TransistorType::D {
                    continue;
                }
                self.perturb_next(tr.source, bit);
                self.perturb_next(tr.drain, bit);
            }
        }
    }

    #[inline]
    fn perturb_next(&mut self, n: NodeId, lanes: u64) {
        let e = &mut self.pending[n.index()];
        if *e == 0 {
            self.next_queue.push(n);
        }
        *e |= lanes;
    }
}

/// A single lane of a [`PackedState`] exposed as a read-only scalar
/// [`SwitchState`] — the adapter behind the packed engine's
/// degenerate-solve fast path. The solver only reads; writes go through
/// the packed state directly with a one-bit lane mask.
struct LaneView<'a, P> {
    st: &'a P,
    lane: u32,
}

impl<P: PackedState> SwitchState for LaneView<'_, P> {
    fn network(&self) -> &Network {
        self.st.network()
    }

    fn node_state(&self, n: NodeId) -> Logic {
        self.st
            .node_state(n)
            .get(self.lane)
            .expect("chunk lane holds a value")
    }

    fn set_node_state(&mut self, _n: NodeId, _v: Logic) {
        unreachable!("LaneView is the solver's read-only view");
    }

    fn is_input(&self, n: NodeId) -> bool {
        self.st.is_input_lanes(n) & (1 << self.lane) != 0
    }

    fn conduction(&self, t: TransistorId) -> Conduction {
        let pc = self.st.conduction(t);
        let bit = 1 << self.lane;
        if pc.closed & bit != 0 {
            Conduction::Closed
        } else if pc.maybe & bit != 0 {
            Conduction::Maybe
        } else {
            Conduction::Open
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::DenseState;
    use fmossim_netlist::{Drive, Size, TransistorType};

    fn cmos_inverter(
        net: &mut Network,
        name: &str,
        input: NodeId,
        vdd: NodeId,
        gnd: NodeId,
    ) -> NodeId {
        let out = net.add_storage(name, Size::S1);
        net.add_transistor(TransistorType::P, Drive::D2, input, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, input, out, gnd);
        out
    }

    fn rails(net: &mut Network) -> (NodeId, NodeId) {
        (
            net.add_input("Vdd", Logic::H),
            net.add_input("Gnd", Logic::L),
        )
    }

    #[test]
    fn inverter_chain_settles_in_order() {
        let mut net = Network::new();
        let (vdd, gnd) = rails(&mut net);
        let a = net.add_input("A", Logic::L);
        let x1 = cmos_inverter(&mut net, "X1", a, vdd, gnd);
        let x2 = cmos_inverter(&mut net, "X2", x1, vdd, gnd);
        let x3 = cmos_inverter(&mut net, "X3", x2, vdd, gnd);

        let mut st = DenseState::new(&net);
        let mut eng = Engine::new(&net);
        eng.perturb_all_storage(&st);
        let rep = eng.settle(&mut st);
        assert!(!rep.oscillation_damped);
        assert_eq!(st.node_state(x1), Logic::H);
        assert_eq!(st.node_state(x2), Logic::L);
        assert_eq!(st.node_state(x3), Logic::H);

        // Flip the input: changes ripple through, one gate per round.
        let rep0 = eng.settle(&mut st); // no pending work
        assert_eq!(rep0.rounds, 0);
        eng.apply_input(&mut st, a, Logic::H);
        let rep = eng.settle(&mut st);
        assert_eq!(st.node_state(x1), Logic::L);
        assert_eq!(st.node_state(x2), Logic::H);
        assert_eq!(st.node_state(x3), Logic::L);
        assert!(rep.rounds >= 3, "three gate delays, got {}", rep.rounds);
    }

    #[test]
    fn apply_input_same_value_is_noop() {
        let mut net = Network::new();
        let (vdd, gnd) = rails(&mut net);
        let a = net.add_input("A", Logic::L);
        cmos_inverter(&mut net, "X1", a, vdd, gnd);
        let mut st = DenseState::new(&net);
        let mut eng = Engine::new(&net);
        eng.apply_input(&mut st, a, Logic::L);
        assert!(!eng.has_pending());
    }

    #[test]
    fn ring_oscillator_is_damped_to_x() {
        let mut net = Network::new();
        let (vdd, gnd) = rails(&mut net);
        // Three inverters in a ring.
        let pre: Vec<NodeId> = (0..3)
            .map(|i| net.add_storage(format!("R{i}"), Size::S1))
            .collect();
        for i in 0..3 {
            let inp = pre[i];
            let out = pre[(i + 1) % 3];
            net.add_transistor(TransistorType::P, Drive::D2, inp, vdd, out);
            net.add_transistor(TransistorType::N, Drive::D2, inp, out, gnd);
        }
        let mut st = DenseState::new(&net);
        // Seed a definite state so it genuinely oscillates.
        st.force(pre[0], Logic::L);
        st.force(pre[1], Logic::H);
        st.force(pre[2], Logic::L);
        let mut eng = Engine::with_config(
            &net,
            EngineConfig {
                max_rounds: 50,
                ..EngineConfig::default()
            },
        );
        for &n in &pre {
            eng.perturb(n);
        }
        let rep = eng.settle(&mut st);
        assert!(rep.oscillation_damped);
        for &n in &pre {
            assert_eq!(st.node_state(n), Logic::X, "ring node forced to X");
        }
    }

    #[test]
    fn dynamic_latch_holds_value_across_clock() {
        // Pass transistor into an inverter: classic dynamic latch.
        let mut net = Network::new();
        let (vdd, gnd) = rails(&mut net);
        let d = net.add_input("D", Logic::H);
        let clk = net.add_input("CLK", Logic::H);
        let store = net.add_storage("STORE", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, clk, d, store);
        let q = cmos_inverter(&mut net, "Q", store, vdd, gnd);

        let mut st = DenseState::new(&net);
        let mut eng = Engine::new(&net);
        eng.perturb_all_storage(&st);
        eng.settle(&mut st);
        assert_eq!(st.node_state(store), Logic::H);
        assert_eq!(st.node_state(q), Logic::L);

        // Close the latch, then change D: stored value must persist.
        eng.apply_input(&mut st, clk, Logic::L);
        eng.settle(&mut st);
        eng.apply_input(&mut st, d, Logic::L);
        eng.settle(&mut st);
        assert_eq!(st.node_state(store), Logic::H, "charge retained");
        assert_eq!(st.node_state(q), Logic::L);

        // Reopen: new value flows in.
        eng.apply_input(&mut st, clk, Logic::H);
        eng.settle(&mut st);
        assert_eq!(st.node_state(store), Logic::L);
        assert_eq!(st.node_state(q), Logic::H);
    }

    #[test]
    fn observer_sees_groups_and_changes() {
        let mut net = Network::new();
        let (vdd, gnd) = rails(&mut net);
        let a = net.add_input("A", Logic::L);
        let x1 = cmos_inverter(&mut net, "X1", a, vdd, gnd);
        let mut st = DenseState::new(&net);
        let mut eng = Engine::new(&net);
        eng.perturb(x1);
        let mut seen_members = Vec::new();
        let mut seen_changes = Vec::new();
        eng.settle_observed(&mut st, |g| {
            seen_members.extend_from_slice(g.members);
            seen_changes.extend_from_slice(g.changed);
            assert!(!g.boundary_inputs.is_empty());
            assert_eq!(g.incident_gates(&net).count(), g.incident_transistors.len());
        });
        assert_eq!(seen_members, vec![x1]);
        assert_eq!(seen_changes, vec![(x1, Logic::X, Logic::H)]);
    }

    #[test]
    fn static_and_dynamic_locality_agree_on_results() {
        let mut net = Network::new();
        let (vdd, gnd) = rails(&mut net);
        let a = net.add_input("A", Logic::L);
        let b = net.add_input("B", Logic::H);
        let x1 = cmos_inverter(&mut net, "X1", a, vdd, gnd);
        let x2 = cmos_inverter(&mut net, "X2", b, vdd, gnd);
        // A pass gate (open for now) between the two inverter outputs.
        let en = net.add_input("EN", Logic::L);
        net.add_transistor(TransistorType::N, Drive::D2, en, x1, x2);

        for locality in [LocalityMode::Dynamic, LocalityMode::Static] {
            let mut st = DenseState::new(&net);
            let mut eng = Engine::with_config(
                &net,
                EngineConfig {
                    locality,
                    ..EngineConfig::default()
                },
            );
            eng.perturb_all_storage(&st);
            eng.settle(&mut st);
            assert_eq!(st.node_state(x1), Logic::H, "{locality:?}");
            assert_eq!(st.node_state(x2), Logic::L, "{locality:?}");
        }
    }

    use crate::state::{PackedDenseState, PackedState};

    /// Settles a packed broadcast of `lane_forces.len()` lanes and the
    /// corresponding per-lane scalar engines, asserting bit-identical
    /// final states and per-lane damping flags.
    fn packed_vs_scalar_settle(
        net: &Network,
        lane_forces: &[Vec<(NodeId, Logic)>],
        max_rounds: usize,
    ) {
        let cfg = EngineConfig {
            max_rounds,
            ..EngineConfig::default()
        };
        let base = DenseState::new(net);
        let mut packed =
            PackedDenseState::broadcast(&base, u32::try_from(lane_forces.len()).unwrap());
        for (lane, forces) in lane_forces.iter().enumerate() {
            for &(n, v) in forces {
                packed.force_lane(n, u32::try_from(lane).unwrap(), v);
            }
        }
        let mut peng = PackedEngine::with_config(net, cfg);
        for n in net.node_ids() {
            peng.perturb(n, packed.lanes() & !packed.is_input_lanes(n));
        }
        let prep = peng.settle(&mut packed);
        for (lane, forces) in lane_forces.iter().enumerate() {
            let lane = u32::try_from(lane).unwrap();
            let mut st = DenseState::new(net);
            for &(n, v) in forces {
                st.force(n, v);
            }
            let mut eng = Engine::with_config(net, cfg);
            eng.perturb_all_storage(&st);
            let rep = eng.settle(&mut st);
            for n in net.node_ids() {
                if st.is_input(n) {
                    continue;
                }
                assert_eq!(
                    packed.lane_value(n, lane),
                    st.node_state(n),
                    "lane {lane}, node {}",
                    n.index()
                );
            }
            assert_eq!(
                prep.damped_lanes & (1 << lane) != 0,
                rep.oscillation_damped,
                "lane {lane} damping"
            );
        }
    }

    #[test]
    fn packed_engine_matches_scalar_on_inverter_chain() {
        let mut net = Network::new();
        let (vdd, gnd) = rails(&mut net);
        let a = net.add_input("A", Logic::L);
        let x1 = cmos_inverter(&mut net, "X1", a, vdd, gnd);
        let x2 = cmos_inverter(&mut net, "X2", x1, vdd, gnd);
        cmos_inverter(&mut net, "X3", x2, vdd, gnd);
        packed_vs_scalar_settle(
            &net,
            &[
                vec![],
                vec![(a, Logic::H)],
                vec![(a, Logic::X)],
                vec![(a, Logic::H), (x1, Logic::H)],
            ],
            400,
        );
    }

    #[test]
    fn packed_engine_matches_scalar_on_dynamic_latch() {
        let mut net = Network::new();
        let (vdd, gnd) = rails(&mut net);
        let d = net.add_input("D", Logic::H);
        let clk = net.add_input("CLK", Logic::H);
        let store = net.add_storage("STORE", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, clk, d, store);
        cmos_inverter(&mut net, "Q", store, vdd, gnd);
        packed_vs_scalar_settle(
            &net,
            &[
                vec![],
                vec![(clk, Logic::L), (store, Logic::H)],
                vec![(clk, Logic::L), (store, Logic::L)],
                vec![(d, Logic::L)],
                vec![(clk, Logic::X)],
            ],
            400,
        );
    }

    #[test]
    fn packed_engine_damps_oscillating_lanes_only() {
        let mut net = Network::new();
        let (vdd, gnd) = rails(&mut net);
        let pre: Vec<NodeId> = (0..3)
            .map(|i| net.add_storage(format!("R{i}"), Size::S1))
            .collect();
        for i in 0..3 {
            let inp = pre[i];
            let out = pre[(i + 1) % 3];
            net.add_transistor(TransistorType::P, Drive::D2, inp, vdd, out);
            net.add_transistor(TransistorType::N, Drive::D2, inp, out, gnd);
        }
        // Lane 0 seeds a definite oscillation; lane 1 starts all-X and
        // settles immediately. Only lane 0 must be damped.
        packed_vs_scalar_settle(
            &net,
            &[
                vec![(pre[0], Logic::L), (pre[1], Logic::H), (pre[2], Logic::L)],
                vec![],
            ],
            50,
        );
    }

    #[test]
    fn packed_engine_respects_forced_input_lanes() {
        let mut net = Network::new();
        let (vdd, gnd) = rails(&mut net);
        let a = net.add_input("A", Logic::H);
        let out = cmos_inverter(&mut net, "OUT", a, vdd, gnd);
        let base = DenseState::new(&net);
        let mut packed = PackedDenseState::broadcast(&base, 2);
        // Lane 1: OUT is stuck-at-H (input-classified with value H).
        packed.force_input_lane(out, 1, Logic::H);
        let mut peng = PackedEngine::new(&net);
        for n in net.node_ids() {
            peng.perturb(n, packed.lanes() & !packed.is_input_lanes(n));
        }
        let rep = peng.settle(&mut packed);
        assert_eq!(rep.damped_lanes, 0);
        assert_eq!(packed.lane_value(out, 0), Logic::L);
        assert_eq!(packed.lane_value(out, 1), Logic::H, "stuck lane holds");
    }

    #[test]
    fn packed_engine_metrics_count_solves_and_occupancy() {
        let mut net = Network::new();
        let (vdd, gnd) = rails(&mut net);
        let a = net.add_input("A", Logic::L);
        let out = cmos_inverter(&mut net, "OUT", a, vdd, gnd);
        let base = DenseState::new(&net);
        let mut packed = PackedDenseState::broadcast(&base, 4);
        let registry = Registry::new();
        let mut peng = PackedEngine::new(&net);
        peng.attach_metrics(&registry);
        peng.perturb(out, packed.lanes());
        peng.settle(&mut packed);
        peng.flush_metrics();
        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("switch.packed_solves").copied(), Some(1));
        assert_eq!(
            snap.counters.get("switch.scalar_fallbacks").copied(),
            Some(0)
        );
        let occ = snap
            .histograms
            .get("switch.lane.occupancy")
            .expect("occupancy histogram");
        assert_eq!(occ.count, 1);
        assert_eq!(occ.sum, 4, "one solve covering all four lanes");
    }

    #[test]
    fn settle_report_merge() {
        let a = SettleReport {
            rounds: 1,
            groups_solved: 2,
            nodes_changed: 3,
            oscillation_damped: false,
        };
        let b = SettleReport {
            rounds: 4,
            groups_solved: 5,
            nodes_changed: 6,
            oscillation_damped: true,
        };
        let m = a.merged(b);
        assert_eq!(m.rounds, 5);
        assert_eq!(m.groups_solved, 7);
        assert_eq!(m.nodes_changed, 9);
        assert!(m.oscillation_damped);
    }
}
