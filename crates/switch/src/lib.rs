//! Switch-level logic simulation (the MOSSIM II substrate of FMOSSIM).
//!
//! This crate computes the behaviour of a switch-level network
//! ([`fmossim_netlist::Network`]) for each change in network inputs by
//! repeatedly computing the *steady-state response* of the network until
//! a stable state is reached (Bryant, IEEE ToC 1984; Bryant & Schuster,
//! DAC 1985 §4).
//!
//! The key abstractions:
//!
//! * [`SwitchState`] — a read/write view of node states. The good
//!   circuit uses a dense vector ([`DenseState`]); fault simulators
//!   layer per-circuit overrides and divergence records on top without
//!   copying the network.
//! * [`Engine`] — the event-driven unit-delay scheduler: perturbed
//!   nodes are grouped into *vicinities* (sets of storage nodes
//!   connected by paths of possibly-conducting transistors that do not
//!   pass through input nodes), each vicinity's steady state is solved,
//!   and nodes whose state changed retrigger the transistors they gate.
//! * [`LogicSim`] — a convenient wrapper owning a [`DenseState`] plus an
//!   [`Engine`] for plain (fault-free) simulation.
//! * [`PackedState`] / [`PackedEngine`] — the bit-parallel (PPSFP-style)
//!   path: up to 64 fault machines encoded across two `u64` planes per
//!   node ([`PackedLogic`]) settle together in one pass of bitwise
//!   plane operations, with lanes evicted to a re-solve whenever their
//!   vicinity structure diverges. Behind the `simd` cargo feature
//!   (nightly only) the strength-plane operations are specialized with
//!   `std::simd`.
//!
//! # The steady-state solver
//!
//! For each vicinity the solver computes monotone fixed points over the
//! strength lattice λ < κ1 < … < κ7 < γ1 < … < γ7 < ω (see
//! [`fmossim_netlist::Strength`]):
//!
//! * `defS[n]` — strength of the strongest signal *definitely present*
//!   at `n` (only definitely-conducting transistors propagate it).
//! * `pos1[n]`, `pos0[n]` — strongest signal *possibly present* at `n`
//!   carrying value {1,X} / {0,X} (X-state transistors also propagate;
//!   blocked at an intermediate node `m` when strictly weaker than
//!   `defS[m]`).
//! * `def1[n]`, `def0[n]` — strongest signal *definitely present and
//!   definitely carrying* value 1 / 0 (definite conduction from definite
//!   sources; propagates through `m` only when nothing possibly stronger
//!   exists at `m`).
//!
//! A node resolves to **1** iff `def1 > pos0`, to **0** iff
//! `def0 > pos1`, and to **X** otherwise. On networks whose transistor
//! states and source values are all definite this is exactly Bryant's
//! "strongest signal wins, conflicting ties give X" rule, reproducing
//! charge sharing by node size, ratioed logic by transistor strength,
//! bidirectional pass transistors and precharged buses. When X states
//! are present the rule is a sound (never wrongly definite),
//! slightly conservative approximation of the ternary extension.
//!
//! # Example
//!
//! ```
//! use fmossim_netlist::{Network, Logic, TransistorType, Drive, Size};
//! use fmossim_switch::LogicSim;
//!
//! // CMOS inverter.
//! let mut net = Network::new();
//! let vdd = net.add_input("Vdd", Logic::H);
//! let gnd = net.add_input("Gnd", Logic::L);
//! let a = net.add_input("A", Logic::L);
//! let out = net.add_storage("OUT", Size::S1);
//! net.add_transistor(TransistorType::P, Drive::D2, a, vdd, out);
//! net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
//!
//! let mut sim = LogicSim::new(&net);
//! sim.settle();
//! assert_eq!(sim.get(out), Logic::H);
//! sim.set_input(a, Logic::H);
//! sim.settle();
//! assert_eq!(sim.get(out), Logic::L);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(feature = "simd", feature(portable_simd))]

mod engine;
mod sim;
mod solve;
mod state;
mod tape;
mod trace;

pub use engine::{
    Engine, EngineConfig, GroupView, LocalityMode, PackedEngine, PackedSettleReport, SettleReport,
};
pub use sim::LogicSim;
pub use solve::{GroupOutcome, PackedOutcome, PackedScratch, Scratch};
pub use state::{
    DenseState, PackedConduction, PackedDenseState, PackedLogic, PackedState, SwitchState,
};
pub use tape::{SettleTape, TapeGroup};
pub use trace::Trace;
