//! Settle tapes: compact logs of the solved vicinities of one settle,
//! replayable without re-running the solver.
//!
//! The concurrent fault simulator derives *all* faulty-circuit work
//! from the good machine's activity: which vicinities were solved,
//! what their support was, which node values changed. A [`SettleTape`]
//! captures exactly that — one entry per solved group, in solve
//! order — so a consumer can re-derive triggering and state deltas
//! without paying for the solver again. Recording piggybacks on the
//! existing [`Engine::settle_observed`](crate::Engine::settle_observed)
//! observer:
//!
//! ```
//! use fmossim_netlist::{Network, Logic, Size, Drive, TransistorType};
//! use fmossim_switch::{DenseState, Engine, SettleTape};
//!
//! let mut net = Network::new();
//! let vdd = net.add_input("Vdd", Logic::H);
//! let gnd = net.add_input("Gnd", Logic::L);
//! let a = net.add_input("A", Logic::L);
//! let out = net.add_storage("OUT", Size::S1);
//! net.add_transistor(TransistorType::P, Drive::D2, a, vdd, out);
//! net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
//!
//! let mut st = DenseState::new(&net);
//! let mut eng = Engine::new(&net);
//! eng.perturb_all_storage(&st);
//! let mut tape = SettleTape::default();
//! let rep = eng.settle_observed(&mut st, |g| tape.push_group(&net, g));
//! tape.finish(&rep);
//! assert_eq!(tape.num_groups(), rep.groups_solved);
//! let g = tape.group(0);
//! assert_eq!(g.members, &[out]);
//! assert_eq!(g.changed, &[(out, Logic::X, Logic::H)]);
//! ```
//!
//! Terminology note: a *tape* is a replay log of solver activity; a
//! *trace* ([`Trace`](crate::Trace)) is a waveform of node values over
//! time. The two serve different masters — tapes feed re-execution,
//! traces feed waveform viewers.

use crate::engine::{GroupView, SettleReport};
use fmossim_netlist::{Logic, Network, NodeId};

/// One solved vicinity, read back from a [`SettleTape`].
///
/// `members` and `support_rest` together form the group's *support*:
/// the set of nodes at which a divergence record or fault attachment
/// means a faulty circuit must re-simulate this event privately
/// (members, gates of incident transistors, boundary inputs).
#[derive(Clone, Copy, Debug)]
pub struct TapeGroup<'a> {
    /// Storage nodes of the vicinity.
    pub members: &'a [NodeId],
    /// The rest of the support: gates of incident transistors and
    /// boundary inputs (members excluded; may contain duplicates —
    /// consumers dedup, exactly as with a live [`GroupView`]).
    pub support_rest: &'a [NodeId],
    /// State changes this solve applied: `(node, old, new)`.
    pub changed: &'a [(NodeId, Logic, Logic)],
}

/// Span of one group in the tape's flat arrays (end offsets; the start
/// is the previous group's end).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct GroupSpan {
    members_end: u32,
    support_end: u32,
    changed_end: u32,
}

/// A replayable log of one settle: every solved vicinity in solve
/// order, with its support and applied state changes, stored in flat
/// arrays (three `Vec`s plus one span per group — no per-group
/// allocation).
#[derive(Clone, Debug, Default)]
pub struct SettleTape {
    members: Vec<NodeId>,
    support_rest: Vec<NodeId>,
    changed: Vec<(NodeId, Logic, Logic)>,
    spans: Vec<GroupSpan>,
    /// True iff the recorded settle engaged oscillation damping.
    damped: bool,
    /// Unit-delay rounds the recorded settle executed.
    rounds: usize,
}

impl SettleTape {
    /// Appends one solved group from a live observer callback.
    /// `net` is needed to resolve incident transistors to their gates.
    pub fn push_group(&mut self, net: &Network, g: &GroupView<'_>) {
        self.members.extend_from_slice(g.members);
        self.support_rest.extend(g.incident_gates(net));
        self.support_rest.extend_from_slice(g.boundary_inputs);
        self.changed.extend_from_slice(g.changed);
        self.spans.push(GroupSpan {
            members_end: u32::try_from(self.members.len()).expect("tape members fit u32"),
            support_end: u32::try_from(self.support_rest.len()).expect("tape support fits u32"),
            changed_end: u32::try_from(self.changed.len()).expect("tape changes fit u32"),
        });
    }

    /// Stamps the settle-level outcome (damping, round count) once the
    /// settle completes.
    pub fn finish(&mut self, report: &SettleReport) {
        self.damped = report.oscillation_damped;
        self.rounds = report.rounds;
    }

    /// Number of recorded groups.
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.spans.len()
    }

    /// True iff the settle recorded no groups (nothing was perturbed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// True iff the recorded settle engaged oscillation damping.
    #[must_use]
    pub fn damped(&self) -> bool {
        self.damped
    }

    /// Unit-delay rounds the recorded settle executed.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The `i`-th recorded group, in solve order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_groups()`.
    #[must_use]
    pub fn group(&self, i: usize) -> TapeGroup<'_> {
        let start = if i == 0 {
            GroupSpan::default()
        } else {
            self.spans[i - 1]
        };
        let end = self.spans[i];
        TapeGroup {
            members: &self.members[start.members_end as usize..end.members_end as usize],
            support_rest: &self.support_rest[start.support_end as usize..end.support_end as usize],
            changed: &self.changed[start.changed_end as usize..end.changed_end as usize],
        }
    }

    /// Iterates over the recorded groups in solve order.
    pub fn groups(&self) -> impl Iterator<Item = TapeGroup<'_>> {
        (0..self.num_groups()).map(|i| self.group(i))
    }

    /// Approximate heap footprint in bytes (capacity planning for
    /// batched recording).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.members.len() * std::mem::size_of::<NodeId>()
            + self.support_rest.len() * std::mem::size_of::<NodeId>()
            + self.changed.len() * std::mem::size_of::<(NodeId, Logic, Logic)>()
            + self.spans.len() * std::mem::size_of::<GroupSpan>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::DenseState;
    use crate::Engine;
    use fmossim_netlist::{Drive, Size, TransistorType};

    fn inverter_chain() -> (Network, Vec<NodeId>) {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::L);
        let mut outs = Vec::new();
        let mut prev = a;
        for i in 0..3 {
            let out = net.add_storage(format!("X{i}"), Size::S1);
            net.add_transistor(TransistorType::P, Drive::D2, prev, vdd, out);
            net.add_transistor(TransistorType::N, Drive::D2, prev, out, gnd);
            outs.push(out);
            prev = out;
        }
        (net, outs)
    }

    #[test]
    fn tape_mirrors_observer() {
        let (net, _) = inverter_chain();
        let mut st = DenseState::new(&net);
        let mut eng = Engine::new(&net);
        eng.perturb_all_storage(&st);
        let mut tape = SettleTape::default();
        let mut live_members = Vec::new();
        let mut live_changed = Vec::new();
        let rep = eng.settle_observed(&mut st, |g| {
            live_members.extend_from_slice(g.members);
            live_changed.extend_from_slice(g.changed);
            tape.push_group(&net, g);
        });
        tape.finish(&rep);
        assert_eq!(tape.num_groups(), rep.groups_solved);
        assert!(!tape.damped());
        assert_eq!(tape.rounds(), rep.rounds);
        let tape_members: Vec<NodeId> = tape.groups().flat_map(|g| g.members.to_vec()).collect();
        let tape_changed: Vec<(NodeId, Logic, Logic)> =
            tape.groups().flat_map(|g| g.changed.to_vec()).collect();
        assert_eq!(tape_members, live_members);
        assert_eq!(tape_changed, live_changed);
        // Each group's support carries the incident gates and boundary
        // inputs: an inverter's output group sees its driving gate.
        assert!(tape.groups().all(|g| !g.support_rest.is_empty()));
        assert!(tape.heap_bytes() > 0);
    }

    #[test]
    fn empty_tape_reads_clean() {
        let tape = SettleTape::default();
        assert!(tape.is_empty());
        assert_eq!(tape.num_groups(), 0);
        assert_eq!(tape.groups().count(), 0);
        assert!(!tape.damped());
    }
}
