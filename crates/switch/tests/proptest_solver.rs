//! Property tests for the steady-state solver and settle loop.
//!
//! The central invariants:
//!
//! 1. **Fixed point**: after a settle, re-perturbing every storage node
//!    and settling again changes nothing.
//! 2. **Determinism**: two simulators fed the same inputs agree on
//!    every node state.
//! 3. **Ternary monotonicity**: refining an `X` input to a definite
//!    value can only refine node states — any node that was definite
//!    with the `X` input keeps exactly that value.
//! 4. **Locality ablation equivalence**: static (DC-component) and
//!    dynamic (conduction-bounded) vicinity extraction produce the same
//!    states.

use fmossim_netlist::{Drive, Logic, Network, NodeId, Size, TransistorType};
use fmossim_switch::{EngineConfig, LocalityMode, LogicSim};
use proptest::prelude::*;

/// A compact recipe for a random network that proptest can shrink.
#[derive(Clone, Debug)]
struct NetRecipe {
    storage: usize,
    inputs: Vec<Logic>,
    /// (type, strength, gate, source, drain) — indices mod node count.
    transistors: Vec<(u8, u8, u16, u16, u16)>,
}

fn arb_recipe() -> impl Strategy<Value = NetRecipe> {
    (
        1usize..10,
        prop::collection::vec(
            prop_oneof![Just(Logic::L), Just(Logic::H), Just(Logic::X)],
            1..6,
        ),
        prop::collection::vec(
            (0u8..3, 1u8..3, any::<u16>(), any::<u16>(), any::<u16>()),
            1..25,
        ),
    )
        .prop_map(|(storage, inputs, transistors)| NetRecipe {
            storage,
            inputs,
            transistors,
        })
}

fn build(recipe: &NetRecipe) -> (Network, Vec<NodeId>) {
    let mut net = Network::new();
    net.add_input("Vdd", Logic::H);
    net.add_input("Gnd", Logic::L);
    let mut input_ids = Vec::new();
    for (i, v) in recipe.inputs.iter().enumerate() {
        input_ids.push(net.add_input(format!("I{i}"), *v));
    }
    for i in 0..recipe.storage {
        net.add_storage(
            format!("S{i}"),
            if i % 3 == 0 { Size::S2 } else { Size::S1 },
        );
    }
    let n = net.num_nodes();
    let ids: Vec<NodeId> = net.node_ids().collect();
    for &(ty, g, a, b, c) in &recipe.transistors {
        let ttype = [TransistorType::N, TransistorType::P, TransistorType::D][ty as usize];
        let strength = Drive::new(g).expect("in range");
        net.add_transistor(
            ttype,
            strength,
            ids[a as usize % n],
            ids[b as usize % n],
            ids[c as usize % n],
        );
    }
    (net, input_ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn settle_reaches_fixed_point(recipe in arb_recipe()) {
        let (net, _) = build(&recipe);
        let mut sim = LogicSim::new(&net);
        let rep1 = sim.settle();
        prop_assume!(!rep1.oscillation_damped);
        let before: Vec<Logic> = sim.states().to_vec();
        // Re-evaluating every vicinity from a stable state must be a
        // no-op: settled states are fixed points of the steady-state
        // response.
        let rep2 = sim.resettle_all();
        prop_assert_eq!(rep2.nodes_changed, 0);
        prop_assert_eq!(before, sim.states().to_vec());
    }

    #[test]
    fn settle_is_deterministic(recipe in arb_recipe()) {
        let (net, _) = build(&recipe);
        let mut a = LogicSim::new(&net);
        let mut b = LogicSim::new(&net);
        a.settle();
        b.settle();
        prop_assert_eq!(a.states(), b.states());
    }

    #[test]
    fn refining_x_inputs_is_monotone(recipe in arb_recipe(), pick in any::<u16>(), to_one in any::<bool>()) {
        let (net, input_ids) = build(&recipe);
        // Choose one X-defaulted input (if any) and refine it.
        let x_inputs: Vec<NodeId> = input_ids
            .iter()
            .copied()
            .filter(|&n| matches!(net.node(n).class, fmossim_netlist::NodeClass::Input(Logic::X)))
            .collect();
        prop_assume!(!x_inputs.is_empty());
        let target = x_inputs[pick as usize % x_inputs.len()];

        let mut base = LogicSim::new(&net);
        let rep = base.settle();
        prop_assume!(!rep.oscillation_damped);

        let mut refined = LogicSim::new(&net);
        refined.set_input(target, Logic::from_bool(to_one));
        let rep = refined.settle();
        prop_assume!(!rep.oscillation_damped);

        for id in net.node_ids() {
            let vx = base.get(id);
            let vr = refined.get(id);
            if id != target && vx.is_definite() {
                prop_assert_eq!(
                    vx, vr,
                    "node {} was definite {} with X input but {} when refined",
                    net.node(id).name, vx, vr
                );
            }
        }
    }

    #[test]
    fn static_locality_matches_dynamic(recipe in arb_recipe()) {
        let (net, input_ids) = build(&recipe);
        let mut dynamic = LogicSim::with_config(
            &net,
            EngineConfig { locality: LocalityMode::Dynamic, ..EngineConfig::default() },
        );
        let mut static_ = LogicSim::with_config(
            &net,
            EngineConfig { locality: LocalityMode::Static, ..EngineConfig::default() },
        );
        let r1 = dynamic.settle();
        let r2 = static_.settle();
        prop_assume!(!r1.oscillation_damped && !r2.oscillation_damped);
        prop_assert_eq!(dynamic.states(), static_.states());

        // Drive a few input changes through both and re-compare.
        for (i, &inp) in input_ids.iter().enumerate() {
            let v = if i % 2 == 0 { Logic::H } else { Logic::L };
            dynamic.set_input(inp, v);
            static_.set_input(inp, v);
            let r1 = dynamic.settle();
            let r2 = static_.settle();
            prop_assume!(!r1.oscillation_damped && !r2.oscillation_damped);
            prop_assert_eq!(dynamic.states(), static_.states());
        }
    }
}
