//! Stress tests of the strength lattice beyond the two-strength,
//! two-size configurations the benchmark circuits use: deep drive
//! ladders, three-level charge hierarchies, and series attenuation —
//! the paper's "we can introduce additional strengths to model more
//! peculiar circuit structures or to model fault effects".

use fmossim_netlist::{Drive, Logic, Network, NodeId, Size, TransistorType};
use fmossim_switch::LogicSim;

fn rails(net: &mut Network) -> (NodeId, NodeId) {
    (
        net.add_input("Vdd", Logic::H),
        net.add_input("Gnd", Logic::L),
    )
}

/// A driver of each strength γ1..γ3 fighting over one node: the
/// strongest present wins; equal opposing strengths give X.
#[test]
fn drive_strength_ladder_resolution() {
    let mut net = Network::new();
    let (vdd, gnd) = rails(&mut net);
    let e1 = net.add_input("E1", Logic::L); // γ1 pull-up enable
    let e2 = net.add_input("E2", Logic::L); // γ2 pull-down enable
    let e3 = net.add_input("E3", Logic::L); // γ3 pull-up enable
    let node = net.add_storage("N", Size::S1);
    net.add_transistor(TransistorType::N, Drive::D1, e1, vdd, node);
    net.add_transistor(TransistorType::N, Drive::D2, e2, node, gnd);
    net.add_transistor(TransistorType::N, Drive::D3, e3, vdd, node);

    let mut sim = LogicSim::new(&net);
    sim.settle();
    // γ1 up alone.
    sim.set_input(e1, Logic::H);
    sim.settle();
    assert_eq!(sim.get(node), Logic::H);
    // γ2 down beats γ1 up.
    sim.set_input(e2, Logic::H);
    sim.settle();
    assert_eq!(sim.get(node), Logic::L);
    // γ3 up beats γ2 down.
    sim.set_input(e3, Logic::H);
    sim.settle();
    assert_eq!(sim.get(node), Logic::H);
    // Equal γ3 opposition → X.
    let e3d = net.add_input("E3D", Logic::L);
    net.add_transistor(TransistorType::N, Drive::D3, e3d, node, gnd);
    let mut sim = LogicSim::new(&net);
    sim.settle();
    for e in [e1, e2, e3, e3d] {
        sim.set_input(e, Logic::H);
    }
    sim.settle();
    assert_eq!(sim.get(node), Logic::X, "γ3 vs γ3 short");
}

/// κ3 > κ2 > κ1 charge sharing: the largest node dictates the result;
/// chains resolve transitively.
#[test]
fn three_level_charge_hierarchy() {
    let mut net = Network::new();
    let clk = net.add_input("CLK", Logic::L);
    let big = net.add_storage("BIG", Size::new(3).expect("κ3 valid"));
    let mid = net.add_storage("MID", Size::S2);
    let small = net.add_storage("SMALL", Size::S1);
    net.add_transistor(TransistorType::N, Drive::D2, clk, big, mid);
    net.add_transistor(TransistorType::N, Drive::D2, clk, mid, small);

    let mut sim = LogicSim::new(&net);
    sim.settle();
    // Charge them to distinct values while isolated… they start X; use
    // temporary drivers.
    let wr_b = net.add_input("WB", Logic::L);
    let wr_m = net.add_input("WM", Logic::L);
    let wr_s = net.add_input("WS", Logic::L);
    let (vdd, gnd) = (net.find_node("Vdd"), net.find_node("Gnd"));
    assert!(vdd.is_none() && gnd.is_none(), "fresh rails below");
    let vdd = net.add_input("Vdd", Logic::H);
    let gnd = net.add_input("Gnd", Logic::L);
    net.add_transistor(TransistorType::N, Drive::D2, wr_b, vdd, big);
    net.add_transistor(TransistorType::N, Drive::D2, wr_m, gnd, mid);
    net.add_transistor(TransistorType::N, Drive::D2, wr_s, gnd, small);

    let mut sim = LogicSim::new(&net);
    sim.settle();
    for w in [wr_b, wr_m, wr_s] {
        sim.set_input(w, Logic::H);
    }
    sim.settle();
    for w in [wr_b, wr_m, wr_s] {
        sim.set_input(w, Logic::L);
    }
    sim.settle();
    assert_eq!(sim.get(big), Logic::H);
    assert_eq!(sim.get(mid), Logic::L);
    assert_eq!(sim.get(small), Logic::L);
    // Connect all three: κ3's H charge overrides both smaller nodes.
    sim.set_input(clk, Logic::H);
    sim.settle();
    assert_eq!(sim.get(big), Logic::H);
    assert_eq!(sim.get(mid), Logic::H);
    assert_eq!(sim.get(small), Logic::H);
}

/// Signal attenuation: a path through a weak transistor is capped at
/// the weak strength, so a strong local driver wins at the far end.
#[test]
fn series_attenuation_caps_path_strength() {
    let mut net = Network::new();
    let (vdd, gnd) = rails(&mut net);
    let en = net.add_input("EN", Logic::H);
    let near = net.add_storage("NEAR", Size::S1);
    let far = net.add_storage("FAR", Size::S1);
    // Vdd --γ3-- near --γ1-- far --γ2-- Gnd
    net.add_transistor(TransistorType::N, Drive::D3, en, vdd, near);
    net.add_transistor(TransistorType::N, Drive::D1, en, near, far);
    net.add_transistor(TransistorType::N, Drive::D2, en, far, gnd);
    let mut sim = LogicSim::new(&net);
    sim.settle();
    // near: γ3 H beats the γ1-attenuated L from far's side.
    assert_eq!(sim.get(near), Logic::H);
    // far: the H arrives attenuated to γ1; the local γ2 pulldown wins.
    assert_eq!(sim.get(far), Logic::L);
}

/// A long inverter chain settles exactly once per stage and stays
/// correct at depth (regression guard for scheduler round handling).
#[test]
fn deep_inverter_chain() {
    const DEPTH: usize = 64;
    let mut net = Network::new();
    let (vdd, gnd) = rails(&mut net);
    let a = net.add_input("A", Logic::L);
    let mut prev = a;
    let mut nodes = Vec::new();
    for i in 0..DEPTH {
        let out = net.add_storage(format!("I{i}"), Size::S1);
        net.add_transistor(TransistorType::P, Drive::D2, prev, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, prev, out, gnd);
        nodes.push(out);
        prev = out;
    }
    let mut sim = LogicSim::new(&net);
    let rep = sim.settle();
    assert!(!rep.oscillation_damped);
    for (i, &n) in nodes.iter().enumerate() {
        let want = Logic::from_bool(i % 2 == 0);
        assert_eq!(sim.get(n), want, "stage {i}");
    }
    // Flip and re-check: the wave propagates the full depth.
    sim.set_input(a, Logic::H);
    let rep = sim.settle();
    assert!(rep.rounds >= DEPTH, "one unit delay per stage");
    for (i, &n) in nodes.iter().enumerate() {
        let want = Logic::from_bool(i % 2 == 1);
        assert_eq!(sim.get(n), want, "stage {i} after flip");
    }
}

/// CMOS transmission gate passes both polarities cleanly and isolates
/// when off, under both select senses.
#[test]
fn transmission_gate_bidirectional() {
    let mut net = Network::new();
    let (_vdd, _gnd) = rails(&mut net);
    let d = net.add_input("D", Logic::L);
    let sel = net.add_input("SEL", Logic::L);
    let selb = net.add_input("SELB", Logic::H);
    let out = net.add_storage("OUT", Size::S1);
    net.add_transistor(TransistorType::N, Drive::D2, sel, d, out);
    net.add_transistor(TransistorType::P, Drive::D2, selb, d, out);
    let mut sim = LogicSim::new(&net);
    sim.settle();
    assert_eq!(sim.get(out), Logic::X, "off: keeps X charge");
    // On: passes 0 and 1.
    sim.set_input(sel, Logic::H);
    sim.set_input(selb, Logic::L);
    sim.settle();
    assert_eq!(sim.get(out), Logic::L);
    sim.set_input(d, Logic::H);
    sim.settle();
    assert_eq!(sim.get(out), Logic::H);
    // Off again: retains the last value.
    sim.set_input(sel, Logic::L);
    sim.set_input(selb, Logic::H);
    sim.settle();
    sim.set_input(d, Logic::L);
    sim.settle();
    assert_eq!(sim.get(out), Logic::H, "charge retained through off gate");
}
