//! Offline shim providing the subset of the `rand` crate API this
//! workspace uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range`/`gen_bool`, `SliceRandom::shuffle`).
//!
//! The build environment has no access to crates.io, so this vendored
//! stand-in keeps the workspace self-contained. The generator is
//! xoshiro256** seeded through SplitMix64 — high quality and fully
//! deterministic, though its streams differ from the real `rand`
//! crate's `StdRng` (every consumer in this repository seeds
//! explicitly and only requires reproducibility, not a specific
//! stream).

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32);

/// Debiased uniform draw in `[0, span)` via Lemire-style rejection.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        // 53 random bits → uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (the shim's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`SliceRandom`).
pub mod seq {
    use super::Rng;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(1..=7);
            assert!((1..=7).contains(&w));
        }
    }

    #[test]
    fn gen_bool_rough_frequency() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle changed the order");
    }
}
