//! Offline shim providing the subset of the `proptest` crate API this
//! workspace uses: the [`Strategy`] trait (`prop_map`, `boxed`),
//! integer-range / tuple / `Just` / `any::<T>()` strategies,
//! `prop::collection::vec`, `prop_oneof!`, and the `proptest!` test
//! macro with `prop_assert!`/`prop_assert_eq!`/`prop_assume!`.
//!
//! The build environment has no access to crates.io, so this vendored
//! stand-in keeps the property tests runnable. Differences from real
//! proptest: cases are generated from a fixed per-test seed (fully
//! reproducible), and failing cases are reported but **not shrunk**.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — try another one.
    Reject(String),
    /// An assertion failed — the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// Builds the rejection variant.
    #[must_use]
    pub fn reject(msg: String) -> Self {
        TestCaseError::Reject(msg)
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required before the test passes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic RNG driving case generation.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates a reproducible generator keyed on the test name.
    #[must_use]
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the name, mixed with a fixed project seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ 850_715))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn gen_usize(&mut self, lo: usize, hi_inclusive: usize) -> usize {
        self.0.gen_range(lo..=hi_inclusive)
    }
}

/// A generation strategy for values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.new_value(rng)
    }
}

/// Strategy always yielding a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_usize(0, self.options.len() - 1);
        self.options[i].new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T` (`any::<u16>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification accepted by [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for vectors of `element` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = super::TestRng::gen_usize(rng, self.size.lo, self.size.hi_inclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespace mirror of the real crate's `prop::` paths.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Chooses uniformly between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects (skips) the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: usize = 0;
                let mut rejected: usize = 0;
                let max_rejects = (cfg.cases as usize) * 32 + 1024;
                while passed < cfg.cases as usize {
                    $(let $arg = $crate::Strategy::new_value(&($strategy), &mut rng);)*
                    let outcome = (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected <= max_rejects,
                                "too many prop_assume! rejections ({rejected}) in {}",
                                stringify!($name)
                            );
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} of {} failed: {}", passed + 1, stringify!($name), msg);
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tri {
        A(u8),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 1u8..=7, (a, b) in (0u16..10, any::<bool>())) {
            prop_assert!((1..=7).contains(&x));
            prop_assert!(a < 10);
            let _ = b;
        }

        #[test]
        fn vec_and_oneof(v in prop::collection::vec(
            prop_oneof![(0u8..4).prop_map(Tri::A), Just(Tri::B)],
            0..20,
        )) {
            prop_assert!(v.len() < 20);
            for t in &v {
                if let Tri::A(n) = t {
                    prop_assert!(*n < 4, "bad inner {}", n);
                }
            }
        }

        #[test]
        fn assume_rejects_cases(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    #[test]
    fn deterministic_generation() {
        let s = (0u16..1000, 0u16..1000);
        let mut r1 = crate::TestRng::deterministic("x");
        let mut r2 = crate::TestRng::deterministic("x");
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
        }
    }
}
