//! Offline shim providing the subset of the `criterion` crate API this
//! workspace's benches use: `Criterion::bench_function`,
//! `benchmark_group` (with `sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no access to crates.io. This stand-in
//! keeps the bench targets compiling and runnable: it performs a short
//! warm-up, times `sample_size` samples, and prints min/mean/max per
//! benchmark — no statistics engine, plots, or comparison history.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures passed to `iter`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once as warm-up, then `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / u32::try_from(samples.len()).expect("sample count fits u32");
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "{name:<48} time: [{min:>10.3?} {mean:>10.3?} {max:>10.3?}]  ({} samples)",
        samples.len()
    );
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    report(name, &b.samples);
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.default_sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        // One warm-up plus default_sample_size timed runs.
        assert_eq!(runs, 11);
    }

    #[test]
    fn group_sample_size_applies() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter("p"), &5usize, |b, &x| {
            b.iter(|| runs += x)
        });
        g.finish();
        assert_eq!(runs, 5 * 4);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
