//! Unified fault-simulation campaigns: one builder + one backend seam
//! over every execution strategy in the workspace.
//!
//! The paper's whole point is comparing execution strategies on the
//! same workload — concurrent against serial, and (beyond the paper)
//! fault-parallel sharding. This crate makes that comparison a
//! one-line change instead of three unrelated APIs:
//!
//! ```
//! use fmossim_circuits::Ram;
//! use fmossim_testgen::TestSequence;
//! use fmossim_faults::FaultUniverse;
//! use fmossim_campaign::{Backend, Campaign, ParallelConfig, SimEvent};
//!
//! let ram = Ram::new(4, 4);
//! let seq = TestSequence::full(&ram);
//! let report = Campaign::new(ram.network())
//!     .faults(FaultUniverse::stuck_nodes(ram.network()))
//!     .patterns(seq.patterns())
//!     .outputs(ram.observed_outputs())
//!     // paper sim config + Jobs::Auto: pool sized from the workload
//!     .backend(Backend::Parallel(ParallelConfig::auto()))
//!     .stop_at_coverage(0.95)
//!     .on_event(|e| {
//!         if let SimEvent::ShardDone { shard, detected, .. } = e {
//!             eprintln!("shard {shard}: {detected} detected");
//!         }
//!     })
//!     .run();
//! assert!(report.coverage() >= 0.95);
//! let artifact = report.to_json(); // stable, hand-rolled format
//! # let _ = artifact;
//! ```
//!
//! * [`Campaign`] — the builder: workload (`faults`/`patterns`/
//!   `outputs`), strategy ([`Campaign::backend`]), run control
//!   ([`stop_at_coverage`](Campaign::stop_at_coverage),
//!   [`pattern_limit`](Campaign::pattern_limit),
//!   [`drop_detected`](Campaign::drop_detected)), streaming observer
//!   ([`on_event`](Campaign::on_event)).
//! * [`Backend`] — selects serial / concurrent / parallel;
//!   [`CampaignBackend`] is the trait the adapters implement, open for
//!   custom strategies via [`Campaign::backend_impl`].
//! * [`CampaignReport`] — one artifact for every backend, wrapping the
//!   common [`fmossim_core::RunReport`] with campaign metadata and a
//!   stable JSON form ([`CampaignReport::to_json`] /
//!   [`CampaignReport::from_json`], no external deps).
//! * [`universe_from_spec`] — the CLI's textual fault-universe specs,
//!   shared with examples and tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod backend;
mod campaign;
mod event;
pub mod json;
mod report;
mod spec;

pub use adaptive::{AdaptiveBackend, AdaptiveConfig, BatchTelemetry, DEFAULT_BATCH_PATTERNS};
pub use backend::{Backend, BackendRun, CampaignBackend, RunControl, Workload};
pub use campaign::Campaign;
pub use event::SimEvent;
pub use report::{CampaignReport, ControlEcho, StopReason};
pub use spec::{universe_from_spec, UNIVERSE_SPECS};

// Re-export the per-backend configuration types so campaign call sites
// need only this crate (plus circuits/testgen for the workload).
pub use fmossim_core::{ConcurrentConfig, DetectionPolicy, SerialConfig};
pub use fmossim_par::{Jobs, ParallelConfig, ShardStrategy};
