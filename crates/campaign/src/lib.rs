//! Unified fault-simulation campaigns: one builder + one backend seam
//! over every execution strategy in the workspace.
//!
//! The paper's whole point is comparing execution strategies on the
//! same workload — concurrent against serial, and (beyond the paper)
//! fault-parallel sharding. This crate makes that comparison a
//! one-line change instead of three unrelated APIs:
//!
//! ```
//! use fmossim_circuits::Ram;
//! use fmossim_telemetry::Registry;
//! use fmossim_testgen::TestSequence;
//! use fmossim_faults::FaultUniverse;
//! use fmossim_campaign::{Backend, Campaign, ParallelConfig, SimEvent};
//!
//! let ram = Ram::new(4, 4);
//! let seq = TestSequence::full(&ram);
//! // The telemetry registry collects hierarchical metrics from every
//! // layer (switch solver, concurrent core, shards, campaign) …
//! let registry = Registry::new();
//! let mut spans = Vec::new();
//! let report = Campaign::new(ram.network())
//!     .faults(FaultUniverse::stuck_nodes(ram.network()))
//!     .patterns(seq.patterns())
//!     .outputs(ram.observed_outputs())
//!     // paper sim config + Jobs::Auto: pool sized from the workload
//!     .backend(Backend::Parallel(ParallelConfig::auto()))
//!     .stop_at_coverage(0.95)
//!     .with_telemetry(&registry)
//!     // … and the observer streams events, including timed spans.
//!     .on_event(|e| {
//!         if let SimEvent::Span { name, seconds } = e {
//!             spans.push((name, seconds));
//!         }
//!     })
//!     .run();
//! assert!(report.coverage() >= 0.95);
//! assert_eq!(spans.last().map(|s| s.0), Some("campaign.run"));
//! let snapshot = registry.snapshot(); // also embedded in the report
//! assert_eq!(report.metrics, snapshot);
//! assert!(snapshot.counters["core.detections"] > 0);
//! let prom = snapshot.to_prometheus(); // exposition text format
//! let artifact = report.to_json(); // stable, hand-rolled format
//! # let _ = (prom, artifact);
//! ```
//!
//! * [`Campaign`] — the builder: workload (`faults`/`patterns`/
//!   `outputs`), strategy ([`Campaign::backend`]), run control
//!   ([`stop_at_coverage`](Campaign::stop_at_coverage),
//!   [`pattern_limit`](Campaign::pattern_limit),
//!   [`drop_detected`](Campaign::drop_detected)), streaming observer
//!   ([`on_event`](Campaign::on_event)), telemetry registry
//!   ([`with_telemetry`](Campaign::with_telemetry)).
//! * [`Backend`] — selects serial / concurrent / parallel / adaptive;
//!   [`CampaignBackend`] is the trait the adapters implement, open for
//!   custom strategies via [`Campaign::backend_impl`].
//! * [`SimEvent`] — the streaming observer vocabulary:
//!   [`PatternStart`](SimEvent::PatternStart) /
//!   [`PatternDone`](SimEvent::PatternDone) (concurrent),
//!   [`Detected`](SimEvent::Detected) /
//!   [`FaultDropped`](SimEvent::FaultDropped) (every backend),
//!   [`ShardDone`](SimEvent::ShardDone) (parallel/adaptive),
//!   [`BatchDone`](SimEvent::BatchDone) (adaptive), and
//!   [`Span`](SimEvent::Span) (timed sections; every run ends with a
//!   `"campaign.run"` span).
//! * [`CampaignReport`] — one artifact for every backend, wrapping the
//!   common [`fmossim_core::RunReport`] with campaign metadata, the
//!   telemetry snapshot ([`CampaignReport::metrics`]) and a
//!   stable JSON form ([`CampaignReport::to_json`] /
//!   [`CampaignReport::from_json`], no external deps).
//! * [`universe_from_spec`] — the CLI's textual fault-universe specs,
//!   shared with examples and tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod backend;
mod campaign;
mod event;
pub mod json;
mod report;
mod spec;

pub use adaptive::{AdaptiveBackend, AdaptiveConfig, BatchTelemetry, DEFAULT_BATCH_PATTERNS};
pub use backend::{
    Backend, BackendRun, CampaignBackend, CoverageWeights, RunControl, TapeSlot, Workload,
};
pub use campaign::Campaign;
pub use event::SimEvent;
pub use report::{CampaignReport, CollapseStats, ControlEcho, StopReason};
pub use spec::{universe_from_spec, UNIVERSE_SPECS};

// Re-export the per-backend configuration types so campaign call sites
// need only this crate (plus circuits/testgen for the workload).
pub use fmossim_core::{ConcurrentConfig, DetectionPolicy, SerialConfig};
pub use fmossim_par::{Jobs, ParallelConfig, ShardStrategy};
// Re-export the telemetry vocabulary the campaign API speaks
// ([`Campaign::with_telemetry`], [`CampaignReport::metrics`]).
pub use fmossim_telemetry::{MetricsSnapshot, Registry};
