//! The campaign builder — the single entry point over every execution
//! strategy.

use crate::backend::{
    no_cancel, Backend, BackendRun, CampaignBackend, CoverageWeights, RunControl, TapeSlot,
    Workload,
};
use crate::event::SimEvent;
use crate::report::{CampaignReport, CollapseStats, ControlEcho, StopReason};
use fmossim_core::{ConcurrentConfig, Detection, GoodTape, Pattern};
use fmossim_faults::{CollapseClasses, FaultId, FaultUniverse};
use fmossim_netlist::{Network, NodeId};
use fmossim_telemetry::Registry;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

/// A fault-simulation campaign: one workload (network, faults,
/// patterns, outputs), one execution strategy, shared run-control
/// options, and an optional streaming observer.
///
/// Built fluently and consumed by [`Campaign::run`]:
///
/// ```
/// use fmossim_circuits::Ram;
/// use fmossim_testgen::TestSequence;
/// use fmossim_faults::FaultUniverse;
/// use fmossim_campaign::{Backend, Campaign, ConcurrentConfig};
///
/// let ram = Ram::new(4, 4);
/// let seq = TestSequence::full(&ram);
/// let report = Campaign::new(ram.network())
///     .faults(FaultUniverse::stuck_nodes(ram.network()))
///     .patterns(seq.patterns())
///     .outputs(ram.observed_outputs())
///     .backend(Backend::Concurrent(ConcurrentConfig::paper()))
///     .run();
/// assert!(report.detected() > 0);
/// ```
///
/// Swapping strategies is one line — `Backend::Serial(..)`,
/// `Backend::Parallel(..)` — with the workload, run control, reporting
/// and observers unchanged.
///
/// `'n` is the network's lifetime; `'o` bounds captured observer and
/// custom-backend state.
pub struct Campaign<'n, 'o> {
    net: &'n Network,
    universe: FaultUniverse,
    patterns: Vec<Pattern>,
    outputs: Vec<NodeId>,
    backend: Backend,
    custom: Option<Box<dyn CampaignBackend + 'o>>,
    control: RunControl,
    observer: Option<Box<dyn FnMut(SimEvent) + 'o>>,
    telemetry: Registry,
    cancel: Arc<AtomicBool>,
    inject_tape: Option<Arc<GoodTape>>,
    export_tape: Option<TapeSlot>,
}

impl<'n, 'o> Campaign<'n, 'o> {
    /// Starts a campaign on `net` with an empty workload and the
    /// paper's concurrent backend.
    #[must_use]
    pub fn new(net: &'n Network) -> Self {
        Campaign {
            net,
            universe: FaultUniverse::new(),
            patterns: Vec::new(),
            outputs: Vec::new(),
            backend: Backend::Concurrent(ConcurrentConfig::paper()),
            custom: None,
            control: RunControl::default(),
            observer: None,
            telemetry: Registry::null(),
            cancel: no_cancel(),
            inject_tape: None,
            export_tape: None,
        }
    }

    /// Sets the fault universe to grade.
    #[must_use]
    pub fn faults(mut self, universe: FaultUniverse) -> Self {
        self.universe = universe;
        self
    }

    /// Sets the stimulus patterns (cloned; sliced further by
    /// [`Campaign::pattern_limit`]).
    #[must_use]
    pub fn patterns(mut self, patterns: &[Pattern]) -> Self {
        self.patterns = patterns.to_vec();
        self
    }

    /// Sets the observed output nodes compared at every strobe.
    #[must_use]
    pub fn outputs(mut self, outputs: &[NodeId]) -> Self {
        self.outputs = outputs.to_vec();
        self
    }

    /// Selects the execution strategy (default: the paper's concurrent
    /// simulator).
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self.custom = None;
        self
    }

    /// Plugs in a custom [`CampaignBackend`] implementation — the seam
    /// for strategies beyond the built-in three (autotuned sharding,
    /// remote execution). Overrides [`Campaign::backend`].
    #[must_use]
    pub fn backend_impl(mut self, backend: Box<dyn CampaignBackend + 'o>) -> Self {
        self.custom = Some(backend);
        self
    }

    /// Stops the run once coverage (detected / total faults) reaches
    /// `target` (clamped to `[0, 1]`). Backends stop at their work-item
    /// granularity: the concurrent backend between patterns, the serial
    /// backend between faults, the parallel backend between shards, the
    /// adaptive backend between batches.
    ///
    /// ```
    /// use fmossim_campaign::{Campaign, StopReason};
    /// use fmossim_circuits::Ram;
    /// use fmossim_faults::FaultUniverse;
    /// use fmossim_testgen::TestSequence;
    ///
    /// let ram = Ram::new(4, 4);
    /// let seq = TestSequence::full(&ram);
    /// let report = Campaign::new(ram.network())
    ///     .faults(FaultUniverse::stuck_nodes(ram.network()))
    ///     .patterns(seq.patterns())
    ///     .outputs(ram.observed_outputs())
    ///     .stop_at_coverage(0.5)
    ///     .run();
    /// assert!(report.coverage() >= 0.5);
    /// assert_eq!(report.stop, StopReason::CoverageReached);
    /// ```
    #[must_use]
    pub fn stop_at_coverage(mut self, target: f64) -> Self {
        self.control.stop_at_coverage = Some(target);
        self
    }

    /// Simulates at most the first `n` patterns.
    #[must_use]
    pub fn pattern_limit(mut self, n: usize) -> Self {
        self.control.pattern_limit = Some(n);
        self
    }

    /// Whether to stop spending time on a fault once it is detected
    /// (default `true` — the paper's drop-on-detect rule). Disable for
    /// full-sequence grading of every fault.
    #[must_use]
    pub fn drop_detected(mut self, drop: bool) -> Self {
        self.control.drop_detected = drop;
        self
    }

    /// Whether the parallel backend records the good machine once and
    /// replays the shared [`fmossim_core::GoodTape`] in every shard
    /// (default `true`), instead of re-settling the good circuit per
    /// shard. Results are bit-identical either way; disable only for
    /// A/B measurement of the good-machine fraction. (The adaptive
    /// backend ignores `false`: its batch loop is built on the tape.)
    ///
    /// ```
    /// use fmossim_campaign::{Backend, Campaign, ParallelConfig};
    /// use fmossim_circuits::Ram;
    /// use fmossim_faults::FaultUniverse;
    /// use fmossim_testgen::TestSequence;
    ///
    /// let ram = Ram::new(4, 4);
    /// let seq = TestSequence::full(&ram);
    /// let report = Campaign::new(ram.network())
    ///     .faults(FaultUniverse::stuck_nodes(ram.network()))
    ///     .patterns(seq.patterns())
    ///     .outputs(ram.observed_outputs())
    ///     .backend(Backend::Parallel(ParallelConfig::paper(2)))
    ///     .reuse_good_tape(false) // recompute mode: no tape recorded
    ///     .run();
    /// assert_eq!(report.tape_record_seconds, None);
    /// ```
    #[must_use]
    pub fn reuse_good_tape(mut self, reuse: bool) -> Self {
        self.control.reuse_good_tape = reuse;
        self
    }

    /// Collapses the fault universe into structural equivalence
    /// classes before the backend runs (ERASER-style static fault
    /// collapsing, [`CollapseClasses::analyze`]) and switches on
    /// dynamic activity gating ([`ConcurrentConfig::gating`]) in the
    /// simulators underneath. The backend grades only one
    /// representative per class; at report time every
    /// representative's detections fan back out to all class members,
    /// so the report — detection set, per-pattern counts, live
    /// counts, `num_faults` — is bit-identical to an uncollapsed run,
    /// just cheaper to produce. [`CampaignReport::collapse`] records
    /// the class statistics.
    ///
    /// Work-item telemetry stays in collapsed terms: `jobs` /
    /// `shards` / `batches` and the `metrics` snapshot describe the
    /// work actually done, on representatives. Combining with
    /// [`Campaign::stop_at_coverage`] is fine: backends evaluate the
    /// target in parent-universe terms (each representative's
    /// detection weighted by its equivalence-class size, over the
    /// parent fault count), so a collapsed run reaches the target at
    /// the same pattern as the uncollapsed run it reproduces.
    ///
    /// ```
    /// use fmossim_campaign::Campaign;
    /// use fmossim_circuits::Ram;
    /// use fmossim_faults::FaultUniverse;
    /// use fmossim_testgen::TestSequence;
    ///
    /// let ram = Ram::new(4, 4);
    /// let seq = TestSequence::full(&ram);
    /// let universe = FaultUniverse::stuck_nodes(ram.network());
    /// let run = |collapse: bool| {
    ///     Campaign::new(ram.network())
    ///         .faults(universe.clone())
    ///         .patterns(seq.patterns())
    ///         .outputs(ram.observed_outputs())
    ///         .collapse(collapse)
    ///         .run()
    /// };
    /// let (collapsed, plain) = (run(true), run(false));
    /// assert_eq!(collapsed.detections(), plain.detections());
    /// let stats = collapsed.collapse.expect("collapse ran");
    /// assert!(stats.simulated_faults <= stats.total_faults);
    /// assert_eq!(plain.collapse, None);
    /// ```
    #[must_use]
    pub fn collapse(mut self, collapse: bool) -> Self {
        self.control.collapse = collapse;
        self
    }

    /// The campaign's cooperative cancel token. Setting it to `true`
    /// (from any thread) makes the backend stop at its next work-item
    /// boundary — the concurrent backend between patterns, the serial
    /// backend between faults, the parallel backend between shards,
    /// the adaptive backend between batches. A cancelled run still
    /// returns a complete, parseable report covering the work done so
    /// far, with [`CampaignReport::cancelled`] set and
    /// [`StopReason::Cancelled`].
    ///
    /// The token is a plain `Arc<AtomicBool>` — cheap to clone, cheap
    /// to poll, and shareable before [`Campaign::run`] consumes the
    /// builder:
    ///
    /// ```
    /// use fmossim_campaign::{Campaign, StopReason};
    /// use fmossim_circuits::Ram;
    /// use fmossim_faults::FaultUniverse;
    /// use fmossim_testgen::TestSequence;
    /// use std::sync::atomic::Ordering;
    ///
    /// let ram = Ram::new(4, 4);
    /// let seq = TestSequence::full(&ram);
    /// let campaign = Campaign::new(ram.network())
    ///     .faults(FaultUniverse::stuck_nodes(ram.network()))
    ///     .patterns(seq.patterns())
    ///     .outputs(ram.observed_outputs());
    /// let token = campaign.cancel_token();
    /// token.store(true, Ordering::Relaxed); // cancel before it starts
    /// let report = campaign.run();
    /// assert!(report.cancelled);
    /// assert_eq!(report.stop, StopReason::Cancelled);
    /// ```
    #[must_use]
    pub fn cancel_token(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// Offers the backend a pre-recorded good tape (e.g. from a cache
    /// keyed on [`fmossim_netlist::Network::content_hash`] and
    /// [`fmossim_core::stimulus_content_hash`]) so the run skips its
    /// own record pass; the report's `tape_record_seconds` is then
    /// `0.0`. Only the parallel backend replays injected tapes; a
    /// tape whose shape does not match the workload is ignored, so
    /// injection can never change results.
    #[must_use]
    pub fn with_good_tape(mut self, tape: Arc<GoodTape>) -> Self {
        self.inject_tape = Some(tape);
        self
    }

    /// Asks the backend to deposit the run's good tape into `slot`
    /// after the run — the extraction half of the tape seams, feeding
    /// caches that serve future [`Campaign::with_good_tape`] calls.
    /// Only the parallel backend deposits; other backends leave the
    /// slot untouched.
    ///
    /// ```
    /// use fmossim_campaign::{Backend, Campaign, ParallelConfig, TapeSlot};
    /// use fmossim_circuits::Ram;
    /// use fmossim_faults::FaultUniverse;
    /// use fmossim_testgen::TestSequence;
    ///
    /// let ram = Ram::new(4, 4);
    /// let seq = TestSequence::full(&ram);
    /// let slot = TapeSlot::default();
    /// let report = Campaign::new(ram.network())
    ///     .faults(FaultUniverse::stuck_nodes(ram.network()))
    ///     .patterns(seq.patterns())
    ///     .outputs(ram.observed_outputs())
    ///     .backend(Backend::Parallel(ParallelConfig::paper(2)))
    ///     .export_good_tape(&slot)
    ///     .run();
    /// let tape = slot.lock().unwrap().clone().expect("tape deposited");
    /// assert_eq!(tape.num_patterns(), report.patterns_total);
    /// ```
    #[must_use]
    pub fn export_good_tape(mut self, slot: &TapeSlot) -> Self {
        self.export_tape = Some(Arc::clone(slot));
        self
    }

    /// Registers a streaming observer receiving [`SimEvent`]s while
    /// the backend runs. See [`SimEvent`](crate::SimEvent) for which
    /// events each backend emits.
    #[must_use]
    pub fn on_event(mut self, observer: impl FnMut(SimEvent) + 'o) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    /// Attaches a telemetry [`Registry`]: the backend and every
    /// simulator underneath it record into `registry` (per-shard forks
    /// are merged back at report time), and the final
    /// [`CampaignReport::metrics`] snapshot is taken from it. The
    /// default is the free [`Registry::null`], which records nothing.
    ///
    /// ```
    /// use fmossim_campaign::Campaign;
    /// use fmossim_circuits::Ram;
    /// use fmossim_faults::FaultUniverse;
    /// use fmossim_telemetry::Registry;
    /// use fmossim_testgen::TestSequence;
    ///
    /// let ram = Ram::new(4, 4);
    /// let seq = TestSequence::full(&ram);
    /// let registry = Registry::new();
    /// let report = Campaign::new(ram.network())
    ///     .faults(FaultUniverse::stuck_nodes(ram.network()))
    ///     .patterns(seq.patterns())
    ///     .outputs(ram.observed_outputs())
    ///     .with_telemetry(&registry)
    ///     .run();
    /// let snap = registry.snapshot();
    /// assert_eq!(snap.counters["core.detections"], report.detected() as u64);
    /// assert_eq!(report.metrics, snap);
    /// ```
    #[must_use]
    pub fn with_telemetry(mut self, registry: &Registry) -> Self {
        self.telemetry = registry.clone();
        self
    }

    /// Runs the campaign and returns the wrapped report.
    #[must_use]
    pub fn run(self) -> CampaignReport {
        let t0 = Instant::now();
        let cut = self
            .control
            .pattern_limit
            .map_or(self.patterns.len(), |n| n.min(self.patterns.len()));
        let limited = cut < self.patterns.len();
        // Static fault collapsing runs before the backend ever sees
        // the universe: the workload carries only class
        // representatives, and detections fan back out below.
        let classes = self.control.collapse.then(|| {
            let mut assigned: Vec<NodeId> = self.patterns[..cut]
                .iter()
                .flat_map(|p| &p.phases)
                .flat_map(|ph| ph.inputs.iter().map(|&(n, _)| n))
                .collect();
            assigned.sort_unstable();
            assigned.dedup();
            let classes =
                CollapseClasses::analyze(self.net, &self.universe, &self.outputs, &assigned);
            self.telemetry
                .counter("faults.collapsed_classes")
                .add(classes.num_collapsed_classes() as u64);
            classes
        });
        let collapsed = classes
            .as_ref()
            .map(|c| c.collapsed_universe(&self.universe));
        // Under collapse, backends evaluate any mid-run coverage target
        // in parent-universe terms: each representative's detection
        // weighs as much as its whole equivalence class, so a collapsed
        // run stops at the same pattern as the uncollapsed run it
        // reproduces.
        let class_sizes: Vec<u32> = classes.as_ref().map_or_else(Vec::new, |c| {
            (0..c.num_representatives())
                .map(|k| {
                    u32::try_from(
                        c.members_of(FaultId(u32::try_from(k).expect("rep fits u32")))
                            .len(),
                    )
                    .expect("class size fits u32")
                })
                .collect()
        });
        let workload = Workload {
            net: self.net,
            universe: collapsed.as_ref().unwrap_or(&self.universe),
            patterns: &self.patterns[..cut],
            outputs: &self.outputs,
            coverage: classes.as_ref().map(|_| CoverageWeights {
                class_sizes: &class_sizes,
                total_faults: self.universe.len(),
            }),
        };
        // A custom backend's policy is invisible to the campaign; echo
        // `None` rather than the unused built-in default.
        let policy = if self.custom.is_some() {
            None
        } else {
            Some(self.backend.policy())
        };
        let packing = if self.custom.is_some() {
            None
        } else {
            self.backend.packing()
        };
        // Collapsed universes imply activity gating: the same
        // structural analysis feeds both, and neither changes results.
        let selected = if self.control.collapse {
            self.backend.with_gating()
        } else {
            self.backend
        };
        let mut backend: Box<dyn CampaignBackend + 'o> = match self.custom {
            Some(custom) => custom,
            None => selected.into_impl(),
        };
        backend.attach_telemetry(&self.telemetry);
        backend.attach_cancel(&self.cancel);
        if let Some(tape) = self.inject_tape {
            backend.inject_good_tape(tape);
        }
        if let Some(slot) = &self.export_tape {
            backend.export_good_tape(slot);
        }
        let mut observer = self.observer;
        // With collapsing on, the observer sees parent-universe
        // events: detections and drops fan out to every class member,
        // and live counts are re-expressed over the parent universe.
        let total_faults = self.universe.len();
        let classes_ref = classes.as_ref();
        let mut dropped_members = 0usize;
        let mut fanned_detected = 0usize;
        let mut emit = move |e: SimEvent| {
            let Some(obs) = observer.as_mut() else { return };
            let Some(classes) = classes_ref else {
                obs(e);
                return;
            };
            match e {
                SimEvent::Detected {
                    fault,
                    pattern,
                    phase,
                    potential,
                } => {
                    for &m in classes.members_of(fault) {
                        fanned_detected += 1;
                        obs(SimEvent::Detected {
                            fault: m,
                            pattern,
                            phase,
                            potential,
                        });
                    }
                }
                SimEvent::FaultDropped { fault } => {
                    for &m in classes.members_of(fault) {
                        dropped_members += 1;
                        obs(SimEvent::FaultDropped { fault: m });
                    }
                }
                SimEvent::PatternStart { pattern, .. } => {
                    obs(SimEvent::PatternStart {
                        pattern,
                        live: total_faults - dropped_members,
                    });
                }
                SimEvent::PatternDone {
                    pattern, seconds, ..
                } => {
                    obs(SimEvent::PatternDone {
                        pattern,
                        detected_so_far: fanned_detected,
                        seconds,
                    });
                }
                other => obs(other),
            }
        };
        let BackendRun {
            mut run,
            stopped_early,
            jobs,
            shards,
            max_shard_seconds,
            good_seconds,
            serial_estimate_seconds,
            tape_record_seconds,
            tape_groups,
            batches,
            cancelled,
        } = backend.run(&workload, &self.control, &mut emit);
        let run_seconds = t0.elapsed().as_secs_f64();
        self.telemetry
            .gauge("campaign.run.seconds")
            .add(run_seconds);
        emit(SimEvent::Span {
            name: "campaign.run",
            seconds: run_seconds,
        });
        // Fan the representatives' results back out: the report speaks
        // parent-universe terms even though the backend graded only
        // class representatives.
        if let Some(classes) = &classes {
            let reps = classes.num_representatives();
            let mut fanned: Vec<Detection> = Vec::with_capacity(run.detections.len());
            for d in &run.detections {
                for &m in classes.members_of(d.fault) {
                    fanned.push(Detection { fault: m, ..*d });
                }
            }
            fanned.sort_by_key(|d| (d.pattern, d.phase, d.fault.index()));
            let mut per_pattern = vec![0usize; run.patterns.len()];
            for d in &fanned {
                if let Some(n) = per_pattern.get_mut(d.pattern) {
                    *n += 1;
                }
            }
            // Backends that track per-pattern live counts do so in
            // collapsed terms; re-express them over the parent
            // universe. The serial baseline reports no live counts
            // (all zero) — those stay untouched.
            let tracked = reps > 0 && run.patterns.first().is_some_and(|s| s.live_before == reps);
            let mut detected_before = 0usize;
            for (stats, &detected) in run.patterns.iter_mut().zip(&per_pattern) {
                stats.detected = detected;
                if tracked {
                    stats.live_before = if self.control.drop_detected {
                        total_faults - detected_before
                    } else {
                        total_faults
                    };
                }
                detected_before += detected;
            }
            run.detections = fanned;
            run.num_faults = total_faults;
        }
        let stop = if cancelled {
            StopReason::Cancelled
        } else if stopped_early {
            StopReason::CoverageReached
        } else if limited {
            StopReason::PatternLimit
        } else {
            StopReason::Completed
        };
        CampaignReport {
            backend: backend.name(),
            wall_seconds: t0.elapsed().as_secs_f64(),
            patterns_total: cut,
            stop,
            cancelled,
            control: ControlEcho {
                stop_at_coverage: self.control.stop_at_coverage,
                pattern_limit: self.control.pattern_limit,
                drop_detected: self.control.drop_detected,
                reuse_good_tape: self.control.reuse_good_tape,
                policy,
                packing,
                collapse: self.control.collapse.then_some(true),
            },
            collapse: classes.as_ref().map(|c| CollapseStats {
                total_faults: c.total_faults(),
                simulated_faults: c.num_representatives(),
                classes: c.num_collapsed_classes(),
            }),
            jobs,
            shards,
            max_shard_seconds,
            good_seconds,
            serial_estimate_seconds,
            tape_record_seconds,
            tape_groups,
            batches,
            metrics: self.telemetry.snapshot(),
            run,
        }
    }
}
