//! The execution-strategy seam: one [`CampaignBackend`] trait that the
//! serial, concurrent, and fault-parallel simulators implement behind
//! adapter types, selected by the [`Backend`] enum.
//!
//! The adapters translate one campaign workload into each simulator's
//! native execution order (pattern-major, fault-major, shard-major),
//! honour the shared [`RunControl`] options, and stream
//! [`SimEvent`]s — so callers swap strategies without touching their
//! setup code, and future strategies (e.g. the ROADMAP's autotuned
//! sharding) slot in behind the same trait.

use crate::adaptive::{AdaptiveBackend, AdaptiveConfig, BatchTelemetry};
use crate::event::SimEvent;
use fmossim_core::{
    ConcurrentConfig, ConcurrentSim, Detection, DetectionPolicy, GoodTape, Pattern, PatternStats,
    RunReport, SerialConfig, SerialSim,
};
use fmossim_faults::{FaultId, FaultUniverse};
use fmossim_netlist::{Network, NodeId};
use fmossim_par::{ParallelConfig, ParallelSim};
use fmossim_telemetry::Registry;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A shared slot a backend deposits the run's good tape into — the
/// extraction half of the campaign tape seams (see
/// [`Campaign::export_good_tape`](crate::Campaign::export_good_tape)).
/// A plain `Arc<Mutex<..>>` so a caching layer can hold the slot across
/// campaigns and threads.
pub type TapeSlot = Arc<Mutex<Option<Arc<GoodTape>>>>;

/// Parent-universe coverage bookkeeping for a collapsed workload.
///
/// When the campaign collapses the fault universe into structural
/// equivalence classes, backends grade only the representatives — but
/// the coverage fraction a user targets with
/// [`RunControl::stop_at_coverage`] is over the *parent* universe the
/// report describes. These weights let a backend evaluate mid-run
/// coverage in parent terms: each representative's detection counts
/// for its whole equivalence class.
#[derive(Clone, Copy, Debug)]
pub struct CoverageWeights<'a> {
    /// Per workload fault (indexed by its [`FaultId`]), the size of
    /// its equivalence class in the parent universe (≥ 1).
    pub class_sizes: &'a [u32],
    /// The parent universe's fault count — the coverage denominator.
    /// Equals `class_sizes.iter().sum()`.
    pub total_faults: usize,
}

/// The workload a campaign grades: one network, one fault universe,
/// one pattern sequence, one set of observed outputs.
///
/// ```
/// use fmossim_campaign::Workload;
/// use fmossim_circuits::Ram;
/// use fmossim_faults::FaultUniverse;
/// use fmossim_testgen::TestSequence;
///
/// let ram = Ram::new(4, 4);
/// let universe = FaultUniverse::stuck_nodes(ram.network());
/// let seq = TestSequence::full(&ram);
/// let w = Workload {
///     net: ram.network(),
///     universe: &universe,
///     patterns: seq.patterns(),
///     outputs: ram.observed_outputs(),
///     coverage: None,
/// };
/// assert_eq!(w.universe.len(), universe.len());
/// assert_eq!(w.coverage_denominator(), universe.len());
/// assert_eq!(w.detection_weight(0), 1);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Workload<'a> {
    /// The circuit under test.
    pub net: &'a Network,
    /// The faults to grade.
    pub universe: &'a FaultUniverse,
    /// The stimulus, already truncated to any pattern limit.
    pub patterns: &'a [Pattern],
    /// The observed output nodes (strobe comparison points).
    pub outputs: &'a [NodeId],
    /// Parent-universe weights when `universe` is a collapsed set of
    /// representatives; `None` when it already is the full set.
    pub coverage: Option<CoverageWeights<'a>>,
}

impl Workload<'_> {
    /// The fault count coverage fractions are evaluated over: the
    /// parent universe under collapse, the workload universe otherwise.
    #[must_use]
    pub fn coverage_denominator(&self) -> usize {
        self.coverage
            .map_or(self.universe.len(), |c| c.total_faults)
    }

    /// How many parent-universe faults a detection of workload fault
    /// `k` accounts for: its equivalence-class size, or 1 without
    /// collapse.
    #[must_use]
    pub fn detection_weight(&self, k: usize) -> usize {
        self.coverage.map_or(1, |c| c.class_sizes[k] as usize)
    }
}

/// Backend-independent run-control options.
///
/// ```
/// let control = fmossim_campaign::RunControl::default();
/// assert!(control.drop_detected && control.reuse_good_tape);
/// assert_eq!(control.stop_at_coverage, None);
/// assert_eq!(control.pattern_limit, None);
/// assert!(!control.collapse);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunControl {
    /// Stop once detected/total coverage reaches this fraction.
    /// Serial and parallel backends stop at their work-item granularity
    /// (fault / shard); the concurrent backend at pattern granularity.
    pub stop_at_coverage: Option<f64>,
    /// Simulate at most this many patterns (applied by the campaign
    /// before the backend runs).
    pub pattern_limit: Option<usize>,
    /// Stop spending time on a fault once it is detected — the paper's
    /// drop-on-detect rule (concurrent/parallel) and the serial
    /// baseline's stop-at-first-detection. Disable for full-trace runs.
    pub drop_detected: bool,
    /// Record the good machine once and replay the shared
    /// [`fmossim_core::GoodTape`] in every shard instead of
    /// re-settling the good circuit per shard (default `true`).
    /// Honoured by the parallel backend (and custom backends that
    /// choose to); results are bit-identical either way — this is a
    /// measurement/escape-hatch knob, not a semantics knob.
    pub reuse_good_tape: bool,
    /// Collapse the fault universe into structural equivalence classes
    /// before the backend runs and fan detections back out at report
    /// time (see [`Campaign::collapse`](crate::Campaign::collapse)).
    /// Applied by the campaign driver, not the backends: a backend
    /// always sees the (already collapsed) workload universe.
    pub collapse: bool,
}

impl Default for RunControl {
    fn default() -> Self {
        RunControl {
            stop_at_coverage: None,
            pattern_limit: None,
            drop_detected: true,
            reuse_good_tape: true,
            collapse: false,
        }
    }
}

impl RunControl {
    /// The coverage target expressed as a detection count over
    /// `num_faults`, if a (finite) target is set. A NaN target is
    /// ignored rather than silently becoming "stop immediately".
    ///
    /// ```
    /// use fmossim_campaign::RunControl;
    ///
    /// let mut control = RunControl::default();
    /// assert_eq!(control.detection_target(100), None);
    /// control.stop_at_coverage = Some(0.905);
    /// assert_eq!(control.detection_target(100), Some(91), "ceil");
    /// control.stop_at_coverage = Some(f64::NAN);
    /// assert_eq!(control.detection_target(100), None);
    /// ```
    #[must_use]
    pub fn detection_target(&self, num_faults: usize) -> Option<usize> {
        self.stop_at_coverage
            .filter(|c| !c.is_nan())
            .map(|c| (c.clamp(0.0, 1.0) * num_faults as f64).ceil() as usize)
    }
}

/// What a backend hands back to the campaign: the merged [`RunReport`]
/// plus backend-specific metadata for the campaign report.
///
/// ```
/// use fmossim_campaign::BackendRun;
///
/// // Custom backends fill only what they measure; the rest defaults.
/// let run = BackendRun {
///     jobs: Some(4),
///     ..BackendRun::default()
/// };
/// assert_eq!(run.run.detected(), 0);
/// assert!(!run.stopped_early && run.batches.is_empty());
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BackendRun {
    /// The measurements, in the common report format.
    pub run: RunReport,
    /// True iff the run stopped early because the coverage target was
    /// reached.
    pub stopped_early: bool,
    /// Resolved worker count (parallel backend).
    pub jobs: Option<usize>,
    /// Number of shards in the plan (parallel backend).
    pub shards: Option<usize>,
    /// The longest single shard's wall-clock seconds — the plan's
    /// critical path (parallel backend).
    pub max_shard_seconds: Option<f64>,
    /// Wall-clock seconds of the good-circuit-only reference
    /// simulation (serial backend).
    pub good_seconds: Option<f64>,
    /// The paper's serial-time estimate: Σ over faults of
    /// patterns-to-detect × average good-circuit pattern time (serial
    /// backend).
    pub serial_estimate_seconds: Option<f64>,
    /// Wall-clock seconds of the one-time good-tape record pass
    /// (parallel backend with tape reuse).
    pub tape_record_seconds: Option<f64>,
    /// Good-machine vicinities recorded on the tape — the solver work
    /// each replaying shard skipped (parallel backend with tape
    /// reuse).
    pub tape_groups: Option<usize>,
    /// Per-batch telemetry (adaptive backend; empty otherwise). For
    /// the adaptive backend the scalar `tape_*` fields above aggregate
    /// these per-batch entries.
    pub batches: Vec<BatchTelemetry>,
    /// True iff the run was cut short by a cooperative cancel (see
    /// [`Campaign::cancel_token`](crate::Campaign::cancel_token)).
    pub cancelled: bool,
}

/// An execution strategy a [`Campaign`](crate::Campaign) can run on.
///
/// The built-in strategies are selected with [`Backend`]; custom
/// implementations (a distributed runner, an instrumentation shim)
/// plug in via
/// [`Campaign::backend_impl`](crate::Campaign::backend_impl):
///
/// ```
/// use fmossim_campaign::{BackendRun, Campaign, CampaignBackend, RunControl, SimEvent, Workload};
/// use fmossim_circuits::Ram;
/// use fmossim_core::{ConcurrentConfig, ConcurrentSim};
/// use fmossim_faults::FaultUniverse;
/// use fmossim_testgen::TestSequence;
///
/// /// A minimal single-simulator strategy.
/// struct Inline;
///
/// impl CampaignBackend for Inline {
///     fn name(&self) -> String {
///         "inline".into()
///     }
///     fn run(
///         &mut self,
///         w: &Workload<'_>,
///         _control: &RunControl,
///         _emit: &mut dyn FnMut(SimEvent),
///     ) -> BackendRun {
///         let mut sim =
///             ConcurrentSim::new(w.net, w.universe.faults(), ConcurrentConfig::paper());
///         BackendRun {
///             run: sim.run(w.patterns, w.outputs),
///             ..BackendRun::default()
///         }
///     }
/// }
///
/// let ram = Ram::new(4, 4);
/// let seq = TestSequence::full(&ram);
/// let report = Campaign::new(ram.network())
///     .faults(FaultUniverse::stuck_nodes(ram.network()))
///     .patterns(seq.patterns())
///     .outputs(ram.observed_outputs())
///     .backend_impl(Box::new(Inline))
///     .run();
/// assert_eq!(report.backend, "inline");
/// assert!(report.detected() > 0);
/// ```
pub trait CampaignBackend {
    /// Short strategy name for reports ("serial", "concurrent", …).
    fn name(&self) -> String;

    /// Hands the backend the campaign's telemetry [`Registry`] before
    /// [`run`](CampaignBackend::run). Built-in backends clone the
    /// handle and attach it (or per-shard forks of it) to their
    /// simulators; the default implementation ignores it, so custom
    /// backends without instrumentation need no change.
    fn attach_telemetry(&mut self, _registry: &Registry) {}

    /// Hands the backend the campaign's cancel token before
    /// [`run`](CampaignBackend::run). Built-in backends poll it at
    /// their work-item boundary (pattern / fault / shard / batch) and
    /// return early with [`BackendRun::cancelled`] set; the default
    /// implementation ignores it, so custom backends that cannot stop
    /// mid-run need no change (their campaigns simply run to
    /// completion).
    fn attach_cancel(&mut self, _token: &Arc<AtomicBool>) {}

    /// Offers the backend a pre-recorded good tape to replay instead
    /// of paying its own record pass. Only the parallel backend
    /// honours it (its shards all replay one tape); the default
    /// implementation ignores the offer — a wrong-shape tape is also
    /// ignored at the driver layer, so injection can never change
    /// results.
    fn inject_good_tape(&mut self, _tape: Arc<GoodTape>) {}

    /// Hands the backend a [`TapeSlot`] to deposit the run's good tape
    /// into after [`run`](CampaignBackend::run). Only the parallel
    /// backend deposits (the adaptive backend records one short-lived
    /// tape per batch — there is no single whole-run tape to cache);
    /// the default implementation leaves the slot untouched.
    fn export_good_tape(&mut self, _slot: &TapeSlot) {}

    /// Grades the workload, streaming [`SimEvent`]s through `emit` and
    /// honouring `control`.
    fn run(
        &mut self,
        workload: &Workload<'_>,
        control: &RunControl,
        emit: &mut dyn FnMut(SimEvent),
    ) -> BackendRun;
}

/// Selects one of the built-in execution strategies for a campaign.
///
/// ```
/// use fmossim_campaign::{AdaptiveConfig, Backend, DetectionPolicy, SerialConfig};
///
/// let backend = Backend::Serial(SerialConfig::paper());
/// assert_eq!(backend.name(), "serial");
/// assert_eq!(backend.policy(), DetectionPolicy::AnyDifference);
/// assert_eq!(backend.into_impl().name(), "serial");
/// assert_eq!(Backend::Adaptive(AdaptiveConfig::paper(8)).name(), "adaptive");
/// ```
///
/// All built-in strategies grade the same workload and (for race-free fault classes
/// under [`DetectionPolicy::DefiniteOnly`]) produce identical
/// detection sets; they differ purely in execution: the concurrent
/// algorithm shares one good circuit across all faults, the serial
/// baseline simulates each fault privately, and the parallel strategy
/// shards the concurrent algorithm across worker threads.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Backend {
    /// The paper's serial baseline ([`SerialSim`]), fault by fault.
    Serial(SerialConfig),
    /// The paper's concurrent algorithm ([`ConcurrentSim`]).
    Concurrent(ConcurrentConfig),
    /// Fault-parallel sharded execution ([`ParallelSim`]) — use
    /// [`Jobs::Auto`](fmossim_par::Jobs::Auto) in the config to size
    /// the pool from the workload.
    Parallel(ParallelConfig),
    /// Adaptive batch-rebalancing execution
    /// ([`AdaptiveBackend`](crate::AdaptiveBackend)): the pattern
    /// sequence runs in batches, detected faults leave the universe,
    /// and shards are re-planned between batches from *measured*
    /// shard times. Detection sets stay bit-identical to
    /// [`Backend::Parallel`].
    Adaptive(AdaptiveConfig),
}

impl Backend {
    /// The strategy name as it appears in reports and on the CLI.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Serial(_) => "serial",
            Backend::Concurrent(_) => "concurrent",
            Backend::Parallel(_) => "parallel",
            Backend::Adaptive(_) => "adaptive",
        }
    }

    /// The configured detection policy (echoed into reports).
    #[must_use]
    pub fn policy(&self) -> DetectionPolicy {
        match self {
            Backend::Serial(c) => c.policy,
            Backend::Concurrent(c) => c.policy,
            Backend::Parallel(c) => c.sim.policy,
            Backend::Adaptive(c) => c.sim.policy,
        }
    }

    /// Whether bit-parallel fault packing
    /// ([`ConcurrentConfig::packing`]) is configured, for the backends
    /// built on the concurrent simulator; `None` for the serial
    /// baseline, which has no packed path (echoed into reports).
    #[must_use]
    pub fn packing(&self) -> Option<bool> {
        match self {
            Backend::Serial(_) => None,
            Backend::Concurrent(c) => Some(c.packing),
            Backend::Parallel(c) => Some(c.sim.packing),
            Backend::Adaptive(c) => Some(c.sim.packing),
        }
    }

    /// Switches on dynamic activity gating
    /// ([`ConcurrentConfig::gating`]) in the underlying simulator
    /// config, for the backends built on the concurrent simulator.
    /// The serial baseline is returned unchanged — it simulates each
    /// fault privately and has no shared good machine to gate against.
    ///
    /// ```
    /// use fmossim_campaign::{Backend, ConcurrentConfig};
    ///
    /// let b = Backend::Concurrent(ConcurrentConfig::paper()).with_gating();
    /// assert!(matches!(b, Backend::Concurrent(c) if c.gating));
    /// ```
    #[must_use]
    pub fn with_gating(mut self) -> Self {
        match &mut self {
            Backend::Serial(_) => {}
            Backend::Concurrent(c) => c.gating = true,
            Backend::Parallel(c) => c.sim.gating = true,
            Backend::Adaptive(c) => c.sim.gating = true,
        }
        self
    }

    /// Builds the adapter implementing this strategy.
    #[must_use]
    pub fn into_impl(self) -> Box<dyn CampaignBackend> {
        match self {
            Backend::Serial(config) => Box::new(SerialAdapter {
                config,
                cancel: no_cancel(),
            }),
            Backend::Concurrent(config) => Box::new(ConcurrentAdapter {
                config,
                telemetry: Registry::null(),
                cancel: no_cancel(),
            }),
            Backend::Parallel(config) => Box::new(ParallelAdapter {
                config,
                telemetry: Registry::null(),
                cancel: no_cancel(),
                inject_tape: None,
                export_tape: None,
            }),
            Backend::Adaptive(config) => Box::new(AdaptiveBackend::new(config)),
        }
    }
}

/// A fresh, never-set cancel token — the default until
/// [`CampaignBackend::attach_cancel`] replaces it.
pub(crate) fn no_cancel() -> Arc<AtomicBool> {
    Arc::new(AtomicBool::new(false))
}

/// One relaxed load: cancellation needs no ordering beyond "seen
/// eventually at the next work-item boundary".
pub(crate) fn is_cancelled(token: &AtomicBool) -> bool {
    token.load(Ordering::Relaxed)
}

pub(crate) fn emit_detections(
    detections: &[Detection],
    drop_detected: bool,
    emit: &mut dyn FnMut(SimEvent),
) {
    for d in detections {
        emit(SimEvent::Detected {
            fault: d.fault,
            pattern: d.pattern,
            phase: d.phase,
            potential: d.is_potential(),
        });
        if drop_detected {
            emit(SimEvent::FaultDropped { fault: d.fault });
        }
    }
}

/// Adapter driving [`ConcurrentSim`] pattern by pattern.
struct ConcurrentAdapter {
    config: ConcurrentConfig,
    telemetry: Registry,
    cancel: Arc<AtomicBool>,
}

impl CampaignBackend for ConcurrentAdapter {
    fn name(&self) -> String {
        "concurrent".into()
    }

    fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = registry.clone();
    }

    fn attach_cancel(&mut self, token: &Arc<AtomicBool>) {
        self.cancel = Arc::clone(token);
    }

    fn run(
        &mut self,
        w: &Workload<'_>,
        control: &RunControl,
        emit: &mut dyn FnMut(SimEvent),
    ) -> BackendRun {
        let t0 = Instant::now();
        let config = ConcurrentConfig {
            drop_on_detect: control.drop_detected,
            ..self.config
        };
        let mut sim = ConcurrentSim::new(w.net, w.universe.faults(), config);
        sim.attach_metrics(&self.telemetry);
        let target = control.detection_target(w.coverage_denominator());
        let mut run = RunReport {
            num_faults: w.universe.len(),
            ..RunReport::default()
        };
        let mut detected_weight = 0usize;
        let mut stopped_early = false;
        let mut cancelled = false;
        for (pi, pattern) in w.patterns.iter().enumerate() {
            if is_cancelled(&self.cancel) {
                cancelled = true;
                break;
            }
            if target.is_some_and(|t| detected_weight >= t) {
                stopped_early = true;
                break;
            }
            emit(SimEvent::PatternStart {
                pattern: pi,
                live: sim.live(),
            });
            let before = sim.detections().len();
            let stats = sim.step_pattern(pattern, w.outputs, pi);
            let new = &sim.detections()[before..];
            emit_detections(new, control.drop_detected, emit);
            detected_weight += new
                .iter()
                .map(|d| w.detection_weight(d.fault.index()))
                .sum::<usize>();
            run.patterns.push(stats);
            emit(SimEvent::PatternDone {
                pattern: pi,
                detected_so_far: sim.detections().len(),
                seconds: stats.seconds,
            });
        }
        run.detections = sim.detections().to_vec();
        // Canonical order: the simulator emits same-strobe detections
        // in output-node order; the report format promises
        // (pattern, phase, fault).
        run.detections
            .sort_by_key(|d| (d.pattern, d.phase, d.fault.index()));
        run.total_seconds = t0.elapsed().as_secs_f64();
        BackendRun {
            run,
            stopped_early,
            cancelled,
            ..BackendRun::default()
        }
    }
}

/// Adapter driving [`SerialSim`] fault by fault.
struct SerialAdapter {
    config: SerialConfig,
    cancel: Arc<AtomicBool>,
}

impl CampaignBackend for SerialAdapter {
    fn name(&self) -> String {
        "serial".into()
    }

    fn attach_cancel(&mut self, token: &Arc<AtomicBool>) {
        self.cancel = Arc::clone(token);
    }

    fn run(
        &mut self,
        w: &Workload<'_>,
        control: &RunControl,
        emit: &mut dyn FnMut(SimEvent),
    ) -> BackendRun {
        let config = SerialConfig {
            stop_at_detection: control.drop_detected,
            ..self.config
        };
        let sim = SerialSim::new(w.net, config);
        let good = sim.observe_good(w.patterns, w.outputs);
        let t0 = Instant::now();
        let target = control.detection_target(w.coverage_denominator());
        let mut run = RunReport {
            num_faults: w.universe.len(),
            patterns: vec![PatternStats::default(); w.patterns.len()],
            ..RunReport::default()
        };
        let mut estimate = 0.0;
        let mut detected_weight = 0usize;
        let mut stopped_early = false;
        let mut cancelled = false;
        for (k, &fault) in w.universe.faults().iter().enumerate() {
            if is_cancelled(&self.cancel) {
                cancelled = true;
                break;
            }
            if target.is_some_and(|t| detected_weight >= t) {
                stopped_early = true;
                break;
            }
            let id = FaultId(u32::try_from(k).expect("fault id fits"));
            let outcome = sim.run_fault(id, fault, w.patterns, w.outputs, &good);
            let charged = outcome
                .detection
                .map_or(w.patterns.len(), |d| d.pattern + 1);
            estimate += charged as f64 * good.avg_pattern_seconds();
            if let Some(d) = outcome.detection {
                emit_detections(&[d], control.drop_detected, emit);
                detected_weight += w.detection_weight(k);
                run.patterns[d.pattern].detected += 1;
                run.detections.push(d);
            }
        }
        // Canonical detection order, as the parallel merge produces:
        // fault-major emission order is an execution detail.
        run.detections
            .sort_by_key(|d| (d.pattern, d.phase, d.fault.index()));
        run.total_seconds = t0.elapsed().as_secs_f64();
        BackendRun {
            run,
            stopped_early,
            cancelled,
            good_seconds: Some(good.total_seconds),
            serial_estimate_seconds: Some(estimate),
            ..BackendRun::default()
        }
    }
}

/// Adapter driving [`ParallelSim`] shard by shard.
struct ParallelAdapter {
    config: ParallelConfig,
    telemetry: Registry,
    cancel: Arc<AtomicBool>,
    inject_tape: Option<Arc<GoodTape>>,
    export_tape: Option<TapeSlot>,
}

impl CampaignBackend for ParallelAdapter {
    fn name(&self) -> String {
        "parallel".into()
    }

    fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = registry.clone();
    }

    fn attach_cancel(&mut self, token: &Arc<AtomicBool>) {
        self.cancel = Arc::clone(token);
    }

    fn inject_good_tape(&mut self, tape: Arc<GoodTape>) {
        self.inject_tape = Some(tape);
    }

    fn export_good_tape(&mut self, slot: &TapeSlot) {
        self.export_tape = Some(Arc::clone(slot));
    }

    fn run(
        &mut self,
        w: &Workload<'_>,
        control: &RunControl,
        emit: &mut dyn FnMut(SimEvent),
    ) -> BackendRun {
        let mut config = self.config;
        config.sim.drop_on_detect = control.drop_detected;
        config.reuse_good_tape = control.reuse_good_tape;
        let mut sim = ParallelSim::new(w.net, w.universe.clone(), config);
        sim.attach_metrics(&self.telemetry);
        if let Some(tape) = self.inject_tape.take() {
            sim.inject_good_tape(tape);
        }
        let target = control.detection_target(w.coverage_denominator());
        let cancel = Arc::clone(&self.cancel);
        let mut detected = 0usize;
        let mut stopped_early = false;
        let mut cancelled = false;
        let run = sim.run_streaming(w.patterns, w.outputs, |o, rep| {
            emit_detections(&rep.detections, control.drop_detected, emit);
            detected += rep
                .detections
                .iter()
                .map(|d| w.detection_weight(d.fault.index()))
                .sum::<usize>();
            emit(SimEvent::ShardDone {
                shard: o.shard,
                faults: o.faults,
                detected: o.detected,
                seconds: o.seconds,
            });
            if is_cancelled(&cancel) {
                cancelled = true;
                ControlFlow::Break(())
            } else if target.is_some_and(|t| detected >= t) {
                stopped_early = true;
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        if let (Some(slot), Some(tape)) = (&self.export_tape, &run.good_tape) {
            *slot.lock().expect("tape slot poisoned") = Some(Arc::clone(tape));
        }
        BackendRun {
            run: run.report,
            stopped_early,
            cancelled,
            jobs: Some(sim.workers()),
            shards: Some(sim.plan().num_shards()),
            max_shard_seconds: Some(run.shard_seconds.iter().copied().fold(0.0, f64::max)),
            tape_record_seconds: run.tape.map(|t| t.record_seconds),
            tape_groups: run.tape.map(|t| t.groups),
            ..BackendRun::default()
        }
    }
}
