//! Streaming campaign events, delivered to the observer registered
//! with [`Campaign::on_event`](crate::Campaign::on_event) while the
//! backend runs.
//!
//! Which events a backend emits follows its execution order:
//!
//! * [`Backend::Concurrent`](crate::Backend::Concurrent) is
//!   pattern-major — it streams [`SimEvent::PatternStart`] /
//!   [`SimEvent::PatternDone`] around each pattern, with
//!   [`SimEvent::Detected`] / [`SimEvent::FaultDropped`] in between.
//! * [`Backend::Serial`](crate::Backend::Serial) is fault-major — it
//!   streams `Detected` / `FaultDropped` per fault as each private
//!   simulation finishes (pattern events would be meaningless).
//! * [`Backend::Parallel`](crate::Backend::Parallel) streams one
//!   [`SimEvent::ShardDone`] per completed shard (in completion order,
//!   which is scheduling-dependent across worker threads) with the
//!   shard's `Detected` / `FaultDropped` events just before it.
//! * [`Backend::Adaptive`](crate::Backend::Adaptive) additionally
//!   closes every batch with a [`SimEvent::BatchDone`] and every
//!   re-plan with a [`SimEvent::Span`].
//!
//! Every backend's stream ends with one `Span { name: "campaign.run" }`
//! carrying the whole run's wall-clock seconds.

use fmossim_faults::FaultId;

/// One streaming event from a running campaign.
///
/// ```
/// use fmossim_campaign::{Campaign, SimEvent};
/// use fmossim_circuits::Ram;
/// use fmossim_faults::FaultUniverse;
/// use fmossim_testgen::TestSequence;
///
/// let ram = Ram::new(4, 4);
/// let seq = TestSequence::full(&ram);
/// let mut drops = 0;
/// let report = Campaign::new(ram.network())
///     .faults(FaultUniverse::stuck_nodes(ram.network()))
///     .patterns(seq.patterns())
///     .outputs(ram.observed_outputs())
///     .on_event(|e| {
///         if let SimEvent::FaultDropped { .. } = e {
///             drops += 1;
///         }
///     })
///     .run();
/// assert_eq!(drops, report.detected(), "drop-on-detect is the default");
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SimEvent {
    /// A pattern is about to be simulated (concurrent backend).
    PatternStart {
        /// Zero-based pattern index.
        pattern: usize,
        /// Faulty circuits still live when the pattern starts.
        live: usize,
    },
    /// A pattern finished (concurrent backend).
    PatternDone {
        /// Zero-based pattern index.
        pattern: usize,
        /// Total detections so far in this run.
        detected_so_far: usize,
        /// Wall-clock seconds this pattern took.
        seconds: f64,
    },
    /// A fault was detected.
    Detected {
        /// The detected fault (parent-universe id).
        fault: FaultId,
        /// Pattern index of the detecting strobe.
        pattern: usize,
        /// Phase index within the pattern.
        phase: usize,
        /// True iff the difference involved an `X` (potential
        /// detection).
        potential: bool,
    },
    /// A faulty circuit was dropped and will not be simulated again —
    /// follows `Detected` when
    /// [`drop_detected`](crate::Campaign::drop_detected) is on.
    FaultDropped {
        /// The dropped fault (parent-universe id).
        fault: FaultId,
    },
    /// A shard completed (parallel backend, in scheduling-dependent
    /// completion order; adaptive backend, in deterministic shard
    /// order per batch).
    ShardDone {
        /// Shard index in the plan.
        shard: usize,
        /// Faults the shard graded.
        faults: usize,
        /// Faults the shard detected.
        detected: usize,
        /// The shard's own wall-clock seconds.
        seconds: f64,
    },
    /// A pattern batch completed (adaptive backend), after its shards'
    /// `Detected`/`FaultDropped`/`ShardDone` events.
    BatchDone {
        /// Zero-based batch index.
        batch: usize,
        /// Global index of the batch's first pattern.
        first_pattern: usize,
        /// Patterns in the batch.
        patterns: usize,
        /// Shards the batch ran.
        shards: usize,
        /// Total detections so far in this run.
        detected_so_far: usize,
        /// The batch's measured load-imbalance ratio
        /// (`max_shard_seconds / mean_shard_seconds`).
        imbalance: f64,
    },
    /// A named timed section finished — the span-tracing hook. The
    /// adaptive backend emits one per between-batch re-plan
    /// (`"campaign.replan"`); every campaign run ends with one
    /// `"campaign.run"` span covering the whole backend run.
    Span {
        /// Dotted span name, matching the telemetry metric catalogue
        /// (e.g. `"campaign.run"`, `"campaign.replan"`).
        name: &'static str,
        /// The span's wall-clock duration in seconds.
        seconds: f64,
    },
}
