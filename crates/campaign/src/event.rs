//! Streaming campaign events, delivered to the observer registered
//! with [`Campaign::on_event`](crate::Campaign::on_event) while the
//! backend runs.
//!
//! Which events a backend emits follows its execution order:
//!
//! * [`Backend::Concurrent`](crate::Backend::Concurrent) is
//!   pattern-major — it streams [`SimEvent::PatternStart`] /
//!   [`SimEvent::PatternDone`] around each pattern, with
//!   [`SimEvent::Detected`] / [`SimEvent::FaultDropped`] in between.
//! * [`Backend::Serial`](crate::Backend::Serial) is fault-major — it
//!   streams `Detected` / `FaultDropped` per fault as each private
//!   simulation finishes (pattern events would be meaningless).
//! * [`Backend::Parallel`](crate::Backend::Parallel) streams one
//!   [`SimEvent::ShardDone`] per completed shard (in completion order,
//!   which is scheduling-dependent across worker threads) with the
//!   shard's `Detected` / `FaultDropped` events just before it.

use fmossim_faults::FaultId;

/// One streaming event from a running campaign.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SimEvent {
    /// A pattern is about to be simulated (concurrent backend).
    PatternStart {
        /// Zero-based pattern index.
        pattern: usize,
        /// Faulty circuits still live when the pattern starts.
        live: usize,
    },
    /// A pattern finished (concurrent backend).
    PatternDone {
        /// Zero-based pattern index.
        pattern: usize,
        /// Total detections so far in this run.
        detected_so_far: usize,
        /// Wall-clock seconds this pattern took.
        seconds: f64,
    },
    /// A fault was detected.
    Detected {
        /// The detected fault (parent-universe id).
        fault: FaultId,
        /// Pattern index of the detecting strobe.
        pattern: usize,
        /// Phase index within the pattern.
        phase: usize,
        /// True iff the difference involved an `X` (potential
        /// detection).
        potential: bool,
    },
    /// A faulty circuit was dropped and will not be simulated again —
    /// follows `Detected` when
    /// [`drop_detected`](crate::Campaign::drop_detected) is on.
    FaultDropped {
        /// The dropped fault (parent-universe id).
        fault: FaultId,
    },
    /// A shard completed (parallel backend).
    ShardDone {
        /// Shard index in the plan.
        shard: usize,
        /// Faults the shard graded.
        faults: usize,
        /// Faults the shard detected.
        detected: usize,
        /// The shard's own wall-clock seconds.
        seconds: f64,
    },
}
