//! The adaptive batch-rebalancing backend: `record → replay-into-shards
//! → merge → re-plan`, batch after batch.
//!
//! The one-shot parallel backend plans its shards once, from a *static*
//! per-fault cost proxy, and lives with the plan as detected faults
//! drop out unevenly. This backend instead splits the pattern sequence
//! into batches and, between batches,
//!
//! 1. **drops detected faults** from the surviving universe (under
//!    [`RunControl::drop_detected`]),
//! 2. **re-plans shards from measured shard times** — each batch's
//!    per-shard wall-clock seconds are folded into an EWMA per-fault
//!    cost model ([`fmossim_par::CostModel`]) that drives a weighted
//!    LPT re-partition ([`fmossim_par::ShardPlan::build_weighted`]),
//!    and
//! 3. **re-sizes the pool** via the feedback extension of
//!    [`Jobs::Auto`] ([`Jobs::refine`]) as the surviving workload
//!    shrinks.
//!
//! The good machine is carried across batches by one
//! [`TapeRecorder`]; each batch's tape replays into the current
//! shards' simulators, and surviving fault state migrates between
//! differently-partitioned shards as
//! [`FaultSnapshot`](fmossim_core::FaultSnapshot)s
//! ([`ConcurrentSim::export_fault`](fmossim_core::ConcurrentSim::export_fault)
//! / [`resume`](fmossim_core::ConcurrentSim::resume)). Detection sets
//! are **bit-identical** to [`Backend::Parallel`](crate::Backend) for
//! every batch size (`tests/adaptive_equivalence.rs` asserts it) —
//! re-planning moves time around, never results.

use crate::backend::{
    emit_detections, is_cancelled, no_cancel, BackendRun, CampaignBackend, RunControl, Workload,
};
use crate::event::SimEvent;
use fmossim_core::{ConcurrentConfig, PatternStats, RunReport, TapeRecorder};
use fmossim_faults::FaultId;
use fmossim_par::{
    run_batch, ArenaPool, CostModel, Jobs, ResumePoint, ShardPlan, ShardStrategy,
    DEFAULT_COST_ALPHA,
};
use fmossim_telemetry::Registry;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

/// Default patterns per batch when none is configured: small enough to
/// re-plan while the detection curve is still falling, large enough to
/// amortise the per-batch shard rebuild.
pub const DEFAULT_BATCH_PATTERNS: usize = 16;

/// Configuration of the adaptive batch-rebalancing backend
/// ([`Backend::Adaptive`](crate::Backend::Adaptive)).
///
/// ```
/// use fmossim_campaign::AdaptiveConfig;
/// use fmossim_par::Jobs;
///
/// let config = AdaptiveConfig::paper(8); // 8-pattern batches
/// assert_eq!(config.batch, 8);
/// assert_eq!(config.jobs, Jobs::Auto);
/// assert!(config.rebalance);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveConfig {
    /// Patterns per batch; `0` means the whole sequence in one batch
    /// (degenerating to a tape-backed parallel run with no
    /// re-planning opportunity).
    pub batch: usize,
    /// Worker selection. [`Jobs::Auto`] additionally enables the
    /// between-batch pool feedback ([`Jobs::refine`]); a fixed count
    /// is honoured for every batch.
    pub jobs: Jobs,
    /// Shards per batch; `None` means one per (current) worker.
    pub shards: Option<usize>,
    /// How the *first* batch is planned, before any measurement
    /// exists. Re-planned batches always use measured-cost LPT.
    pub initial_strategy: ShardStrategy,
    /// Whether to re-plan shards from measured times between batches
    /// (default `true`). With `false` the initial plan is frozen —
    /// detected faults still drop out, but nothing is re-balanced.
    /// This is the A/B baseline `scaling_par --backend adaptive`
    /// measures against.
    pub rebalance: bool,
    /// EWMA smoothing factor for the measured cost model, in `(0, 1]`.
    pub alpha: f64,
    /// Recycle shard-simulator arenas across batch boundaries through
    /// an [`fmossim_par::ArenaPool`] (default `true`). Every batch
    /// rebuilds one simulator per shard; without reuse each rebuild
    /// reallocates the engine's solver scratch, the divergence-record
    /// store, the structural tables and the event queue. Reuse is
    /// bit-invisible — `false` restores the allocate-per-shard
    /// behaviour for allocator A/B measurements (`allocstats`).
    pub reuse_arenas: bool,
    /// Configuration forwarded to every shard's
    /// [`ConcurrentSim`](fmossim_core::ConcurrentSim).
    pub sim: ConcurrentConfig,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            batch: DEFAULT_BATCH_PATTERNS,
            jobs: Jobs::Auto,
            shards: None,
            initial_strategy: ShardStrategy::CostEstimated,
            rebalance: true,
            alpha: DEFAULT_COST_ALPHA,
            reuse_arenas: true,
            sim: ConcurrentConfig::default(),
        }
    }
}

impl AdaptiveConfig {
    /// The paper's simulator configuration with `batch` patterns per
    /// batch (`0` = one batch) and autotuned, feedback-resized workers.
    #[must_use]
    pub fn paper(batch: usize) -> Self {
        AdaptiveConfig {
            batch,
            sim: ConcurrentConfig::paper(),
            ..AdaptiveConfig::default()
        }
    }
}

/// Telemetry for one completed batch of an adaptive run, carried in
/// [`BackendRun::batches`] and the
/// [`CampaignReport`](crate::CampaignReport) JSON artifact.
///
/// ```
/// let t = fmossim_campaign::BatchTelemetry {
///     first_pattern: 16,
///     patterns: 16,
///     live_before: 40,
///     detected: 12,
///     workers: 2,
///     shards: 2,
///     moved_faults: 7,
///     max_shard_seconds: 0.05,
///     mean_shard_seconds: 0.04,
///     imbalance: 1.25,
///     tape_record_seconds: 0.002,
///     tape_groups: 96,
/// };
/// assert!((t.imbalance - t.max_shard_seconds / t.mean_shard_seconds).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BatchTelemetry {
    /// Global index of the batch's first pattern.
    pub first_pattern: usize,
    /// Patterns in the batch.
    pub patterns: usize,
    /// Faults live when the batch started.
    pub live_before: usize,
    /// Faults detected during the batch.
    pub detected: usize,
    /// Workers the batch ran on (after any pool feedback).
    pub workers: usize,
    /// Shards in the batch's plan.
    pub shards: usize,
    /// Rebalance delta: surviving faults whose shard assignment
    /// changed relative to the previous batch's plan (`0` for the
    /// first batch and for frozen plans).
    pub moved_faults: usize,
    /// The batch's longest single shard, in seconds (its critical
    /// path).
    pub max_shard_seconds: f64,
    /// Mean shard seconds of the batch.
    pub mean_shard_seconds: f64,
    /// The load-imbalance ratio `max_shard_seconds /
    /// mean_shard_seconds` (`1.0` = perfectly balanced; `>= 1`
    /// always). This is the quantity re-planning exists to shrink.
    pub imbalance: f64,
    /// Seconds spent recording this batch's good tape.
    pub tape_record_seconds: f64,
    /// Good-machine vicinities on this batch's tape.
    pub tape_groups: usize,
}

/// The adaptive batch-rebalancing [`CampaignBackend`]: it runs the
/// `record → replay-into-shards → merge → re-plan` loop, batch after
/// batch. Normally reached via
/// [`Backend::Adaptive`](crate::Backend::Adaptive); constructible
/// directly for use with
/// [`Campaign::backend_impl`](crate::Campaign::backend_impl).
///
/// ```
/// use fmossim_campaign::{AdaptiveBackend, AdaptiveConfig, Backend, Campaign};
/// use fmossim_circuits::Ram;
/// use fmossim_faults::FaultUniverse;
/// use fmossim_testgen::TestSequence;
///
/// let ram = Ram::new(4, 4);
/// let seq = TestSequence::full(&ram);
/// let run = |campaign: Campaign| campaign
///     .faults(FaultUniverse::stuck_nodes(ram.network()))
///     .patterns(seq.patterns())
///     .outputs(ram.observed_outputs())
///     .run();
/// let adaptive = run(Campaign::new(ram.network())
///     .backend(Backend::Adaptive(AdaptiveConfig::paper(8))));
/// let parallel = run(Campaign::new(ram.network())
///     .backend(Backend::Parallel(fmossim_par::ParallelConfig::auto())));
/// // Batching and re-planning never change the verdicts.
/// assert_eq!(adaptive.detections(), parallel.detections());
/// assert!(!adaptive.batches.is_empty());
/// # let _ = AdaptiveBackend::new(AdaptiveConfig::paper(8));
/// ```
#[derive(Clone, Debug)]
pub struct AdaptiveBackend {
    config: AdaptiveConfig,
    telemetry: Registry,
    cancel: Arc<AtomicBool>,
}

impl AdaptiveBackend {
    /// Creates the backend from its configuration.
    #[must_use]
    pub fn new(config: AdaptiveConfig) -> Self {
        AdaptiveBackend {
            config,
            telemetry: Registry::null(),
            cancel: no_cancel(),
        }
    }
}

/// Shard index per fault id, for the rebalance-delta count.
fn assignment(plan: &ShardPlan, num_faults: usize) -> Vec<Option<usize>> {
    let mut map = vec![None; num_faults];
    for (s, ids) in plan.shards().enumerate() {
        for &id in ids {
            map[id.index()] = Some(s);
        }
    }
    map
}

impl CampaignBackend for AdaptiveBackend {
    fn name(&self) -> String {
        "adaptive".into()
    }

    fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = registry.clone();
    }

    fn attach_cancel(&mut self, token: &Arc<AtomicBool>) {
        self.cancel = Arc::clone(token);
    }

    fn run(
        &mut self,
        w: &Workload<'_>,
        control: &RunControl,
        emit: &mut dyn FnMut(SimEvent),
    ) -> BackendRun {
        let t0 = Instant::now();
        let m_batches = self.telemetry.counter("campaign.batches");
        let m_imbalance = self.telemetry.gauge("campaign.batch.imbalance");
        let m_replan = self.telemetry.gauge("campaign.replan.seconds");
        let m_moved = self.telemetry.counter("campaign.moved_faults");
        let cfg = &self.config;
        let n = w.universe.len();
        let total_patterns = w.patterns.len();
        let batch_size = if cfg.batch == 0 {
            total_patterns.max(1)
        } else {
            cfg.batch
        };
        let sim = ConcurrentConfig {
            drop_on_detect: control.drop_detected,
            ..cfg.sim
        };

        let resolved = cfg.jobs.resolve(w.net, w.universe);
        let mut cost = CostModel::with_alpha(w.net, w.universe, cfg.alpha);
        let mut survivors: Vec<FaultId> = w.universe.iter().map(|(id, _)| id).collect();
        // Pool feedback compares like with like: the *static* cost of
        // the survivors against the static cost of the whole universe.
        // (The EWMA model drifts toward measured-seconds units, so its
        // totals must not be mixed with this pre-observation total —
        // `Jobs::refine` requires one consistent unit.)
        let static_costs: Vec<f64> = w
            .universe
            .iter()
            .map(|(_, f)| fmossim_par::fault_cost(w.net, &f) as f64)
            .collect();
        let initial_cost: f64 = static_costs.iter().sum();
        let mut workers = resolved;
        let mut plan = ShardPlan::build(
            w.net,
            w.universe,
            cfg.shards.unwrap_or(resolved).max(1),
            cfg.initial_strategy,
        );
        let mut recorder = TapeRecorder::new(w.net, sim.engine);
        let arenas = cfg.reuse_arenas.then(ArenaPool::new);
        let mut resume: Option<ResumePoint<'_>> = None;
        let mut moved_faults = 0usize; // churn that produced the *current* plan

        // The stop target is evaluated in parent-universe terms when
        // the workload is collapsed (each representative's detection
        // weighted by its class size); telemetry below stays in
        // workload terms.
        let target = control.detection_target(w.coverage_denominator());
        let mut detected_total = 0usize;
        let mut detected_weight = 0usize;
        let mut stopped_early = false;
        let mut cancelled = false;
        let mut pattern_stats: Vec<PatternStats> = Vec::new();
        let mut detections = Vec::new();
        let mut batches: Vec<BatchTelemetry> = Vec::new();
        let (mut tape_seconds, mut tape_groups) = (0.0, 0usize);
        let mut max_shard_seconds = 0.0f64;

        let mut first = 0usize;
        while first < total_patterns {
            if is_cancelled(&self.cancel) {
                cancelled = true;
                break;
            }
            if survivors.is_empty() {
                // Every fault detected and dropped: the remaining
                // patterns would be all-idle shards. Keep the report's
                // per-pattern shape and stop simulating.
                pattern_stats.resize(total_patterns, PatternStats::default());
                break;
            }
            let batch = &w.patterns[first..(first + batch_size).min(total_patterns)];
            let tape = recorder.record(batch);
            tape_seconds += tape.record_seconds();
            tape_groups += tape.num_groups();
            let live_before = survivors.len();

            let run = run_batch(
                w.net,
                w.universe,
                &plan,
                workers,
                sim,
                resume.as_ref(),
                &tape,
                batch,
                w.outputs,
                first,
                &self.telemetry,
                arenas.as_ref(),
            );

            // Stream events in shard order (deterministic, unlike the
            // one-shot parallel backend's completion order).
            let mut batch_detected = 0usize;
            for (s, rep) in run.reports.iter().enumerate() {
                emit_detections(&rep.detections, control.drop_detected, emit);
                batch_detected += rep.detected();
                detected_weight += rep
                    .detections
                    .iter()
                    .map(|d| w.detection_weight(d.fault.index()))
                    .sum::<usize>();
                emit(SimEvent::ShardDone {
                    shard: s,
                    faults: plan.shard(s).len(),
                    detected: rep.detected(),
                    seconds: rep.total_seconds,
                });
            }
            detected_total += batch_detected;

            let shards_run = run.shard_seconds.len();
            let max_s = run.shard_seconds.iter().copied().fold(0.0f64, f64::max);
            let mean_s = if shards_run == 0 {
                0.0
            } else {
                run.shard_seconds.iter().sum::<f64>() / shards_run as f64
            };
            let imbalance = if mean_s > 0.0 { max_s / mean_s } else { 1.0 };
            max_shard_seconds = max_shard_seconds.max(max_s);
            batches.push(BatchTelemetry {
                first_pattern: first,
                patterns: batch.len(),
                live_before,
                detected: batch_detected,
                workers,
                shards: shards_run,
                moved_faults,
                max_shard_seconds: max_s,
                mean_shard_seconds: mean_s,
                imbalance,
                tape_record_seconds: tape.record_seconds(),
                tape_groups: tape.num_groups(),
            });
            emit(SimEvent::BatchDone {
                batch: batches.len() - 1,
                first_pattern: first,
                patterns: batch.len(),
                shards: shards_run,
                detected_so_far: detected_total,
                imbalance,
            });
            m_batches.inc();
            m_imbalance.add(imbalance);

            let merged = RunReport::merge(run.reports);
            pattern_stats.extend(merged.patterns);
            detections.extend(merged.detections);

            first += batch.len();
            if target.is_some_and(|t| detected_weight >= t) {
                stopped_early = first < total_patterns;
                break;
            }
            if first >= total_patterns {
                break;
            }

            // Batch boundary: feed measurements back, carry the good
            // machine and the surviving fault states, and re-plan.
            let replan_t0 = Instant::now();
            cost.observe(&plan, &run.shard_seconds);
            let mut snapshots = vec![None; n];
            survivors.clear();
            for (id, snap) in run.survivors {
                snapshots[id.index()] = Some(snap);
                survivors.push(id);
            }
            survivors.sort_unstable_by_key(|id: &FaultId| id.index());
            resume = Some(ResumePoint {
                good: recorder.good_state().clone(),
                snapshots,
            });
            let surviving_static: f64 = survivors.iter().map(|id| static_costs[id.index()]).sum();
            workers = cfg.jobs.refine(resolved, initial_cost, surviving_static);
            if cfg.rebalance {
                let prev = assignment(&plan, n);
                plan = ShardPlan::build_weighted(
                    &survivors,
                    cfg.shards.unwrap_or(workers).max(1),
                    |id| cost.estimate(id),
                );
                let next = assignment(&plan, n);
                moved_faults = survivors
                    .iter()
                    .filter(|id| prev[id.index()].is_some() && prev[id.index()] != next[id.index()])
                    .count();
            } else {
                let mut alive = vec![false; n];
                for &id in &survivors {
                    alive[id.index()] = true;
                }
                plan = plan.retain(|id| alive[id.index()]);
                moved_faults = 0;
            }
            let replan_seconds = replan_t0.elapsed().as_secs_f64();
            m_replan.add(replan_seconds);
            m_moved.add(moved_faults as u64);
            emit(SimEvent::Span {
                name: "campaign.replan",
                seconds: replan_seconds,
            });
        }

        let mut run = RunReport {
            patterns: pattern_stats,
            detections,
            num_faults: n,
            total_seconds: t0.elapsed().as_secs_f64(),
        };
        // Canonical order, exactly as the one-shot merge produces.
        run.detections
            .sort_by_key(|d| (d.pattern, d.phase, d.fault.index()));
        let shards0 = batches.first().map(|b| b.shards);
        BackendRun {
            run,
            stopped_early,
            cancelled,
            jobs: Some(resolved),
            shards: shards0,
            max_shard_seconds: Some(max_shard_seconds),
            tape_record_seconds: Some(tape_seconds),
            tape_groups: Some(tape_groups),
            batches,
            ..BackendRun::default()
        }
    }
}
