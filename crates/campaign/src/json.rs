//! A minimal JSON reader/writer — just enough for the stable
//! [`CampaignReport`](crate::CampaignReport) artifact format, with no
//! external dependencies (the build environment is network-isolated).
//!
//! Numbers are stored as `f64`; Rust's `Display` for `f64` prints the
//! shortest string that parses back to the same value, so the
//! round-trip `to_json` → `from_json` is exact for every finite value
//! the reports contain (counts are well below 2^53).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
///
/// ```
/// use fmossim_campaign::json::{parse, Value};
///
/// let v = parse(r#"{"jobs": 4, "name": "ram64", "ok": true, "gone": null, "xs": [1, 2]}"#)
///     .expect("well-formed");
/// assert_eq!(v.get("jobs").and_then(Value::as_usize), Some(4));
/// assert_eq!(v.get("jobs").and_then(Value::as_f64), Some(4.0));
/// assert_eq!(v.get("name").and_then(Value::as_str), Some("ram64"));
/// assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
/// assert!(v.get("gone").is_some_and(Value::is_null));
/// assert_eq!(v.get("xs").and_then(Value::as_arr).map(<[Value]>::len), Some(2));
/// assert_eq!(v.get("missing"), None);
/// // `Display` serialises back to compact JSON with sorted keys.
/// assert_eq!(
///     v.to_string(),
///     r#"{"gone":null,"jobs":4,"name":"ram64","ok":true,"xs":[1,2]}"#
/// );
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keys are sorted (BTreeMap): serialisation is
    /// deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number, if this is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a usize (must be a non-negative integer).
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// The string, if this is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool, if this is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// True iff `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                // JSON has no NaN/inf; reports never contain them.
                assert!(n.is_finite(), "non-finite number in report JSON");
                let _ = write!(out, "{n}");
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Arr(v) => {
                out.push('[');
                for (i, item) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(m) => {
                out.push('{');
                for (i, (k, item)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    item.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Value {
    /// Serialises to compact JSON text.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Convenience: builds an object from key/value pairs.
///
/// ```
/// use fmossim_campaign::json::{obj, Value};
///
/// let v = obj([("b", Value::Num(1.0)), ("a", Value::Bool(false))]);
/// assert_eq!(v.to_string(), r#"{"a":false,"b":1}"#); // sorted keys
/// ```
#[must_use]
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`].
///
/// ```
/// use fmossim_campaign::json::{parse, Value};
///
/// assert_eq!(parse("[1, true]").unwrap().as_arr().unwrap().len(), 2);
/// assert!(parse("{\"open\": ").is_err());
/// ```
///
/// # Errors
///
/// Returns a message with the byte offset on malformed input.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            // Overflowing literals (1e999) parse to infinity in Rust;
            // JSON has no non-finite numbers, so reject them here
            // rather than panic later when re-serialising.
            .filter(|n| n.is_finite())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not needed for our
                            // ASCII-only artifact format.
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| format!("bad codepoint at {}", self.pos))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        let text = r#"{"a": [1, -2.5, 1e3], "b": "x\"y\n", "c": true, "d": null}"#;
        let v = parse(text).expect("parses");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Value::Num(1000.0));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\"y\n"));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert!(v.get("d").unwrap().is_null());
        let again = parse(&v.to_string()).expect("reparses");
        assert_eq!(v, again);
    }

    #[test]
    fn f64_display_roundtrips_exactly() {
        for n in [0.1, 1.0 / 3.0, 6.02e23, 1e-12, 0.0, 123456789.123456] {
            let v = Value::Num(n);
            let back = parse(&v.to_string()).expect("parses");
            assert_eq!(back.as_f64(), Some(n), "value {n}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"abc",
            "1e999",
            "-1e999",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn usize_accessor_rejects_fractions_and_negatives() {
        assert_eq!(Value::Num(3.0).as_usize(), Some(3));
        assert_eq!(Value::Num(3.5).as_usize(), None);
        assert_eq!(Value::Num(-1.0).as_usize(), None);
        assert_eq!(Value::Str("3".into()).as_usize(), None);
    }
}
