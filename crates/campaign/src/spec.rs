//! Textual fault-universe specs — one parser shared by the CLI's
//! `--universe` option and the examples, instead of each call site
//! re-assembling the same unions.

use fmossim_faults::FaultUniverse;
use fmossim_netlist::Network;

/// Spellings accepted by [`universe_from_spec`], for usage messages.
///
/// ```
/// assert!(fmossim_campaign::UNIVERSE_SPECS.contains(&"stuck-nodes"));
/// ```
pub const UNIVERSE_SPECS: [&str; 3] = ["stuck-nodes", "stuck-transistors", "all"];

/// Builds a fault universe from its CLI spelling:
///
/// ```
/// use fmossim_campaign::universe_from_spec;
/// use fmossim_circuits::Ram;
///
/// let ram = Ram::new(4, 4);
/// let nodes = universe_from_spec(ram.network(), "stuck-nodes").unwrap();
/// let all = universe_from_spec(ram.network(), "all").unwrap();
/// assert!(all.len() > nodes.len());
/// assert!(universe_from_spec(ram.network(), "everything").is_err());
/// ```
///
/// * `stuck-nodes` — every storage node stuck-at-0/1 (the paper's
///   primary class);
/// * `stuck-transistors` — every functional transistor
///   stuck-open/closed (the paper's §5 validation class);
/// * `all` — the union of both.
///
/// Structural fault classes that must first mutate the network (bridge
/// shorts, line opens) are built with
/// [`fmossim_faults::inject`] and combined via
/// [`FaultUniverse::union`].
///
/// # Errors
///
/// Returns a message naming the accepted spellings on an unknown spec.
pub fn universe_from_spec(net: &Network, spec: &str) -> Result<FaultUniverse, String> {
    match spec {
        "stuck-nodes" => Ok(FaultUniverse::stuck_nodes(net)),
        "stuck-transistors" => Ok(FaultUniverse::stuck_transistors(net)),
        "all" => Ok(FaultUniverse::stuck_nodes(net).union(FaultUniverse::stuck_transistors(net))),
        other => Err(format!(
            "unknown universe `{other}` (expected {})",
            UNIVERSE_SPECS.join("|")
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_netlist::{Drive, Logic, Size, TransistorType};

    fn inverter() -> Network {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::L);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::P, Drive::D2, a, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
        net
    }

    #[test]
    fn specs_build_the_expected_universes() {
        let net = inverter();
        assert_eq!(universe_from_spec(&net, "stuck-nodes").unwrap().len(), 2);
        assert_eq!(
            universe_from_spec(&net, "stuck-transistors").unwrap().len(),
            4
        );
        assert_eq!(universe_from_spec(&net, "all").unwrap().len(), 6);
    }

    #[test]
    fn unknown_spec_names_the_options() {
        let net = inverter();
        let err = universe_from_spec(&net, "everything").unwrap_err();
        for spec in UNIVERSE_SPECS {
            assert!(err.contains(spec), "error should mention {spec}: {err}");
        }
    }
}
