//! The campaign-level report: the common [`RunReport`] measurements
//! wrapped with campaign metadata (backend, wall time, config echo),
//! serialisable to a stable JSON artifact with hand-rolled
//! [`to_json`](CampaignReport::to_json) /
//! [`from_json`](CampaignReport::from_json) (no external deps).

use crate::adaptive::BatchTelemetry;
use crate::json::{obj, parse, Value};
use fmossim_core::{Detection, DetectionPolicy, PatternStats, RunReport};
use fmossim_faults::FaultId;
use fmossim_netlist::Logic;
use fmossim_telemetry::{HistogramSnapshot, MetricsSnapshot};

/// Why a campaign stopped.
///
/// ```
/// use fmossim_campaign::StopReason;
///
/// assert_eq!(StopReason::default(), StopReason::Completed);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StopReason {
    /// The whole pattern sequence was simulated.
    #[default]
    Completed,
    /// The coverage target was reached and the run cut short.
    CoverageReached,
    /// The pattern limit truncated the sequence.
    PatternLimit,
    /// The campaign's cancel token was set and the backend stopped at
    /// its next work-item boundary (see
    /// [`Campaign::cancel_token`](crate::Campaign::cancel_token)).
    Cancelled,
}

impl StopReason {
    fn as_str(self) -> &'static str {
        match self {
            StopReason::Completed => "completed",
            StopReason::CoverageReached => "coverage-reached",
            StopReason::PatternLimit => "pattern-limit",
            StopReason::Cancelled => "cancelled",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "completed" => Some(StopReason::Completed),
            "coverage-reached" => Some(StopReason::CoverageReached),
            "pattern-limit" => Some(StopReason::PatternLimit),
            "cancelled" => Some(StopReason::Cancelled),
            _ => None,
        }
    }
}

/// Echo of the run-control options and detection policy a campaign ran
/// with, so an archived report is self-describing.
///
/// ```
/// use fmossim_campaign::{Campaign, StopReason};
/// use fmossim_circuits::Ram;
/// use fmossim_faults::FaultUniverse;
/// use fmossim_testgen::TestSequence;
///
/// let ram = Ram::new(4, 4);
/// let seq = TestSequence::full(&ram);
/// let report = Campaign::new(ram.network())
///     .faults(FaultUniverse::stuck_nodes(ram.network()))
///     .patterns(seq.patterns())
///     .outputs(ram.observed_outputs())
///     .pattern_limit(3)
///     .drop_detected(false)
///     .run();
/// assert_eq!(report.control.pattern_limit, Some(3));
/// assert!(!report.control.drop_detected);
/// assert_eq!(report.stop, StopReason::PatternLimit);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ControlEcho {
    /// The coverage target, if one was set.
    pub stop_at_coverage: Option<f64>,
    /// The pattern limit, if one was set.
    pub pattern_limit: Option<usize>,
    /// Whether detected faults were dropped.
    pub drop_detected: bool,
    /// Whether good-tape record/replay was requested (honoured by the
    /// parallel backend; see the `tape_*` report fields for whether a
    /// tape was actually recorded).
    pub reuse_good_tape: bool,
    /// The detection policy in force — `None` for custom
    /// [`backend_impl`](crate::Campaign::backend_impl) strategies,
    /// whose policy the campaign cannot see.
    pub policy: Option<DetectionPolicy>,
    /// Whether bit-parallel fault packing was configured — `None` for
    /// the serial baseline (no packed path) and for custom strategies.
    /// A lenient version-3 addition: absent parses as `None`.
    pub packing: Option<bool>,
    /// `Some(true)` iff static fault collapsing ran (see
    /// [`Campaign::collapse`](crate::Campaign::collapse)). A lenient
    /// version-3 addition: the key is omitted — and parses as `None` —
    /// when collapsing was off, so pre-collapse documents are
    /// byte-identical to new ones.
    pub collapse: Option<bool>,
}

/// Fault-collapsing statistics of a campaign that ran with
/// [`Campaign::collapse`](crate::Campaign::collapse) — the top-level
/// `collapse` block of the JSON artifact, present only when collapsing
/// ran.
///
/// ```
/// let s = fmossim_campaign::CollapseStats {
///     total_faults: 100,
///     simulated_faults: 80,
///     classes: 12,
/// };
/// assert!(s.simulated_faults <= s.total_faults);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CollapseStats {
    /// Faults in the parent universe (what the report's `run` block
    /// and coverage are expressed over).
    pub total_faults: usize,
    /// Class representatives actually simulated.
    pub simulated_faults: usize,
    /// Non-trivial (multi-member) equivalence classes found.
    pub classes: usize,
}

fn policy_str(p: DetectionPolicy) -> &'static str {
    match p {
        DetectionPolicy::AnyDifference => "any-difference",
        DetectionPolicy::DefiniteOnly => "definite-only",
    }
}

fn policy_parse(s: &str) -> Option<DetectionPolicy> {
    match s {
        "any-difference" => Some(DetectionPolicy::AnyDifference),
        "definite-only" => Some(DetectionPolicy::DefiniteOnly),
        _ => None,
    }
}

/// Serialises a telemetry snapshot as the report's `metrics` block.
fn metrics_to_value(m: &MetricsSnapshot) -> Value {
    let counters = Value::Obj(
        m.counters
            .iter()
            .map(|(k, &v)| (k.clone(), Value::Num(v as f64)))
            .collect(),
    );
    let gauges = Value::Obj(
        m.gauges
            .iter()
            .map(|(k, &v)| (k.clone(), Value::Num(v)))
            .collect(),
    );
    let histograms = Value::Obj(
        m.histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    obj([
                        (
                            "buckets",
                            Value::Arr(h.buckets.iter().map(|&b| Value::Num(b as f64)).collect()),
                        ),
                        ("count", Value::Num(h.count as f64)),
                        ("sum", Value::Num(h.sum as f64)),
                    ]),
                )
            })
            .collect(),
    );
    obj([
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
    ])
}

/// Parses the `metrics` block; absent/null (pre-v3 documents) is an
/// empty snapshot.
fn metrics_from_value(val: Option<&Value>) -> Result<MetricsSnapshot, String> {
    let mut snap = MetricsSnapshot::default();
    let Some(val) = val.filter(|v| !v.is_null()) else {
        return Ok(snap);
    };
    let section = |name: &str| -> Result<Vec<(&String, &Value)>, String> {
        match val.get(name) {
            None => Ok(Vec::new()),
            Some(Value::Obj(m)) => Ok(m.iter().collect()),
            Some(_) => Err(format!("bad metrics.{name}")),
        }
    };
    for (k, v) in section("counters")? {
        let n = v.as_usize().ok_or(format!("bad metrics counter `{k}`"))?;
        snap.counters.insert(k.clone(), n as u64);
    }
    for (k, v) in section("gauges")? {
        let n = v.as_f64().ok_or(format!("bad metrics gauge `{k}`"))?;
        snap.gauges.insert(k.clone(), n);
    }
    for (k, v) in section("histograms")? {
        let hcount = |name: &str| {
            v.get(name)
                .and_then(Value::as_usize)
                .map(|n| n as u64)
                .ok_or(format!("bad metrics histogram `{k}` {name}"))
        };
        let buckets = v
            .get("buckets")
            .and_then(Value::as_arr)
            .ok_or(format!("bad metrics histogram `{k}` buckets"))?
            .iter()
            .map(|b| {
                b.as_usize()
                    .map(|n| n as u64)
                    .ok_or(format!("bad metrics histogram `{k}` bucket"))
            })
            .collect::<Result<Vec<u64>, String>>()?;
        snap.histograms.insert(
            k.clone(),
            HistogramSnapshot {
                buckets,
                count: hcount("count")?,
                sum: hcount("sum")?,
            },
        );
    }
    Ok(snap)
}

/// The result of [`Campaign::run`](crate::Campaign::run): one stable
/// artifact covering every backend, so benches, the CLI, and archived
/// runs all speak the same format.
///
/// ```
/// use fmossim_campaign::{Campaign, CampaignReport};
/// use fmossim_circuits::Ram;
/// use fmossim_faults::FaultUniverse;
/// use fmossim_testgen::TestSequence;
///
/// let ram = Ram::new(4, 4);
/// let seq = TestSequence::full(&ram);
/// let report = Campaign::new(ram.network())
///     .faults(FaultUniverse::stuck_nodes(ram.network()))
///     .patterns(seq.patterns())
///     .outputs(ram.observed_outputs())
///     .run();
/// assert_eq!(report.detected(), report.detections().len());
/// assert!(report.coverage() > 0.0);
/// // The JSON artifact round-trips exactly.
/// let back = CampaignReport::from_json(&report.to_json()).unwrap();
/// assert_eq!(back, report);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CampaignReport {
    /// Strategy name ("serial", "concurrent", "parallel", or a custom
    /// backend's name).
    pub backend: String,
    /// Wall-clock seconds of the whole campaign (backend setup
    /// included).
    pub wall_seconds: f64,
    /// Patterns offered to the backend (after any pattern limit).
    pub patterns_total: usize,
    /// Why the campaign stopped.
    pub stop: StopReason,
    /// True iff the run was cut short by a cooperative cancel
    /// ([`Campaign::cancel_token`](crate::Campaign::cancel_token)); the
    /// report then covers the work done before the stop. A lenient
    /// version-3 addition: documents written before cancellation
    /// existed parse as `false`.
    pub cancelled: bool,
    /// Echo of the run-control configuration.
    pub control: ControlEcho,
    /// Resolved worker count (parallel backend only).
    pub jobs: Option<usize>,
    /// Shards in the plan (parallel backend only).
    pub shards: Option<usize>,
    /// Critical path: the longest single shard's seconds (parallel
    /// backend only).
    pub max_shard_seconds: Option<f64>,
    /// Good-circuit-only reference seconds (serial backend only).
    pub good_seconds: Option<f64>,
    /// The paper's serial-time estimate (serial backend only).
    pub serial_estimate_seconds: Option<f64>,
    /// Seconds of the one-time good-tape record pass (parallel backend
    /// when a tape was recorded and replayed).
    pub tape_record_seconds: Option<f64>,
    /// Good-machine vicinities on the tape — the per-shard solver work
    /// replay skipped (parallel backend when a tape was used; for the
    /// adaptive backend, summed over its per-batch tapes).
    pub tape_groups: Option<usize>,
    /// Per-batch telemetry of an adaptive run (shard counts, rebalance
    /// deltas, imbalance ratios, tape stats); empty for every other
    /// backend and for documents written before the adaptive backend
    /// existed.
    pub batches: Vec<BatchTelemetry>,
    /// Fault-collapsing statistics, present iff the campaign ran with
    /// [`Campaign::collapse`](crate::Campaign::collapse). The JSON key
    /// is omitted entirely when `None` (a lenient version-3 addition),
    /// so reports of uncollapsed runs are byte-identical to
    /// pre-collapse documents.
    pub collapse: Option<CollapseStats>,
    /// Snapshot of the campaign's telemetry registry at the end of the
    /// run — every `switch.*` / `core.*` / `par.*` / `campaign.*`
    /// metric recorded under
    /// [`Campaign::with_telemetry`](crate::Campaign::with_telemetry).
    /// Empty when no registry was attached (the default) and for
    /// documents written before schema version 3.
    pub metrics: MetricsSnapshot,
    /// The measurements, in the common per-pattern report format.
    pub run: RunReport,
}

impl CampaignReport {
    /// Number of faults detected.
    #[must_use]
    pub fn detected(&self) -> usize {
        self.run.detected()
    }

    /// Fault coverage in `[0, 1]`.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        self.run.coverage()
    }

    /// All detections, canonically ordered by `(pattern, phase,
    /// fault)`.
    #[must_use]
    pub fn detections(&self) -> &[Detection] {
        &self.run.detections
    }

    /// The schema version [`CampaignReport::to_json`] writes.
    ///
    /// Version 3 adds the `metrics` block (the telemetry snapshot) and
    /// — as a later lenient addition within the same version — the
    /// `cancelled` flag (absent parses as `false`).
    /// Version 2 locked the adaptive generation's keys — `batches`
    /// telemetry and the `tape_*` fields are part of the schema, not
    /// lenient extensions. [`CampaignReport::from_json`] still accepts
    /// version-1 and version-2 documents (where the newer keys may be
    /// absent). The golden fixtures under `tests/fixtures/` pin the
    /// byte-exact format per backend.
    pub const JSON_VERSION: usize = 3;

    /// Serialises to the stable JSON artifact format (compact, one
    /// line, deterministic key order).
    ///
    /// ```
    /// # use fmossim_campaign::{Campaign, CampaignReport};
    /// # use fmossim_circuits::Ram;
    /// # use fmossim_faults::FaultUniverse;
    /// # use fmossim_testgen::TestSequence;
    /// # let ram = Ram::new(4, 4);
    /// # let seq = TestSequence::full(&ram);
    /// # let report = Campaign::new(ram.network())
    /// #     .faults(FaultUniverse::stuck_nodes(ram.network()))
    /// #     .patterns(seq.patterns())
    /// #     .outputs(ram.observed_outputs())
    /// #     .pattern_limit(2)
    /// #     .run();
    /// let text = report.to_json();
    /// assert!(text.starts_with("{\"backend\":"));
    /// assert!(text.contains("\"format\":\"fmossim-campaign-report\""));
    /// ```
    #[must_use]
    pub fn to_json(&self) -> String {
        let opt_num = |v: Option<f64>| v.map_or(Value::Null, Value::Num);
        let opt_count = |v: Option<usize>| v.map_or(Value::Null, |n| Value::Num(n as f64));
        let detections: Vec<Value> = self
            .run
            .detections
            .iter()
            .map(|d| {
                obj([
                    ("fault", Value::Num(f64::from(d.fault.0))),
                    ("pattern", Value::Num(d.pattern as f64)),
                    ("phase", Value::Num(d.phase as f64)),
                    ("good", Value::Str(d.good.to_string())),
                    ("faulty", Value::Str(d.faulty.to_string())),
                ])
            })
            .collect();
        let patterns: Vec<Value> = self
            .run
            .patterns
            .iter()
            .map(|p| {
                obj([
                    ("seconds", Value::Num(p.seconds)),
                    ("detected", Value::Num(p.detected as f64)),
                    ("live_before", Value::Num(p.live_before as f64)),
                    ("good_groups", Value::Num(p.good_groups as f64)),
                    ("faulty_groups", Value::Num(p.faulty_groups as f64)),
                    ("circuit_settles", Value::Num(p.circuit_settles as f64)),
                    ("damped", Value::Bool(p.damped)),
                ])
            })
            .collect();
        // The `collapse` keys (control echo and the top-level stats
        // block) are omitted entirely — not serialised as null — when
        // collapsing was off, so reports of uncollapsed runs are
        // byte-identical to pre-collapse documents and the golden
        // fixtures stay frozen.
        let mut control_pairs = vec![
            ("stop_at_coverage", opt_num(self.control.stop_at_coverage)),
            ("pattern_limit", opt_count(self.control.pattern_limit)),
            ("drop_detected", Value::Bool(self.control.drop_detected)),
            ("reuse_good_tape", Value::Bool(self.control.reuse_good_tape)),
            (
                "policy",
                self.control
                    .policy
                    .map_or(Value::Null, |p| Value::Str(policy_str(p).into())),
            ),
            (
                "packing",
                self.control.packing.map_or(Value::Null, Value::Bool),
            ),
        ];
        if let Some(c) = self.control.collapse {
            control_pairs.push(("collapse", Value::Bool(c)));
        }
        let mut pairs = vec![
            ("format", Value::Str("fmossim-campaign-report".into())),
            ("version", Value::Num(Self::JSON_VERSION as f64)),
            ("backend", Value::Str(self.backend.clone())),
            ("wall_seconds", Value::Num(self.wall_seconds)),
            ("patterns_total", Value::Num(self.patterns_total as f64)),
            ("stop", Value::Str(self.stop.as_str().into())),
            ("cancelled", Value::Bool(self.cancelled)),
            ("control", obj(control_pairs)),
            ("jobs", opt_count(self.jobs)),
            ("shards", opt_count(self.shards)),
            ("max_shard_seconds", opt_num(self.max_shard_seconds)),
            ("good_seconds", opt_num(self.good_seconds)),
            (
                "serial_estimate_seconds",
                opt_num(self.serial_estimate_seconds),
            ),
            ("tape_record_seconds", opt_num(self.tape_record_seconds)),
            ("tape_groups", opt_count(self.tape_groups)),
            (
                "batches",
                Value::Arr(
                    self.batches
                        .iter()
                        .map(|b| {
                            obj([
                                ("first_pattern", Value::Num(b.first_pattern as f64)),
                                ("patterns", Value::Num(b.patterns as f64)),
                                ("live_before", Value::Num(b.live_before as f64)),
                                ("detected", Value::Num(b.detected as f64)),
                                ("workers", Value::Num(b.workers as f64)),
                                ("shards", Value::Num(b.shards as f64)),
                                ("moved_faults", Value::Num(b.moved_faults as f64)),
                                ("max_shard_seconds", Value::Num(b.max_shard_seconds)),
                                ("mean_shard_seconds", Value::Num(b.mean_shard_seconds)),
                                ("imbalance", Value::Num(b.imbalance)),
                                ("tape_record_seconds", Value::Num(b.tape_record_seconds)),
                                ("tape_groups", Value::Num(b.tape_groups as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("metrics", metrics_to_value(&self.metrics)),
            (
                "run",
                obj([
                    ("num_faults", Value::Num(self.run.num_faults as f64)),
                    ("total_seconds", Value::Num(self.run.total_seconds)),
                    ("detections", Value::Arr(detections)),
                    ("patterns", Value::Arr(patterns)),
                ]),
            ),
        ];
        if let Some(c) = &self.collapse {
            pairs.push((
                "collapse",
                obj([
                    ("total_faults", Value::Num(c.total_faults as f64)),
                    ("simulated_faults", Value::Num(c.simulated_faults as f64)),
                    ("classes", Value::Num(c.classes as f64)),
                ]),
            ));
        }
        obj(pairs).to_string()
    }

    /// Parses a report back from its JSON artifact.
    ///
    /// ```
    /// use fmossim_campaign::CampaignReport;
    ///
    /// assert!(CampaignReport::from_json("{}").is_err(), "foreign document");
    /// assert!(CampaignReport::from_json("not json").is_err());
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(text: &str) -> Result<CampaignReport, String> {
        let v = parse(text)?;
        if v.get("format").and_then(Value::as_str) != Some("fmossim-campaign-report") {
            return Err("not a fmossim-campaign-report document".into());
        }
        // Older documents parse leniently: version 1 may lack the
        // tape/batches keys, versions 1–2 lack the `metrics` block
        // version 3 added.
        match v.get("version").and_then(Value::as_usize) {
            Some(1..=3) => {}
            Some(other) => return Err(format!("unsupported report version {other}")),
            None => return Err("missing report version".into()),
        }
        let field = |name: &str| v.get(name).ok_or(format!("missing field `{name}`"));
        let num = |name: &str| {
            field(name)?
                .as_f64()
                .ok_or(format!("field `{name}` is not a number"))
        };
        let count = |name: &str| {
            field(name)?
                .as_usize()
                .ok_or(format!("field `{name}` is not a count"))
        };
        let opt_num = |name: &str| -> Result<Option<f64>, String> {
            let val = field(name)?;
            if val.is_null() {
                Ok(None)
            } else {
                Ok(Some(
                    val.as_f64()
                        .ok_or(format!("field `{name}` is not a number"))?,
                ))
            }
        };
        let opt_count = |name: &str| -> Result<Option<usize>, String> {
            let val = field(name)?;
            if val.is_null() {
                Ok(None)
            } else {
                Ok(Some(
                    val.as_usize()
                        .ok_or(format!("field `{name}` is not a count"))?,
                ))
            }
        };

        let control = field("control")?;
        let control = ControlEcho {
            stop_at_coverage: match control.get("stop_at_coverage") {
                None | Some(Value::Null) => None,
                Some(val) => Some(val.as_f64().ok_or("bad stop_at_coverage")?),
            },
            pattern_limit: match control.get("pattern_limit") {
                None | Some(Value::Null) => None,
                Some(val) => Some(val.as_usize().ok_or("bad pattern_limit")?),
            },
            drop_detected: control
                .get("drop_detected")
                .and_then(Value::as_bool)
                .ok_or("bad drop_detected")?,
            // Absent in pre-tape version-1 documents: default to the
            // knob's default rather than rejecting the archive.
            reuse_good_tape: match control.get("reuse_good_tape") {
                None | Some(Value::Null) => true,
                Some(val) => val.as_bool().ok_or("bad reuse_good_tape")?,
            },
            policy: match control.get("policy") {
                None | Some(Value::Null) => None,
                Some(val) => Some(val.as_str().and_then(policy_parse).ok_or("bad policy")?),
            },
            // Absent in pre-packing version-3 documents: a lenient
            // addition, like the metrics block.
            packing: match control.get("packing") {
                None | Some(Value::Null) => None,
                Some(val) => Some(val.as_bool().ok_or("bad packing")?),
            },
            // Absent in pre-collapse documents and whenever collapsing
            // was off (omitted, never null).
            collapse: match control.get("collapse") {
                None | Some(Value::Null) => None,
                Some(val) => Some(val.as_bool().ok_or("bad control collapse")?),
            },
        };

        let run_v = field("run")?;
        let run_count = |name: &str| {
            run_v
                .get(name)
                .and_then(Value::as_usize)
                .ok_or(format!("bad run.{name}"))
        };
        let logic = |val: Option<&Value>, name: &str| {
            val.and_then(Value::as_str)
                .and_then(|s| s.chars().next())
                .and_then(Logic::from_char)
                .ok_or(format!("bad detection {name}"))
        };
        let mut detections = Vec::new();
        for d in run_v
            .get("detections")
            .and_then(Value::as_arr)
            .ok_or("bad run.detections")?
        {
            detections.push(Detection {
                fault: FaultId(
                    u32::try_from(
                        d.get("fault")
                            .and_then(Value::as_usize)
                            .ok_or("bad fault")?,
                    )
                    .map_err(|_| "fault id out of range")?,
                ),
                pattern: d
                    .get("pattern")
                    .and_then(Value::as_usize)
                    .ok_or("bad pattern")?,
                phase: d
                    .get("phase")
                    .and_then(Value::as_usize)
                    .ok_or("bad phase")?,
                good: logic(d.get("good"), "good")?,
                faulty: logic(d.get("faulty"), "faulty")?,
            });
        }
        let mut patterns = Vec::new();
        for p in run_v
            .get("patterns")
            .and_then(Value::as_arr)
            .ok_or("bad run.patterns")?
        {
            let pcount = |name: &str| {
                p.get(name)
                    .and_then(Value::as_usize)
                    .ok_or(format!("bad pattern stat {name}"))
            };
            patterns.push(PatternStats {
                seconds: p
                    .get("seconds")
                    .and_then(Value::as_f64)
                    .ok_or("bad pattern seconds")?,
                detected: pcount("detected")?,
                live_before: pcount("live_before")?,
                good_groups: pcount("good_groups")?,
                faulty_groups: pcount("faulty_groups")?,
                circuit_settles: pcount("circuit_settles")?,
                damped: p
                    .get("damped")
                    .and_then(Value::as_bool)
                    .ok_or("bad pattern damped")?,
            });
        }
        let run = RunReport {
            patterns,
            detections,
            num_faults: run_count("num_faults")?,
            total_seconds: run_v
                .get("total_seconds")
                .and_then(Value::as_f64)
                .ok_or("bad run.total_seconds")?,
        };

        Ok(CampaignReport {
            backend: field("backend")?.as_str().ok_or("bad backend")?.to_string(),
            wall_seconds: num("wall_seconds")?,
            patterns_total: count("patterns_total")?,
            stop: field("stop")?
                .as_str()
                .and_then(StopReason::parse)
                .ok_or("bad stop reason")?,
            // A lenient version-3 addition: absent in documents written
            // before cooperative cancellation existed.
            cancelled: match v.get("cancelled") {
                None | Some(Value::Null) => false,
                Some(val) => val.as_bool().ok_or("bad cancelled")?,
            },
            control,
            jobs: opt_count("jobs")?,
            shards: opt_count("shards")?,
            max_shard_seconds: opt_num("max_shard_seconds")?,
            good_seconds: opt_num("good_seconds")?,
            serial_estimate_seconds: opt_num("serial_estimate_seconds")?,
            // Tape fields are lenient: absent in pre-tape version-1
            // documents.
            tape_record_seconds: match v.get("tape_record_seconds") {
                None | Some(Value::Null) => None,
                Some(val) => Some(val.as_f64().ok_or("bad tape_record_seconds")?),
            },
            tape_groups: match v.get("tape_groups") {
                None | Some(Value::Null) => None,
                Some(val) => Some(val.as_usize().ok_or("bad tape_groups")?),
            },
            // Absent in version-1 documents written before the
            // adaptive backend: default to "no batch telemetry".
            batches: match v.get("batches") {
                None | Some(Value::Null) => Vec::new(),
                Some(val) => {
                    let mut batches = Vec::new();
                    for b in val.as_arr().ok_or("bad batches")? {
                        let bcount = |name: &str| {
                            b.get(name)
                                .and_then(Value::as_usize)
                                .ok_or(format!("bad batch {name}"))
                        };
                        let bnum = |name: &str| {
                            b.get(name)
                                .and_then(Value::as_f64)
                                .ok_or(format!("bad batch {name}"))
                        };
                        batches.push(BatchTelemetry {
                            first_pattern: bcount("first_pattern")?,
                            patterns: bcount("patterns")?,
                            live_before: bcount("live_before")?,
                            detected: bcount("detected")?,
                            workers: bcount("workers")?,
                            shards: bcount("shards")?,
                            moved_faults: bcount("moved_faults")?,
                            max_shard_seconds: bnum("max_shard_seconds")?,
                            mean_shard_seconds: bnum("mean_shard_seconds")?,
                            imbalance: bnum("imbalance")?,
                            tape_record_seconds: bnum("tape_record_seconds")?,
                            tape_groups: bcount("tape_groups")?,
                        });
                    }
                    batches
                }
            },
            // Absent in pre-collapse documents and in every
            // uncollapsed run (the key is omitted, never null).
            collapse: match v.get("collapse") {
                None | Some(Value::Null) => None,
                Some(val) => {
                    let ccount = |name: &str| {
                        val.get(name)
                            .and_then(Value::as_usize)
                            .ok_or(format!("bad collapse {name}"))
                    };
                    Some(CollapseStats {
                        total_faults: ccount("total_faults")?,
                        simulated_faults: ccount("simulated_faults")?,
                        classes: ccount("classes")?,
                    })
                }
            },
            // Absent in pre-telemetry version-1/2 documents: default
            // to an empty snapshot.
            metrics: metrics_from_value(v.get("metrics"))?,
            run,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> CampaignReport {
        CampaignReport {
            backend: "parallel".into(),
            wall_seconds: 1.25,
            patterns_total: 3,
            stop: StopReason::CoverageReached,
            cancelled: false,
            control: ControlEcho {
                stop_at_coverage: Some(0.9),
                pattern_limit: None,
                drop_detected: true,
                reuse_good_tape: true,
                policy: Some(DetectionPolicy::AnyDifference),
                packing: Some(false),
                collapse: None,
            },
            collapse: None,
            jobs: Some(4),
            shards: Some(8),
            max_shard_seconds: Some(0.5),
            good_seconds: None,
            serial_estimate_seconds: None,
            tape_record_seconds: Some(0.0625),
            tape_groups: Some(40),
            batches: vec![BatchTelemetry {
                first_pattern: 0,
                patterns: 2,
                live_before: 10,
                detected: 2,
                workers: 4,
                shards: 8,
                moved_faults: 3,
                max_shard_seconds: 0.5,
                mean_shard_seconds: 0.25,
                imbalance: 2.0,
                tape_record_seconds: 0.0625,
                tape_groups: 40,
            }],
            metrics: {
                let mut m = MetricsSnapshot::default();
                m.counters.insert("core.detections".into(), 2);
                m.gauges.insert("par.shard.seconds".into(), 0.375);
                m.histograms.insert(
                    "switch.solve_group.size".into(),
                    HistogramSnapshot {
                        buckets: vec![1, 2],
                        count: 3,
                        sum: 9,
                    },
                );
                m
            },
            run: RunReport {
                patterns: vec![
                    PatternStats {
                        seconds: 0.25,
                        detected: 2,
                        live_before: 10,
                        good_groups: 7,
                        faulty_groups: 21,
                        circuit_settles: 5,
                        damped: false,
                    },
                    PatternStats {
                        seconds: 0.125,
                        detected: 0,
                        live_before: 8,
                        good_groups: 7,
                        faulty_groups: 3,
                        circuit_settles: 1,
                        damped: true,
                    },
                ],
                detections: vec![
                    Detection {
                        fault: FaultId(3),
                        pattern: 0,
                        phase: 5,
                        good: Logic::H,
                        faulty: Logic::L,
                    },
                    Detection {
                        fault: FaultId(7),
                        pattern: 0,
                        phase: 5,
                        good: Logic::L,
                        faulty: Logic::X,
                    },
                ],
                num_faults: 10,
                total_seconds: 0.375,
            },
        }
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let report = sample_report();
        let text = report.to_json();
        let back = CampaignReport::from_json(&text).expect("parses");
        assert_eq!(report, back);
        // Serialisation is deterministic.
        assert_eq!(text, back.to_json());
    }

    #[test]
    fn convenience_accessors() {
        let report = sample_report();
        assert_eq!(report.detected(), 2);
        assert!((report.coverage() - 0.2).abs() < 1e-12);
        assert_eq!(report.detections()[1].fault, FaultId(7));
        assert!(report.detections()[1].is_potential());
    }

    /// Version-1 documents written before the tape subsystem carry no
    /// tape keys; parsing must default them instead of rejecting the
    /// archive.
    #[test]
    fn parses_pre_tape_documents() {
        // Pre-tape documents predate batch telemetry too; an empty
        // `batches` also keeps the textual surgery below from touching
        // the per-batch tape keys.
        let mut report = sample_report();
        report.batches.clear();
        report.metrics = MetricsSnapshot::default();
        let text = report
            .to_json()
            .replace("\"version\":3", "\"version\":1")
            .replace(",\"reuse_good_tape\":true", "")
            .replace(",\"tape_record_seconds\":0.0625", "")
            .replace(",\"tape_groups\":40", "");
        let back = CampaignReport::from_json(&text).expect("lenient parse");
        assert!(back.control.reuse_good_tape, "defaults to the knob default");
        assert_eq!(back.tape_record_seconds, None);
        assert_eq!(back.tape_groups, None);
    }

    /// Version-1 documents written before the adaptive backend carry
    /// no `batches` key; parsing must default to empty telemetry.
    #[test]
    fn parses_pre_adaptive_documents() {
        let mut report = sample_report();
        report.batches.clear();
        let text = report
            .to_json()
            .replace("\"version\":3", "\"version\":1")
            .replace(",\"batches\":[]", "");
        assert!(!text.contains("batches"), "key really removed: {text}");
        let back = CampaignReport::from_json(&text).expect("lenient parse");
        assert!(back.batches.is_empty());
    }

    /// Documents written before cooperative cancellation carry no
    /// `cancelled` key; parsing must default it to `false`, and the
    /// "cancelled" stop reason must round-trip.
    #[test]
    fn parses_pre_cancellation_documents() {
        let text = sample_report()
            .to_json()
            .replace(",\"cancelled\":false", "");
        assert!(!text.contains("cancelled"), "key really removed: {text}");
        let back = CampaignReport::from_json(&text).expect("lenient parse");
        assert!(!back.cancelled);

        let mut report = sample_report();
        report.cancelled = true;
        report.stop = StopReason::Cancelled;
        let back = CampaignReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(back, report);
    }

    /// Documents written before the bit-parallel packing knob carry no
    /// `packing` key; parsing must default it to `None`, and explicit
    /// values must round-trip.
    #[test]
    fn parses_pre_packing_documents() {
        let text = sample_report().to_json().replace(",\"packing\":false", "");
        assert!(!text.contains("packing"), "key really removed: {text}");
        let back = CampaignReport::from_json(&text).expect("lenient parse");
        assert_eq!(back.control.packing, None);

        let mut report = sample_report();
        report.control.packing = Some(true);
        let back = CampaignReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(back, report);
    }

    /// Pre-collapse documents carry no `collapse` keys at all — and
    /// neither do uncollapsed runs, whose artifacts must stay
    /// byte-identical to pre-collapse ones. Explicit values must
    /// round-trip.
    #[test]
    fn parses_pre_collapse_documents() {
        // Omission, not null: an uncollapsed report simply has no
        // `collapse` key anywhere.
        let text = sample_report().to_json();
        assert!(!text.contains("collapse"), "keys really absent: {text}");
        let back = CampaignReport::from_json(&text).expect("parses");
        assert_eq!(back.control.collapse, None);
        assert_eq!(back.collapse, None);

        let mut report = sample_report();
        report.control.collapse = Some(true);
        report.collapse = Some(CollapseStats {
            total_faults: 10,
            simulated_faults: 7,
            classes: 2,
        });
        let text = report.to_json();
        assert!(text.contains("\"collapse\":true"), "echo written: {text}");
        assert!(
            text.contains("\"simulated_faults\":7"),
            "stats written: {text}"
        );
        let back = CampaignReport::from_json(&text).expect("parses");
        assert_eq!(back, report);
    }

    /// Version-2 documents written before the telemetry layer carry no
    /// `metrics` block; parsing must default to an empty snapshot.
    #[test]
    fn parses_pre_telemetry_documents() {
        let report = sample_report();
        let v3 = report.to_json();
        let metrics_block = format!(",\"metrics\":{}", metrics_to_value(&report.metrics));
        let text = v3
            .replace("\"version\":3", "\"version\":2")
            .replace(&metrics_block, "");
        assert!(!text.contains("metrics"), "key really removed: {text}");
        let back = CampaignReport::from_json(&text).expect("lenient parse");
        assert_eq!(back.metrics, MetricsSnapshot::default());
    }

    #[test]
    fn rejects_foreign_documents() {
        assert!(CampaignReport::from_json("{}").is_err());
        assert!(CampaignReport::from_json("[1,2]").is_err());
        assert!(CampaignReport::from_json("not json").is_err());
        // An emptied backend name is still a well-formed document...
        let mangled = sample_report().to_json().replace("parallel", "");
        assert!(CampaignReport::from_json(&mangled).is_ok());
        // ...but a missing required field must fail,
        let missing = sample_report()
            .to_json()
            .replace("\"wall_seconds\"", "\"renamed\"");
        assert!(CampaignReport::from_json(&missing).is_err());
        // ...as must an unknown format version.
        let future = sample_report()
            .to_json()
            .replace("\"version\":3", "\"version\":4");
        assert!(CampaignReport::from_json(&future).is_err());
    }
}
