//! Property tests: random networks survive a format round-trip, and the
//! strength lattice behaves like a bounded total order.

use fmossim_netlist::{
    parse_netlist, write_netlist, Drive, Logic, Network, NodeClass, Size, Strength, TransistorType,
};
use proptest::prelude::*;

/// Strategy for a random valid network with `1..=max_nodes` nodes and
/// `0..=max_t` transistors among them.
fn arb_network(max_nodes: usize, max_t: usize) -> impl Strategy<Value = Network> {
    let node = (any::<bool>(), 0u8..3, 1u8..=7).prop_map(|(is_input, val, size)| {
        if is_input {
            NodeClass::Input(match val {
                0 => Logic::L,
                1 => Logic::H,
                _ => Logic::X,
            })
        } else {
            NodeClass::Storage(Size::new(size).expect("size in range"))
        }
    });
    (
        prop::collection::vec(node, 1..=max_nodes),
        prop::collection::vec(
            (0u8..3, 1u8..=7, any::<u16>(), any::<u16>(), any::<u16>()),
            0..=max_t,
        ),
    )
        .prop_map(|(classes, trans)| {
            let mut net = Network::new();
            let n = classes.len();
            for (i, class) in classes.into_iter().enumerate() {
                net.try_add_node(format!("N{i}"), class).expect("unique");
            }
            let ids: Vec<_> = net.node_ids().collect();
            for (ty, g, a, b, c) in trans {
                let ttype = match ty {
                    0 => TransistorType::N,
                    1 => TransistorType::P,
                    _ => TransistorType::D,
                };
                let strength = Drive::new(g).expect("drive in range");
                let gate = ids[a as usize % n];
                let source = ids[b as usize % n];
                let drain = ids[c as usize % n];
                net.add_transistor(ttype, strength, gate, source, drain);
            }
            net
        })
}

proptest! {
    #[test]
    fn format_roundtrip(net in arb_network(20, 40)) {
        let text = write_netlist(&net);
        let back = parse_netlist(&text).expect("canonical output parses");
        prop_assert_eq!(net.num_nodes(), back.num_nodes());
        prop_assert_eq!(net.num_transistors(), back.num_transistors());
        for id in net.node_ids() {
            prop_assert_eq!(net.node(id), back.node(id));
        }
        for id in net.transistor_ids() {
            prop_assert_eq!(net.transistor(id), back.transistor(id));
        }
    }

    #[test]
    fn strength_through_is_monotone_and_capped(
        s1 in 1u8..=7, s2 in 1u8..=7, d in 1u8..=7
    ) {
        let a = Strength::from_size(Size::new(s1).unwrap());
        let b = Strength::from_drive(Drive::new(s2).unwrap());
        let dr = Drive::new(d).unwrap();
        // Monotone: x <= y implies x.through(d) <= y.through(d).
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(lo.through(dr) <= hi.through(dr));
        // Capped: never exceeds the drive strength.
        prop_assert!(a.through(dr) <= Strength::from_drive(dr));
        prop_assert!(Strength::INPUT.through(dr) == Strength::from_drive(dr));
    }

    #[test]
    fn conduction_total_on_logic(ty in 0u8..3, g in 0u8..3) {
        let ttype = [TransistorType::N, TransistorType::P, TransistorType::D][ty as usize];
        let gate = Logic::ALL[g as usize];
        // Function is total and d-type always conducts.
        let c = ttype.conduction(gate);
        if ttype == TransistorType::D {
            prop_assert!(c.is_closed());
        }
        let _ = c.may_conduct();
    }
}
