//! Summary statistics of a network, as reported in the paper's
//! evaluation section ("RAM64 contains 378 transistors and 229 nodes").

use crate::{Network, TransistorType};
use std::fmt;

/// Aggregate counts describing a [`Network`].
///
/// Produced by [`NetworkStats::of`]; printed by the benchmark harness to
/// compare against the circuit sizes quoted in the paper.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Total node count (inputs + storage).
    pub nodes: usize,
    /// Number of input nodes.
    pub inputs: usize,
    /// Number of storage nodes.
    pub storage: usize,
    /// Total transistor count.
    pub transistors: usize,
    /// n-type transistor count.
    pub n_type: usize,
    /// p-type transistor count.
    pub p_type: usize,
    /// d-type (depletion) transistor count.
    pub d_type: usize,
    /// Maximum channel degree over all nodes (how "bus-like" the
    /// worst node is; bit lines dominate here).
    pub max_channel_degree: usize,
    /// Maximum fan-out (gates driven) over all nodes.
    pub max_gate_fanout: usize,
}

impl NetworkStats {
    /// Computes statistics for `net`.
    #[must_use]
    pub fn of(net: &Network) -> Self {
        let mut s = NetworkStats {
            nodes: net.num_nodes(),
            transistors: net.num_transistors(),
            ..NetworkStats::default()
        };
        for (_, node) in net.nodes() {
            if node.is_input() {
                s.inputs += 1;
            } else {
                s.storage += 1;
            }
        }
        for (_, t) in net.transistors() {
            match t.ttype {
                TransistorType::N => s.n_type += 1,
                TransistorType::P => s.p_type += 1,
                TransistorType::D => s.d_type += 1,
            }
        }
        for id in net.node_ids() {
            s.max_channel_degree = s.max_channel_degree.max(net.channel_transistors(id).len());
            s.max_gate_fanout = s.max_gate_fanout.max(net.gated_transistors(id).len());
        }
        s
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} transistors ({}n/{}p/{}d), {} nodes ({} inputs, {} storage), \
             max channel degree {}, max fan-out {}",
            self.transistors,
            self.n_type,
            self.p_type,
            self.d_type,
            self.nodes,
            self.inputs,
            self.storage,
            self.max_channel_degree,
            self.max_gate_fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Drive, Logic, Size};

    #[test]
    fn counts_inverter() {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::X);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::D, Drive::D1, out, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
        let s = NetworkStats::of(&net);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.inputs, 3);
        assert_eq!(s.storage, 1);
        assert_eq!(s.transistors, 2);
        assert_eq!(s.n_type, 1);
        assert_eq!(s.d_type, 1);
        assert_eq!(s.p_type, 0);
        assert_eq!(s.max_channel_degree, 2); // OUT touches both
        assert_eq!(s.max_gate_fanout, 1);
        let text = s.to_string();
        assert!(text.contains("2 transistors"));
        assert!(text.contains("4 nodes"));
    }

    #[test]
    fn empty_network() {
        let s = NetworkStats::of(&Network::new());
        assert_eq!(s, NetworkStats::default());
    }
}
