//! A plain-text netlist format (`.snl`, "switch-level netlist").
//!
//! The format is line oriented; `;` starts a comment. Three statement
//! kinds exist:
//!
//! ```text
//! input <name> [0|1|X]          ; input node, optional default (X)
//! node  <name> [size <k>]      ; storage node, optional size (1)
//! n|p|d <gate> <src> <drn> [strength <g>]   ; transistor (default γ2)
//! ```
//!
//! Node names may be any whitespace-free token not starting with `;`.
//! Transistor statements may reference nodes declared on any line
//! (forward references are *not* allowed — declaration order is also
//! simulation id order, which keeps dumps reproducible).
//!
//! # Example
//!
//! ```
//! use fmossim_netlist::{parse_netlist, write_netlist};
//! let src = "\
//! ; nMOS inverter
//! input Vdd 1
//! input Gnd 0
//! input A
//! node OUT
//! d OUT Vdd OUT strength 1
//! n A OUT Gnd
//! ";
//! let net = parse_netlist(src)?;
//! assert_eq!(net.num_transistors(), 2);
//! let round = write_netlist(&net);
//! assert_eq!(parse_netlist(&round)?.num_nodes(), net.num_nodes());
//! # Ok::<(), fmossim_netlist::NetlistError>(())
//! ```

use crate::{Drive, Logic, NetlistError, Network, NodeClass, Size, TransistorType};
use std::fmt::Write as _;

/// Parses the text netlist format into a [`Network`].
///
/// # Errors
///
/// Returns a [`NetlistError`] with a 1-based line number on syntax
/// errors, duplicate node names, or references to undeclared nodes.
pub fn parse_netlist(text: &str) -> Result<Network, NetlistError> {
    let mut net = Network::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let body = raw.split(';').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut tok = body.split_whitespace();
        let head = tok.next().expect("non-empty line has a first token");
        match head {
            "input" => {
                let name = tok.next().ok_or_else(|| NetlistError::Syntax {
                    line,
                    message: "input statement needs a node name".into(),
                })?;
                let default = match tok.next() {
                    None => Logic::X,
                    Some(v) => single_char_logic(v, line)?,
                };
                check_end(&mut tok, line)?;
                net.try_add_node(name.to_string(), NodeClass::Input(default))
                    .map_err(|e| at_line(e, line))?;
            }
            "node" => {
                let name = tok.next().ok_or_else(|| NetlistError::Syntax {
                    line,
                    message: "node statement needs a node name".into(),
                })?;
                let size = match tok.next() {
                    None => Size::S1,
                    Some("size") => {
                        let k = parse_u8(tok.next(), "size", line)?;
                        Size::new(k).ok_or_else(|| NetlistError::Syntax {
                            line,
                            message: format!("size {k} out of range 1..=7"),
                        })?
                    }
                    Some(other) => {
                        return Err(NetlistError::Syntax {
                            line,
                            message: format!("expected `size`, found `{other}`"),
                        })
                    }
                };
                check_end(&mut tok, line)?;
                net.try_add_node(name.to_string(), NodeClass::Storage(size))
                    .map_err(|e| at_line(e, line))?;
            }
            "n" | "p" | "d" => {
                let ttype =
                    TransistorType::from_char(head.chars().next().expect("head is one char"))
                        .expect("head is n/p/d");
                let gate = node_ref(&net, tok.next(), line)?;
                let source = node_ref(&net, tok.next(), line)?;
                let drain = node_ref(&net, tok.next(), line)?;
                let strength = match tok.next() {
                    None => Drive::default(),
                    Some("strength") => {
                        let g = parse_u8(tok.next(), "strength", line)?;
                        Drive::new(g).ok_or_else(|| NetlistError::Syntax {
                            line,
                            message: format!("strength {g} out of range 1..=7"),
                        })?
                    }
                    Some(other) => {
                        return Err(NetlistError::Syntax {
                            line,
                            message: format!("expected `strength`, found `{other}`"),
                        })
                    }
                };
                check_end(&mut tok, line)?;
                net.add_transistor(ttype, strength, gate, source, drain);
            }
            other => {
                return Err(NetlistError::Syntax {
                    line,
                    message: format!("unknown statement `{other}`"),
                })
            }
        }
    }
    Ok(net)
}

/// Serialises a [`Network`] to the text netlist format.
///
/// The output is canonical: parsing it back yields a network with
/// identical nodes (same order, names, classes) and transistors.
#[must_use]
pub fn write_netlist(net: &Network) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; switch-level netlist: {} nodes, {} transistors",
        net.num_nodes(),
        net.num_transistors()
    );
    for (_, node) in net.nodes() {
        match node.class {
            NodeClass::Input(d) => {
                let _ = writeln!(out, "input {} {}", node.name, d);
            }
            NodeClass::Storage(s) => {
                if s == Size::S1 {
                    let _ = writeln!(out, "node {}", node.name);
                } else {
                    let _ = writeln!(out, "node {} size {}", node.name, s.level());
                }
            }
        }
    }
    for (_, t) in net.transistors() {
        let g = &net.node(t.gate).name;
        let s = &net.node(t.source).name;
        let d = &net.node(t.drain).name;
        if t.strength == Drive::default() {
            let _ = writeln!(out, "{} {} {} {}", t.ttype, g, s, d);
        } else {
            let _ = writeln!(
                out,
                "{} {} {} {} strength {}",
                t.ttype,
                g,
                s,
                d,
                t.strength.level()
            );
        }
    }
    out
}

fn at_line(e: NetlistError, line: usize) -> NetlistError {
    match e {
        NetlistError::DuplicateNode(n) => NetlistError::Syntax {
            line,
            message: format!("duplicate node name `{n}`"),
        },
        other => other,
    }
}

fn single_char_logic(tok: &str, line: usize) -> Result<Logic, NetlistError> {
    let mut chars = tok.chars();
    match (chars.next(), chars.next()) {
        (Some(c), None) => Logic::from_char(c).ok_or_else(|| NetlistError::Syntax {
            line,
            message: format!("expected 0, 1 or X, found `{tok}`"),
        }),
        _ => Err(NetlistError::Syntax {
            line,
            message: format!("expected 0, 1 or X, found `{tok}`"),
        }),
    }
}

fn parse_u8(tok: Option<&str>, what: &str, line: usize) -> Result<u8, NetlistError> {
    let tok = tok.ok_or_else(|| NetlistError::Syntax {
        line,
        message: format!("`{what}` needs a number"),
    })?;
    tok.parse().map_err(|_| NetlistError::Syntax {
        line,
        message: format!("`{what}` needs a number, found `{tok}`"),
    })
}

fn node_ref(net: &Network, tok: Option<&str>, line: usize) -> Result<crate::NodeId, NetlistError> {
    let name = tok.ok_or_else(|| NetlistError::Syntax {
        line,
        message: "transistor statement needs gate, source, drain".into(),
    })?;
    net.find_node(name)
        .ok_or_else(|| NetlistError::UnknownNode {
            name: name.to_string(),
            line,
        })
}

fn check_end<'a>(tok: &mut impl Iterator<Item = &'a str>, line: usize) -> Result<(), NetlistError> {
    match tok.next() {
        None => Ok(()),
        Some(extra) => Err(NetlistError::Syntax {
            line,
            message: format!("unexpected trailing token `{extra}`"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    const INV: &str = "\
; nMOS inverter
input Vdd 1
input Gnd 0
input A
node OUT
node BUS size 2
d OUT Vdd OUT strength 1
n A OUT Gnd
";

    #[test]
    fn parse_basic() {
        let net = parse_netlist(INV).unwrap();
        assert_eq!(net.num_nodes(), 5);
        assert_eq!(net.num_transistors(), 2);
        let out = net.find_node("OUT").unwrap();
        assert!(!net.node(out).is_input());
        assert_eq!(net.node(net.find_node("BUS").unwrap()).size(), Size::S2);
        match net.node(net.find_node("Vdd").unwrap()).class {
            NodeClass::Input(v) => assert_eq!(v, Logic::H),
            _ => panic!("Vdd must be an input"),
        }
        let t0 = net.transistor(crate::TransistorId::from_index(0));
        assert_eq!(t0.ttype, TransistorType::D);
        assert_eq!(t0.strength, Drive::D1);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let net = parse_netlist(INV).unwrap();
        let text = write_netlist(&net);
        let net2 = parse_netlist(&text).unwrap();
        assert_eq!(net.num_nodes(), net2.num_nodes());
        assert_eq!(net.num_transistors(), net2.num_transistors());
        for id in net.node_ids() {
            assert_eq!(net.node(id), net2.node(id));
        }
        for id in net.transistor_ids() {
            assert_eq!(net.transistor(id), net2.transistor(id));
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let net = parse_netlist("\n; only comments\n\n   ; indented\ninput A\n").unwrap();
        assert_eq!(net.num_nodes(), 1);
        assert_eq!(net.find_node("A"), Some(NodeId::from_index(0)));
    }

    #[test]
    fn error_unknown_node_has_line() {
        let err = parse_netlist("input A\nn A B C\n").unwrap_err();
        assert_eq!(
            err,
            NetlistError::UnknownNode {
                name: "B".into(),
                line: 2
            }
        );
    }

    #[test]
    fn error_bad_statement() {
        let err = parse_netlist("resistor A B\n").unwrap_err();
        assert!(matches!(err, NetlistError::Syntax { line: 1, .. }));
    }

    #[test]
    fn error_duplicate_reports_line() {
        let err = parse_netlist("input A\ninput A\n").unwrap_err();
        assert!(matches!(err, NetlistError::Syntax { line: 2, .. }));
    }

    #[test]
    fn error_bad_size_range() {
        let err = parse_netlist("node B size 9\n").unwrap_err();
        assert!(matches!(err, NetlistError::Syntax { line: 1, .. }));
    }

    #[test]
    fn error_trailing_tokens() {
        let err = parse_netlist("input A 1 extra\n").unwrap_err();
        assert!(matches!(err, NetlistError::Syntax { line: 1, .. }));
    }

    #[test]
    fn error_bad_default_value() {
        let err = parse_netlist("input A 2\n").unwrap_err();
        assert!(matches!(err, NetlistError::Syntax { line: 1, .. }));
    }

    #[test]
    fn strength_roundtrip() {
        let src = "input G\ninput S\ninput D\nn G S D strength 7\n";
        let net = parse_netlist(src).unwrap();
        assert_eq!(
            net.transistor(crate::TransistorId::from_index(0)).strength,
            Drive::FAULT
        );
        let text = write_netlist(&net);
        assert!(text.contains("strength 7"));
    }
}
