//! Import of the Berkeley `.sim` netlist format.
//!
//! `.sim` files are what Magic's `ext2sim` and the original
//! MOSSIM/esim/rsim toolchain exchanged, so this importer lets the
//! simulator consume netlists extracted from real layouts of the era.
//! The subset understood:
//!
//! ```text
//! | units: 100 tech: nmos          comment / header lines
//! e gate source drain [...]        enhancement nMOS (our n-type)
//! d gate source drain [...]        depletion nMOS (our d-type, weak)
//! n gate source drain [...]        n-channel (alias of e)
//! p gate source drain [...]        p-channel
//! C node1 node2 cap                node capacitance (femtofarads)
//! = alias node                     node aliasing
//! ```
//!
//! Geometry fields after the three terminals are ignored. Nodes named
//! `VDD`/`GND` (any case, with or without `!` suffix) become input
//! rails; everything else is a storage node. Capacitance statements
//! promote a node to the κ2 size class when its total capacitance
//! reaches [`SimImportOptions::bus_threshold_ff`] — this is how bit
//! lines keep their charge-sharing dominance when importing real
//! layouts.

use crate::{Drive, Logic, NetlistError, Network, NodeClass, NodeId, Size, TransistorType};
use std::collections::HashMap;

/// Options controlling `.sim` import.
#[derive(Clone, Debug)]
pub struct SimImportOptions {
    /// Total node capacitance (fF) at which a node is classed κ2.
    pub bus_threshold_ff: f64,
    /// Drive strength for enhancement/p devices.
    pub strong: Drive,
    /// Drive strength for depletion loads.
    pub weak: Drive,
    /// Names of primary-input nodes (the `.sim` format does not mark
    /// them; only `VDD`/`GND`/`VSS` are recognised automatically).
    /// Matched after alias resolution; imported with default value `X`.
    pub inputs: Vec<String>,
}

impl Default for SimImportOptions {
    fn default() -> Self {
        SimImportOptions {
            bus_threshold_ff: 100.0,
            strong: Drive::D2,
            weak: Drive::D1,
            inputs: Vec::new(),
        }
    }
}

impl SimImportOptions {
    /// Builder-style helper declaring primary inputs by name.
    #[must_use]
    pub fn with_inputs<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.inputs.extend(names.into_iter().map(Into::into));
        self
    }
}

/// Per-import diagnostics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimImportReport {
    /// Transistors created.
    pub transistors: usize,
    /// Nodes created.
    pub nodes: usize,
    /// Nodes promoted to κ2 by capacitance.
    pub promoted_buses: usize,
    /// Lines skipped as not understood (line numbers, 1-based).
    pub skipped_lines: Vec<usize>,
}

/// Parses a Berkeley `.sim` file into a [`Network`].
///
/// # Errors
///
/// Returns [`NetlistError::Syntax`] for malformed device lines;
/// unrecognised statement kinds are skipped and reported in
/// [`SimImportReport::skipped_lines`].
pub fn parse_sim(
    text: &str,
    options: &SimImportOptions,
) -> Result<(Network, SimImportReport), NetlistError> {
    // First pass: aliases and capacitances (they may appear anywhere).
    let mut alias: HashMap<&str, &str> = HashMap::new();
    let mut cap_ff: HashMap<String, f64> = HashMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let mut tok = raw.split_whitespace();
        match tok.next() {
            Some("=") => {
                if let (Some(a), Some(b)) = (tok.next(), tok.next()) {
                    alias.insert(a, b);
                }
            }
            Some("C") => {
                // `C node1 node2 cap` (coupling) or `C node cap`.
                let parts: Vec<&str> = tok.collect();
                match parts.as_slice() {
                    [node, cap] => {
                        let c: f64 = cap.parse().map_err(|_| NetlistError::Syntax {
                            line: lineno + 1,
                            message: format!("bad capacitance `{cap}`"),
                        })?;
                        *cap_ff.entry((*node).to_string()).or_insert(0.0) += c;
                    }
                    [n1, n2, cap] => {
                        let c: f64 = cap.parse().map_err(|_| NetlistError::Syntax {
                            line: lineno + 1,
                            message: format!("bad capacitance `{cap}`"),
                        })?;
                        *cap_ff.entry((*n1).to_string()).or_insert(0.0) += c;
                        *cap_ff.entry((*n2).to_string()).or_insert(0.0) += c;
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
    let resolve = |name: &str| -> String {
        let mut n = name;
        let mut hops = 0;
        while let Some(&next) = alias.get(n) {
            n = next;
            hops += 1;
            if hops > 32 {
                break; // cycle; keep the last name
            }
        }
        n.to_string()
    };

    let mut net = Network::new();
    let mut report = SimImportReport::default();
    let mut ids: HashMap<String, NodeId> = HashMap::new();

    let mut intern = |net: &mut Network, name: String| -> NodeId {
        if let Some(&id) = ids.get(&name) {
            return id;
        }
        let canon = name.trim_end_matches('!').to_ascii_uppercase();
        let class = match canon.as_str() {
            "VDD" => NodeClass::Input(Logic::H),
            "GND" | "VSS" => NodeClass::Input(Logic::L),
            _ if options.inputs.contains(&name) => NodeClass::Input(Logic::X),
            _ => {
                let size = if cap_ff.get(&name).copied().unwrap_or(0.0) >= options.bus_threshold_ff
                {
                    Size::S2
                } else {
                    Size::S1
                };
                NodeClass::Storage(size)
            }
        };
        let id = net
            .try_add_node(name.clone(), class)
            .expect("interned names are unique");
        ids.insert(name, id);
        id
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let mut tok = raw.split_whitespace();
        let head = match tok.next() {
            None => continue,
            Some(h) => h,
        };
        let ttype = match head {
            "e" | "n" => TransistorType::N,
            "d" => TransistorType::D,
            "p" => TransistorType::P,
            "|" | "=" | "C" => continue, // header/alias/capacitance
            _ => {
                report.skipped_lines.push(line);
                continue;
            }
        };
        let (g, s, d) = match (tok.next(), tok.next(), tok.next()) {
            (Some(g), Some(s), Some(d)) => (g, s, d),
            _ => {
                return Err(NetlistError::Syntax {
                    line,
                    message: "device line needs gate, source, drain".into(),
                })
            }
        };
        let strength = if ttype == TransistorType::D {
            options.weak
        } else {
            options.strong
        };
        let g = intern(&mut net, resolve(g));
        let s = intern(&mut net, resolve(s));
        let d = intern(&mut net, resolve(d));
        net.add_transistor(ttype, strength, g, s, d);
        report.transistors += 1;
    }
    // Promote count for the report.
    report.promoted_buses = net
        .nodes()
        .filter(|(_, n)| matches!(n.class, NodeClass::Storage(s) if s == Size::S2))
        .count();
    report.nodes = net.num_nodes();
    Ok((net, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
| units: 100 tech: nmos
e IN OUT GND 2 2 16 24
d OUT VDD OUT 2 8 16 8
C OUT 12.5
C BIT GND 150.0
e SEL BIT OUT 2 2 0 0
= IN2 IN
e IN2 BIT GND 2 2 0 0
W whatever unknown statement
";

    #[test]
    fn parses_devices_and_rails() {
        let (net, report) = parse_sim(SAMPLE, &SimImportOptions::default()).unwrap();
        assert_eq!(report.transistors, 4);
        assert_eq!(report.skipped_lines, vec![9]);
        let vdd = net.find_node("VDD").expect("rail");
        assert!(net.node(vdd).is_input());
        let gnd = net.find_node("GND").expect("rail");
        assert!(net.node(gnd).is_input());
        // Depletion load imported as d-type, weak.
        let d = net
            .transistors()
            .find(|(_, t)| t.ttype == TransistorType::D)
            .expect("load");
        assert_eq!(d.1.strength, Drive::D1);
    }

    #[test]
    fn capacitance_promotes_buses() {
        let (net, report) = parse_sim(SAMPLE, &SimImportOptions::default()).unwrap();
        let bit = net.find_node("BIT").expect("bus node");
        assert_eq!(net.node(bit).size(), Size::S2, "150 fF ≥ threshold");
        let out = net.find_node("OUT").expect("node");
        assert_eq!(net.node(out).size(), Size::S1, "12.5 fF below threshold");
        assert_eq!(report.promoted_buses, 1);
    }

    #[test]
    fn aliases_merge_nodes() {
        let (net, _) = parse_sim(SAMPLE, &SimImportOptions::default()).unwrap();
        // IN2 was aliased to IN: only IN exists.
        assert!(net.find_node("IN").is_some());
        assert!(net.find_node("IN2").is_none());
        // The aliased device's channel lands on BIT and GND.
        let gnd = net.find_node("GND").unwrap();
        let bit = net.find_node("BIT").unwrap();
        let in_ = net.find_node("IN").unwrap();
        assert!(net
            .transistors()
            .any(|(_, t)| t.gate == in_ && t.connects(bit) && t.connects(gnd)));
    }

    #[test]
    fn imported_netlist_is_well_formed() {
        // (Behavioural simulation of imported netlists is covered by
        // the workspace integration test `sim_format_import.rs`.)
        let (net, _) = parse_sim(SAMPLE, &SimImportOptions::default()).unwrap();
        assert!(net.validate().is_ok());
    }

    #[test]
    fn malformed_device_line_errors() {
        let err = parse_sim("e A B\n", &SimImportOptions::default()).unwrap_err();
        assert!(matches!(err, NetlistError::Syntax { line: 1, .. }));
    }

    #[test]
    fn declared_inputs_are_input_classified() {
        let options = SimImportOptions::default().with_inputs(["IN", "SEL"]);
        let (net, _) = parse_sim(SAMPLE, &options).unwrap();
        for name in ["IN", "SEL"] {
            let id = net.find_node(name).expect("exists");
            assert!(net.node(id).is_input(), "{name} declared as input");
        }
        let out = net.find_node("OUT").expect("exists");
        assert!(!net.node(out).is_input());
    }

    #[test]
    fn vss_recognised_as_ground() {
        let (net, _) = parse_sim("e G S vss!\n", &SimImportOptions::default()).unwrap();
        let vss = net.find_node("vss!").expect("rail");
        assert!(net.node(vss).is_input());
        assert_eq!(
            match net.node(vss).class {
                NodeClass::Input(v) => v,
                NodeClass::Storage(_) => unreachable!(),
            },
            Logic::L
        );
    }
}
