//! The switch-level network: nodes, transistors, and adjacency.

use crate::{Drive, Logic, NetlistError, NodeId, Size, TransistorId, TransistorType};
use std::collections::HashMap;

/// Classification of a node.
///
/// An *input* node provides a strong signal to the network, like a
/// voltage source; its state is not affected by the actions of the
/// network. A *storage* node's state is determined by the operation of
/// the network and is held (as charge) when the node is isolated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeClass {
    /// Externally driven node (Vdd, Gnd, clocks, data inputs). Carries
    /// the initial/default value the simulator applies at reset.
    Input(Logic),
    /// Network-driven charge-storage node with a capacitance class.
    Storage(Size),
}

/// A node of the network (immutable description, not simulation state).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    /// The node's class (input with default value, or storage with size).
    pub class: NodeClass,
    /// The node's unique name.
    pub name: String,
}

impl Node {
    /// True iff the node is an input node.
    #[inline]
    #[must_use]
    pub fn is_input(&self) -> bool {
        matches!(self.class, NodeClass::Input(_))
    }

    /// The storage size; input nodes report κ1 (never consulted, since
    /// inputs source at strength ω).
    #[inline]
    #[must_use]
    pub fn size(&self) -> Size {
        match self.class {
            NodeClass::Input(_) => Size::S1,
            NodeClass::Storage(s) => s,
        }
    }
}

/// A transistor: a symmetric, bidirectional switch between `source` and
/// `drain`, controlled by the state of `gate`.
///
/// No distinction is made between source and drain; the names merely
/// label the two channel terminals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transistor {
    /// Device type (n/p/d) determining gate behaviour.
    pub ttype: TransistorType,
    /// Conductance class for ratioed-logic resolution.
    pub strength: Drive,
    /// The controlling node.
    pub gate: NodeId,
    /// One channel terminal.
    pub source: NodeId,
    /// The other channel terminal.
    pub drain: NodeId,
}

impl Transistor {
    /// Given one channel terminal, returns the opposite one.
    ///
    /// # Panics
    ///
    /// Panics if `n` is neither `source` nor `drain`.
    #[inline]
    #[must_use]
    pub fn other_end(&self, n: NodeId) -> NodeId {
        if n == self.source {
            self.drain
        } else if n == self.drain {
            self.source
        } else {
            panic!("{n} is not a channel terminal of this transistor");
        }
    }

    /// True iff `n` is one of the two channel terminals.
    #[inline]
    #[must_use]
    pub fn connects(&self, n: NodeId) -> bool {
        n == self.source || n == self.drain
    }
}

/// A switch-level network: a set of nodes connected by transistors,
/// with adjacency indexes maintained incrementally.
///
/// The network is append-only: nodes and transistors can be added but
/// not removed, so `NodeId`/`TransistorId` values stay valid for the
/// lifetime of the network. Fault simulators never mutate the network
/// structurally — faults are expressed as per-circuit *overrides*
/// layered on top (see the `fmossim-faults` crate), mirroring the
/// paper's fault-injection method.
#[derive(Clone, Debug, Default)]
pub struct Network {
    nodes: Vec<Node>,
    transistors: Vec<Transistor>,
    names: HashMap<String, NodeId>,
    /// Per node: transistors having this node as a channel terminal.
    channel_adj: Vec<Vec<TransistorId>>,
    /// Per node: transistors gated by this node.
    gate_adj: Vec<Vec<TransistorId>>,
}

impl Network {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an input node with a default (reset) value.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already taken (use [`Network::try_add_node`]
    /// for a fallible version).
    pub fn add_input(&mut self, name: impl Into<String>, default: Logic) -> NodeId {
        self.try_add_node(name.into(), NodeClass::Input(default))
            .expect("duplicate node name")
    }

    /// Adds a storage node of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already taken.
    pub fn add_storage(&mut self, name: impl Into<String>, size: Size) -> NodeId {
        self.try_add_node(name.into(), NodeClass::Storage(size))
            .expect("duplicate node name")
    }

    /// Adds a node, failing on duplicate names.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateNode`] if a node of this name
    /// already exists.
    pub fn try_add_node(&mut self, name: String, class: NodeClass) -> Result<NodeId, NetlistError> {
        if self.names.contains_key(&name) {
            return Err(NetlistError::DuplicateNode(name));
        }
        let id = NodeId::from_index(self.nodes.len());
        self.names.insert(name.clone(), id);
        self.nodes.push(Node { class, name });
        self.channel_adj.push(Vec::new());
        self.gate_adj.push(Vec::new());
        Ok(id)
    }

    /// Adds a transistor and updates adjacency.
    ///
    /// # Panics
    ///
    /// Panics if any of the three node ids is out of range for this
    /// network.
    pub fn add_transistor(
        &mut self,
        ttype: TransistorType,
        strength: Drive,
        gate: NodeId,
        source: NodeId,
        drain: NodeId,
    ) -> TransistorId {
        for n in [gate, source, drain] {
            assert!(n.index() < self.nodes.len(), "node {n} out of range");
        }
        let id = TransistorId::from_index(self.transistors.len());
        self.transistors.push(Transistor {
            ttype,
            strength,
            gate,
            source,
            drain,
        });
        self.channel_adj[source.index()].push(id);
        if drain != source {
            self.channel_adj[drain.index()].push(id);
        }
        self.gate_adj[gate.index()].push(id);
        id
    }

    /// Number of nodes (inputs + storage).
    #[inline]
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of transistors.
    #[inline]
    #[must_use]
    pub fn num_transistors(&self) -> usize {
        self.transistors.len()
    }

    /// The node description for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The transistor description for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    #[must_use]
    pub fn transistor(&self, id: TransistorId) -> &Transistor {
        &self.transistors[id.index()]
    }

    /// Looks a node up by name.
    #[must_use]
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// Transistors whose channel (source or drain) touches `n`.
    #[inline]
    #[must_use]
    pub fn channel_transistors(&self, n: NodeId) -> &[TransistorId] {
        &self.channel_adj[n.index()]
    }

    /// Transistors gated by `n`.
    #[inline]
    #[must_use]
    pub fn gated_transistors(&self, n: NodeId) -> &[TransistorId] {
        &self.gate_adj[n.index()]
    }

    /// Iterates over all node ids in creation order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterates over all transistor ids in creation order.
    pub fn transistor_ids(&self) -> impl ExactSizeIterator<Item = TransistorId> + '_ {
        (0..self.transistors.len()).map(TransistorId::from_index)
    }

    /// Iterates over `(id, node)` pairs.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = (NodeId, &Node)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// Iterates over `(id, transistor)` pairs.
    pub fn transistors(&self) -> impl ExactSizeIterator<Item = (TransistorId, &Transistor)> + '_ {
        self.transistors
            .iter()
            .enumerate()
            .map(|(i, t)| (TransistorId::from_index(i), t))
    }

    /// Iterates over the ids of all input nodes.
    pub fn input_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|(_, n)| n.is_input()).map(|(id, _)| id)
    }

    /// Iterates over the ids of all storage nodes.
    pub fn storage_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes()
            .filter(|(_, n)| !n.is_input())
            .map(|(id, _)| id)
    }

    /// Structural sanity checks beyond what construction enforces:
    /// every node reachable, no transistor gated by itself in a way that
    /// cannot settle, etc. Currently validates:
    ///
    /// * at least one input node exists (a network with no inputs can
    ///   never be driven);
    /// * no transistor has `source == drain == gate` (meaningless);
    /// * every storage node is channel-connected to at least one
    ///   transistor (isolated storage nodes are almost always netlist
    ///   bugs).
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistError`] found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        if !self.nodes.iter().any(Node::is_input) {
            return Err(NetlistError::NoInputs);
        }
        for (id, t) in self.transistors() {
            if t.source == t.drain && t.gate == t.source {
                return Err(NetlistError::DegenerateTransistor(id));
            }
        }
        for (id, node) in self.nodes() {
            if !node.is_input()
                && self.channel_adj[id.index()].is_empty()
                && self.gate_adj[id.index()].is_empty()
            {
                return Err(NetlistError::IsolatedNode(node.name.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inverter() -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::X);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::D, Drive::D1, out, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
        (net, a, out)
    }

    #[test]
    fn build_and_query() {
        let (net, a, out) = inverter();
        assert_eq!(net.num_nodes(), 4);
        assert_eq!(net.num_transistors(), 2);
        assert_eq!(net.find_node("OUT"), Some(out));
        assert_eq!(net.find_node("nope"), None);
        assert!(net.node(a).is_input());
        assert!(!net.node(out).is_input());
        // OUT touches both transistors via channel; A gates one.
        assert_eq!(net.channel_transistors(out).len(), 2);
        assert_eq!(net.gated_transistors(a).len(), 1);
        // The depletion load is gated by OUT itself.
        assert_eq!(net.gated_transistors(out).len(), 1);
        assert_eq!(net.input_ids().count(), 3);
        assert_eq!(net.storage_ids().count(), 1);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut net = Network::new();
        net.add_input("A", Logic::X);
        let err = net
            .try_add_node("A".into(), NodeClass::Storage(Size::S1))
            .unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateNode(n) if n == "A"));
    }

    #[test]
    fn other_end_and_connects() {
        let (net, _, out) = inverter();
        let t = net.transistor(TransistorId::from_index(1));
        let gnd = net.find_node("Gnd").unwrap();
        assert_eq!(t.other_end(out), gnd);
        assert_eq!(t.other_end(gnd), out);
        assert!(t.connects(out));
        assert!(!t.connects(net.find_node("Vdd").unwrap()));
    }

    #[test]
    #[should_panic(expected = "not a channel terminal")]
    fn other_end_panics_for_gate() {
        let (net, a, _) = inverter();
        let t = net.transistor(TransistorId::from_index(1));
        let _ = t.other_end(a); // `a` is the gate, not a terminal
    }

    #[test]
    fn validate_catches_no_inputs() {
        let mut net = Network::new();
        let s = net.add_storage("S", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, s, s, s);
        assert!(matches!(net.validate(), Err(NetlistError::NoInputs)));
    }

    #[test]
    fn validate_catches_isolated_storage() {
        let mut net = Network::new();
        net.add_input("Vdd", Logic::H);
        net.add_storage("orphan", Size::S1);
        assert!(matches!(
            net.validate(),
            Err(NetlistError::IsolatedNode(n)) if n == "orphan"
        ));
    }

    #[test]
    fn validate_catches_degenerate_transistor() {
        let mut net = Network::new();
        net.add_input("Vdd", Logic::H);
        let s = net.add_storage("S", Size::S1);
        net.add_transistor(TransistorType::N, Drive::D2, s, s, s);
        assert!(matches!(
            net.validate(),
            Err(NetlistError::DegenerateTransistor(_))
        ));
    }

    #[test]
    fn self_loop_channel_recorded_once() {
        let (net, _, out) = inverter();
        // The depletion load has source == Vdd, drain == OUT; check a
        // true self-loop is not double-counted.
        let mut net = net;
        let t = net.add_transistor(
            TransistorType::N,
            Drive::D2,
            net.find_node("A").unwrap(),
            out,
            out,
        );
        let count = net
            .channel_transistors(out)
            .iter()
            .filter(|&&x| x == t)
            .count();
        assert_eq!(count, 1);
    }
}
