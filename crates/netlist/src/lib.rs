//! Switch-level network model for MOS circuits.
//!
//! This crate implements the network model of MOSSIM II / FMOSSIM
//! (Bryant, *A Switch-Level Model and Simulator for MOS Digital Systems*,
//! IEEE Trans. Computers C-33(2), 1984; Bryant & Schuster, DAC 1985):
//! a circuit is a set of *nodes* connected by *transistors*.
//!
//! * Every node has a logic state [`Logic`]: `0`, `1`, or `X`
//!   (indeterminate voltage).
//! * Nodes are classified [`NodeClass::Input`] (externally driven, like
//!   Vdd/Gnd/clocks) or [`NodeClass::Storage`] (state determined by the
//!   network; holds charge when isolated).
//! * Storage nodes carry a discrete [`Size`] modelling relative
//!   capacitance for charge-sharing resolution.
//! * Transistors are symmetric, bidirectional switches of a
//!   [`TransistorType`] (`n`, `p`, or `d`) whose conduction state is a
//!   function of the gate-node state (Table 1 of the DAC-85 paper), and
//!   carry a discrete [`Drive`] strength modelling relative conductance
//!   for ratioed logic.
//!
//! No restriction is placed on how nodes and transistors are
//! interconnected.
//!
//! # Example
//!
//! Building an nMOS inverter (depletion pull-up, enhancement pull-down):
//!
//! ```
//! use fmossim_netlist::{Network, Logic, TransistorType, Drive, Size};
//!
//! let mut net = Network::new();
//! let vdd = net.add_input("Vdd", Logic::H);
//! let gnd = net.add_input("Gnd", Logic::L);
//! let a = net.add_input("A", Logic::X);
//! let out = net.add_storage("OUT", Size::S1);
//! // Weak depletion load: always conducting, strength 1.
//! net.add_transistor(TransistorType::D, Drive::D1, out, vdd, out);
//! // Strong pull-down, strength 2.
//! net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
//! assert_eq!(net.num_nodes(), 4);
//! assert_eq!(net.num_transistors(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod format;
mod hash;
mod ids;
pub mod influence;
mod logic;
mod network;
mod simformat;
mod stats;
mod strength;
mod ttype;

pub use error::NetlistError;
pub use format::{parse_netlist, write_netlist};
pub use hash::Fnv1a;
pub use ids::{NodeId, TransistorId};
pub use logic::Logic;
pub use network::{Network, Node, NodeClass, Transistor};
pub use simformat::{parse_sim, SimImportOptions, SimImportReport};
pub use stats::NetworkStats;
pub use strength::{Drive, Size, Strength};
pub use ttype::{Conduction, TransistorType};
