//! Typed indices for nodes and transistors.

use std::fmt;

/// Identifies a node within a [`Network`](crate::Network).
///
/// `NodeId`s are dense indices handed out in creation order, so they can
/// be used to index per-node side tables (`Vec`s) in simulators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

/// Identifies a transistor within a [`Network`](crate::Network).
///
/// Dense indices in creation order, usable for per-transistor side
/// tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransistorId(pub(crate) u32);

impl NodeId {
    /// Creates a `NodeId` from a raw index.
    ///
    /// The caller is responsible for the index denoting an existing node
    /// of the network it is used with; methods taking an out-of-range id
    /// panic.
    #[inline]
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32 range"))
    }

    /// The raw dense index of this node.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TransistorId {
    /// Creates a `TransistorId` from a raw index.
    ///
    /// The caller is responsible for the index denoting an existing
    /// transistor of the network it is used with.
    #[inline]
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        TransistorId(u32::try_from(index).expect("transistor index exceeds u32 range"))
    }

    /// The raw dense index of this transistor.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for TransistorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n.to_string(), "n42");
        let t = TransistorId::from_index(7);
        assert_eq!(t.index(), 7);
        assert_eq!(t.to_string(), "t7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(TransistorId::from_index(0) < TransistorId::from_index(9));
    }
}
