//! Stable content hashing for networks — the cache key of the
//! campaign server's good-tape cache, and a provenance fingerprint for
//! archived reports.
//!
//! The hash is 64-bit FNV-1a (offset basis `0xcbf29ce484222325`, prime
//! `0x100000001b3`) over a canonical byte encoding of the network's
//! *semantic content*: nodes in id order (class, default value or size,
//! name) followed by transistors in id order (type, strength, node
//! indices). Because the `.snl` text format defines declaration order
//! to *be* id order, parsing a netlist and re-parsing its
//! [`write_netlist`](crate::write_netlist) round-trip produce the same
//! hash — the encoding is order-canonical and byte-reproducible across
//! runs, platforms, and process restarts (no pointer values, no
//! `HashMap` iteration order, no randomized hasher state).
//!
//! Two networks share a [`Network::content_hash`] iff they describe
//! the same circuit node-for-node and transistor-for-transistor.
//! Renaming a node changes the hash (names are part of `.snl`
//! identity); reordering declarations changes the hash too, because
//! ids — and therefore every stimulus and fault referring to them —
//! change meaning with the order.

use crate::{Network, NodeClass};

/// An incremental 64-bit FNV-1a hasher.
///
/// Deliberately tiny and dependency-free: unlike
/// [`std::hash::Hasher`] implementations, its output is *specified*
/// (FNV-1a with the standard constants) and therefore stable across
/// Rust versions — safe to persist in caches and artifacts.
///
/// ```
/// use fmossim_netlist::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write(b"hello");
/// // The well-known FNV-1a test vector for "hello".
/// assert_eq!(h.finish(), 0xa430d84680aabd0b);
/// assert_eq!(Fnv1a::new().finish(), 0xcbf29ce484222325, "offset basis");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

/// The FNV-1a 64-bit offset basis.
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const PRIME: u64 = 0x100_0000_01b3;

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// Starts a hasher at the offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv1a(OFFSET_BASIS)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, b: u8) {
        self.write(&[b]);
    }

    /// Feeds a `u64` as its 8 little-endian bytes (fixed-width, so
    /// adjacent variable-length fields cannot alias).
    pub fn write_u64(&mut self, n: u64) {
        self.write(&n.to_le_bytes());
    }

    /// Feeds a `usize` widened to `u64` (platform-independent).
    pub fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    /// Feeds a string as its length (u64) followed by its UTF-8 bytes
    /// — length-prefixed, so `("ab","c")` and `("a","bc")` differ.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Network {
    /// A stable 64-bit FNV-1a fingerprint of this network's content.
    ///
    /// The encoding is canonical and byte-reproducible: node count,
    /// then each node in id order (class tag `i`/`s`, default value or
    /// size, length-prefixed name), then transistor count, then each
    /// transistor in id order (type letter, strength level, gate /
    /// source / drain indices). Because `.snl` declaration order *is*
    /// id order, equal text netlists hash equal — across runs,
    /// platforms, and process restarts. This is the netlist half of
    /// the campaign server's good-tape cache key.
    ///
    /// ```
    /// use fmossim_netlist::{parse_netlist, write_netlist};
    ///
    /// let text = "input A 0\nnode OUT\ninput Vdd 1\ninput Gnd 0\n\
    ///             p A Vdd OUT\nn A OUT Gnd\n";
    /// let net = parse_netlist(text).unwrap();
    /// // Text round-trips preserve ids, so they preserve the hash.
    /// let again = parse_netlist(&write_netlist(&net)).unwrap();
    /// assert_eq!(net.content_hash(), again.content_hash());
    /// ```
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_usize(self.num_nodes());
        for (_, node) in self.nodes() {
            match node.class {
                NodeClass::Input(default) => {
                    h.write_u8(b'i');
                    h.write_u8(default.to_char() as u8);
                }
                NodeClass::Storage(size) => {
                    h.write_u8(b's');
                    h.write_u8(size.level());
                }
            }
            h.write_str(&node.name);
        }
        h.write_usize(self.num_transistors());
        for (_, t) in self.transistors() {
            h.write_u8(t.ttype.to_char() as u8);
            h.write_u8(t.strength.level());
            h.write_usize(t.gate.index());
            h.write_usize(t.source.index());
            h.write_usize(t.drain.index());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Drive, Logic, Size, TransistorType};

    fn inverter() -> Network {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::L);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::P, Drive::D2, a, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
        net
    }

    #[test]
    fn deterministic_across_rebuilds() {
        assert_eq!(inverter().content_hash(), inverter().content_hash());
    }

    /// The hash is pinned: changing the encoding is a cache-format
    /// break and must be deliberate (update this vector alongside the
    /// module docs).
    #[test]
    fn pinned_value() {
        assert_eq!(inverter().content_hash(), 0xc626_a54d_ff8b_f51e);
    }

    #[test]
    fn every_field_matters() {
        let base = inverter().content_hash();
        // A renamed node.
        let mut net = inverter();
        net.add_storage("EXTRA", Size::S1);
        assert_ne!(net.content_hash(), base, "extra node");
        // A different input default.
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::H); // was L
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::P, Drive::D2, a, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
        assert_ne!(net.content_hash(), base, "input default");
        // A different transistor strength.
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::L);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::P, Drive::D1, a, vdd, out); // was D2
        net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
        assert_ne!(net.content_hash(), base, "drive strength");
    }

    #[test]
    fn declaration_order_is_identity() {
        // Same devices, different node declaration order: ids differ,
        // so the content differs (stimuli/faults index by id).
        let mut net = Network::new();
        let a = net.add_input("A", Logic::L);
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let out = net.add_storage("OUT", Size::S1);
        net.add_transistor(TransistorType::P, Drive::D2, a, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, gnd);
        assert_ne!(net.content_hash(), inverter().content_hash());
    }

    #[test]
    fn length_prefixing_prevents_aliasing() {
        let mut h1 = Fnv1a::new();
        h1.write_str("ab");
        h1.write_str("c");
        let mut h2 = Fnv1a::new();
        h2.write_str("a");
        h2.write_str("bc");
        assert_ne!(h1.finish(), h2.finish());
    }
}
