//! Transistor types and the gate-state → conduction-state function.

use crate::Logic;
use std::fmt;

/// The conduction state of a transistor switch.
///
/// `Open`/`Closed` correspond to transistor states 0/1 in the paper;
/// [`Conduction::Maybe`] (state X) is an indeterminate condition between
/// open and closed, inclusive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Conduction {
    /// Definitely non-conducting (state 0).
    Open,
    /// Definitely fully conducting (state 1).
    Closed,
    /// Possibly conducting (state X).
    #[default]
    Maybe,
}

impl Conduction {
    /// True iff the switch definitely conducts.
    #[inline]
    #[must_use]
    pub fn is_closed(self) -> bool {
        self == Conduction::Closed
    }

    /// True iff the switch *may* conduct (state 1 or X). Vicinity
    /// extraction uses this: the paper's conducting paths are through
    /// transistors in the 1 *or* X state.
    #[inline]
    #[must_use]
    pub fn may_conduct(self) -> bool {
        self != Conduction::Open
    }
}

impl fmt::Display for Conduction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Conduction::Open => "0",
            Conduction::Closed => "1",
            Conduction::Maybe => "X",
        };
        write!(f, "{s}")
    }
}

/// The type of a transistor: n-channel, p-channel, or depletion.
///
/// A d-type transistor corresponds to a negative-threshold depletion-mode
/// device: it conducts regardless of its gate state and is used for nMOS
/// pull-up loads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TransistorType {
    /// n-channel enhancement: conducts when the gate is high.
    N,
    /// p-channel enhancement: conducts when the gate is low.
    P,
    /// Depletion mode: always conducts.
    D,
}

impl TransistorType {
    /// All transistor types (for exhaustive tests and fault universes).
    pub const ALL: [TransistorType; 3] = [TransistorType::N, TransistorType::P, TransistorType::D];

    /// Transistor state as a function of gate-node state — Table 1 of
    /// the DAC-85 paper:
    ///
    /// | gate | n-type | p-type | d-type |
    /// |------|--------|--------|--------|
    /// | 0    | 0      | 1      | 1      |
    /// | 1    | 1      | 0      | 1      |
    /// | X    | X      | X      | 1      |
    ///
    /// ```
    /// use fmossim_netlist::{TransistorType, Logic, Conduction};
    /// assert_eq!(TransistorType::N.conduction(Logic::H), Conduction::Closed);
    /// assert_eq!(TransistorType::P.conduction(Logic::H), Conduction::Open);
    /// assert_eq!(TransistorType::D.conduction(Logic::X), Conduction::Closed);
    /// ```
    #[inline]
    #[must_use]
    pub fn conduction(self, gate: Logic) -> Conduction {
        match (self, gate) {
            (TransistorType::D, _) => Conduction::Closed,
            (TransistorType::N, Logic::H) | (TransistorType::P, Logic::L) => Conduction::Closed,
            (TransistorType::N, Logic::L) | (TransistorType::P, Logic::H) => Conduction::Open,
            (TransistorType::N, Logic::X) | (TransistorType::P, Logic::X) => Conduction::Maybe,
        }
    }

    /// The canonical single-character form used by the netlist format.
    #[inline]
    #[must_use]
    pub fn to_char(self) -> char {
        match self {
            TransistorType::N => 'n',
            TransistorType::P => 'p',
            TransistorType::D => 'd',
        }
    }

    /// Parses the canonical single-character form (`n`, `p`, `d`).
    #[must_use]
    pub fn from_char(c: char) -> Option<Self> {
        match c {
            'n' => Some(TransistorType::N),
            'p' => Some(TransistorType::P),
            'd' => Some(TransistorType::D),
            _ => None,
        }
    }
}

impl fmt::Display for TransistorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive check of Table 1 from the paper.
    #[test]
    fn table_1() {
        use Conduction::*;
        use Logic::*;
        let expect = [
            // (type, gate, state)
            (TransistorType::N, L, Open),
            (TransistorType::N, H, Closed),
            (TransistorType::N, X, Maybe),
            (TransistorType::P, L, Closed),
            (TransistorType::P, H, Open),
            (TransistorType::P, X, Maybe),
            (TransistorType::D, L, Closed),
            (TransistorType::D, H, Closed),
            (TransistorType::D, X, Closed),
        ];
        for (ty, gate, want) in expect {
            assert_eq!(ty.conduction(gate), want, "{ty} gate={gate}");
        }
    }

    #[test]
    fn conduction_predicates() {
        assert!(Conduction::Closed.is_closed());
        assert!(!Conduction::Maybe.is_closed());
        assert!(Conduction::Maybe.may_conduct());
        assert!(Conduction::Closed.may_conduct());
        assert!(!Conduction::Open.may_conduct());
    }

    #[test]
    fn char_roundtrip() {
        for ty in TransistorType::ALL {
            assert_eq!(TransistorType::from_char(ty.to_char()), Some(ty));
        }
        assert_eq!(TransistorType::from_char('q'), None);
    }

    /// Ternary monotonicity of the conduction function: refining an X
    /// gate to a definite value must refine (not contradict) the result.
    #[test]
    fn conduction_is_monotone() {
        for ty in TransistorType::ALL {
            let at_x = ty.conduction(Logic::X);
            for g in [Logic::L, Logic::H] {
                let refined = ty.conduction(g);
                if at_x != Conduction::Maybe {
                    assert_eq!(at_x, refined, "{ty}: definite-at-X must be stable");
                }
            }
        }
    }
}
