//! Error types for network construction and netlist parsing.

use crate::TransistorId;
use std::error::Error;
use std::fmt;

/// Errors produced while building a [`Network`](crate::Network) or
/// parsing the text netlist format.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A node name was declared twice.
    DuplicateNode(String),
    /// A transistor line referenced a node name never declared.
    UnknownNode {
        /// The offending name.
        name: String,
        /// 1-based source line of the reference.
        line: usize,
    },
    /// A line of the netlist file could not be parsed.
    Syntax {
        /// 1-based source line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// The network has no input nodes and so can never be driven.
    NoInputs,
    /// A transistor has gate, source and drain all on the same node.
    DegenerateTransistor(TransistorId),
    /// A storage node is connected to nothing.
    IsolatedNode(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateNode(n) => write!(f, "duplicate node name `{n}`"),
            NetlistError::UnknownNode { name, line } => {
                write!(f, "line {line}: unknown node `{name}`")
            }
            NetlistError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            NetlistError::NoInputs => write!(f, "network has no input nodes"),
            NetlistError::DegenerateTransistor(t) => {
                write!(f, "transistor {t} has gate, source and drain on one node")
            }
            NetlistError::IsolatedNode(n) => {
                write!(f, "storage node `{n}` is connected to nothing")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs: Vec<NetlistError> = vec![
            NetlistError::DuplicateNode("a".into()),
            NetlistError::UnknownNode {
                name: "b".into(),
                line: 3,
            },
            NetlistError::Syntax {
                line: 1,
                message: "bad token".into(),
            },
            NetlistError::NoInputs,
            NetlistError::DegenerateTransistor(TransistorId::from_index(0)),
            NetlistError::IsolatedNode("c".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
