//! The signal-strength lattice.
//!
//! Bryant's switch-level model resolves node states by comparing signal
//! *strengths* drawn from a totally ordered set
//!
//! ```text
//! λ < κ1 < κ2 < … < κ7 < γ1 < γ2 < … < γ7 < ω
//! ```
//!
//! where λ is the absent signal, κ* are charge (node-size) strengths,
//! γ* are transistor drive strengths, and ω is the strength of an input
//! node (an ideal voltage source). A signal transmitted through a
//! conducting transistor is attenuated to the minimum of its strength
//! and the transistor's drive strength; stored charge sources a signal
//! at the node's size strength.

use std::fmt;

/// Maximum number of distinct node sizes (κ1 … κ7).
pub const MAX_SIZES: u8 = 7;
/// Maximum number of distinct transistor drive strengths (γ1 … γ7).
pub const MAX_DRIVES: u8 = 7;

/// A storage-node size: the relative capacitance class κ1 < … < κ7.
///
/// Most circuits need only two sizes ([`Size::S1`] for ordinary nodes,
/// [`Size::S2`] for high-capacitance nodes such as buses); larger values
/// are available for unusual structures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Size(u8);

/// A transistor drive strength: the relative conductance class
/// γ1 < … < γ7.
///
/// Most CMOS circuits need one strength; nMOS ratioed logic needs two
/// (weak pull-up loads vs. everything else); fault-injection transistors
/// use a very high strength so a short overrides normal drivers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Drive(u8);

impl Size {
    /// κ1, the default size of ordinary storage nodes.
    pub const S1: Size = Size(1);
    /// κ2, conventionally used for high-capacitance nodes (buses).
    pub const S2: Size = Size(2);

    /// Creates a size class `k` (κ`k`).
    ///
    /// # Errors
    ///
    /// Returns `None` unless `1 <= k <= MAX_SIZES`.
    #[must_use]
    pub fn new(k: u8) -> Option<Self> {
        (1..=MAX_SIZES).contains(&k).then_some(Size(k))
    }

    /// The size class index (1-based).
    #[inline]
    #[must_use]
    pub fn level(self) -> u8 {
        self.0
    }
}

impl Drive {
    /// γ1, conventionally the weak (pull-up load) strength.
    pub const D1: Drive = Drive(1);
    /// γ2, conventionally the normal enhancement-transistor strength.
    pub const D2: Drive = Drive(2);
    /// γ3, a stronger class, free for circuit-specific use.
    pub const D3: Drive = Drive(3);
    /// γ7, the strongest class; used for fault-injection (short/open)
    /// transistors so that a short dominates any functional driver.
    pub const FAULT: Drive = Drive(MAX_DRIVES);

    /// Creates a drive class `g` (γ`g`).
    ///
    /// # Errors
    ///
    /// Returns `None` unless `1 <= g <= MAX_DRIVES`.
    #[must_use]
    pub fn new(g: u8) -> Option<Self> {
        (1..=MAX_DRIVES).contains(&g).then_some(Drive(g))
    }

    /// The drive class index (1-based).
    #[inline]
    #[must_use]
    pub fn level(self) -> u8 {
        self.0
    }
}

impl Default for Size {
    fn default() -> Self {
        Size::S1
    }
}

impl Default for Drive {
    fn default() -> Self {
        Drive::D2
    }
}

/// A point in the full strength lattice λ < κ* < γ* < ω.
///
/// `Strength` is the value the steady-state solver computes fixed points
/// over; it is `Copy`, totally ordered, and cheap to compare (a single
/// byte internally).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Strength(u8);

impl Strength {
    /// λ: no signal.
    pub const NONE: Strength = Strength(0);
    /// ω: the strength of an input node (ideal source).
    pub const INPUT: Strength = Strength(u8::MAX);

    /// The strength of stored charge on a node of size `s` (κ level).
    #[inline]
    #[must_use]
    pub fn from_size(s: Size) -> Self {
        Strength(s.0)
    }

    /// The strength of a driven signal through a transistor of drive
    /// strength `d` (γ level; ranks above every κ).
    #[inline]
    #[must_use]
    pub fn from_drive(d: Drive) -> Self {
        Strength(MAX_SIZES + d.0)
    }

    /// Signal attenuation: a signal of strength `self` passing through a
    /// transistor of drive `d` emerges with the minimum of the two
    /// strengths (an ideal-source ω signal becomes γ-strength; charge
    /// signals pass unattenuated because κ < γ).
    #[inline]
    #[must_use]
    pub fn through(self, d: Drive) -> Self {
        self.min(Strength::from_drive(d))
    }

    /// True iff this is λ (no signal).
    #[inline]
    #[must_use]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// True iff this is a charge-class (κ) strength.
    #[inline]
    #[must_use]
    pub fn is_charge(self) -> bool {
        (1..=MAX_SIZES).contains(&self.0)
    }

    /// True iff this is a drive-class (γ) strength.
    #[inline]
    #[must_use]
    pub fn is_drive(self) -> bool {
        (MAX_SIZES + 1..=MAX_SIZES + MAX_DRIVES).contains(&self.0)
    }

    /// Number of distinct lattice ranks (λ, κ1…κ7, γ1…γ7, ω):
    /// [`Strength::rank`] returns values in `0..NUM_RANKS`.
    pub const NUM_RANKS: usize = (MAX_SIZES + MAX_DRIVES + 2) as usize;

    /// The dense lattice rank: λ → 0, κk → k, γg → `MAX_SIZES` + g,
    /// ω → `NUM_RANKS - 1` (15). Rank order equals strength order, so
    /// bit-parallel solvers can represent a strength as a thermometer
    /// code over `NUM_RANKS` planes.
    #[inline]
    #[must_use]
    pub fn rank(self) -> usize {
        if self == Strength::INPUT {
            Self::NUM_RANKS - 1
        } else {
            self.0 as usize
        }
    }
}

impl fmt::Display for Strength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "λ")
        } else if *self == Strength::INPUT {
            write!(f, "ω")
        } else if self.is_charge() {
            write!(f, "κ{}", self.0)
        } else {
            write!(f, "γ{}", self.0 - MAX_SIZES)
        }
    }
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "κ{}", self.0)
    }
}

impl fmt::Display for Drive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "γ{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_total_order() {
        // λ < κ1 < κ7 < γ1 < γ7 < ω
        let none = Strength::NONE;
        let k1 = Strength::from_size(Size::S1);
        let k7 = Strength::from_size(Size::new(7).unwrap());
        let g1 = Strength::from_drive(Drive::D1);
        let g7 = Strength::from_drive(Drive::FAULT);
        let omega = Strength::INPUT;
        assert!(none < k1);
        assert!(k1 < k7);
        assert!(k7 < g1);
        assert!(g1 < g7);
        assert!(g7 < omega);
    }

    #[test]
    fn attenuation_caps_at_drive() {
        let g2 = Drive::D2;
        assert_eq!(Strength::INPUT.through(g2), Strength::from_drive(g2));
        // A weaker signal passes unchanged.
        let k1 = Strength::from_size(Size::S1);
        assert_eq!(k1.through(g2), k1);
        // A stronger drive is capped.
        let g3 = Strength::from_drive(Drive::D3);
        assert_eq!(g3.through(g2), Strength::from_drive(g2));
    }

    #[test]
    fn constructors_validate_range() {
        assert!(Size::new(0).is_none());
        assert!(Size::new(8).is_none());
        assert!(Size::new(7).is_some());
        assert!(Drive::new(0).is_none());
        assert!(Drive::new(8).is_none());
        assert!(Drive::new(1).is_some());
    }

    #[test]
    fn classification() {
        assert!(Strength::NONE.is_none());
        assert!(Strength::from_size(Size::S2).is_charge());
        assert!(Strength::from_drive(Drive::D1).is_drive());
        assert!(!Strength::INPUT.is_drive());
        assert!(!Strength::INPUT.is_charge());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Strength::NONE.to_string(), "λ");
        assert_eq!(Strength::INPUT.to_string(), "ω");
        assert_eq!(Strength::from_size(Size::S2).to_string(), "κ2");
        assert_eq!(Strength::from_drive(Drive::D3).to_string(), "γ3");
        assert_eq!(Size::S1.to_string(), "κ1");
        assert_eq!(Drive::D2.to_string(), "γ2");
    }

    #[test]
    fn rank_is_dense_and_order_preserving() {
        let mut all = vec![Strength::NONE];
        for k in 1..=MAX_SIZES {
            all.push(Strength::from_size(Size::new(k).unwrap()));
        }
        for g in 1..=MAX_DRIVES {
            all.push(Strength::from_drive(Drive::new(g).unwrap()));
        }
        all.push(Strength::INPUT);
        assert_eq!(all.len(), Strength::NUM_RANKS);
        for (i, s) in all.iter().enumerate() {
            assert_eq!(s.rank(), i, "{s} occupies rank {i}");
        }
        for w in all.windows(2) {
            assert!(w[0] < w[1], "rank order equals strength order");
        }
    }

    #[test]
    fn defaults() {
        assert_eq!(Size::default(), Size::S1);
        assert_eq!(Drive::default(), Drive::D2);
        assert_eq!(Strength::default(), Strength::NONE);
    }
}
