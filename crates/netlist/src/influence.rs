//! Channel-graph influence analysis: reachability closures over the
//! static transistor graph, shared by the fault-collapsing rules in
//! `fmossim-faults` and the activity-gating cones in `fmossim-core`.
//!
//! All three helpers operate on the *static* graph — a transistor
//! contributes its edges whether or not it conducts — so every closure
//! is a sound superset of anything a dynamic (conduction-dependent)
//! analysis could find, for any circuit derived from the network by
//! forcing node values or transistor conduction states.

use crate::ids::{NodeId, TransistorId};
use crate::network::Network;

/// The *interaction cone* of a seed set: every node whose state can
/// influence, or be influenced by, activity originating at the seeds,
/// closed under the three switch-level interaction edges:
///
/// * **channel adjacency** — charge and drive flow through a channel in
///   either direction;
/// * **gate → endpoint** — a node's state switches the transistors it
///   gates, perturbing their channel endpoints;
/// * **endpoint → gate** — a vicinity's solve consults (and its support
///   includes) the gates of every incident transistor, so gate nodes
///   interact with the endpoints they control.
///
/// Input nodes *enter* the cone (their changes are events the cone must
/// see) but are never *expanded through*: an input's state is externally
/// pinned, so nothing propagates across it — expanding through Vdd/Gnd
/// would otherwise pull the whole chip into every cone. Seed nodes are
/// expanded even when they are inputs (a fault's own terminals interact
/// regardless of class).
///
/// Returns one flag per node (`true` = in the cone).
///
/// ```
/// use fmossim_netlist::{influence::interaction_cone, Drive, Logic, Network, Size, TransistorType};
///
/// let mut net = Network::new();
/// let vdd = net.add_input("Vdd", Logic::H);
/// let a = net.add_input("A", Logic::L);
/// let out = net.add_storage("OUT", Size::S1);
/// let far = net.add_storage("FAR", Size::S1);
/// net.add_transistor(TransistorType::D, Drive::D1, out, vdd, out);
/// net.add_transistor(TransistorType::N, Drive::D2, a, out, vdd);
/// net.add_transistor(TransistorType::N, Drive::D2, a, far, vdd);
/// let cone = interaction_cone(&net, &[out]);
/// assert!(cone[out.index()] && cone[a.index()] && cone[vdd.index()]);
/// // FAR shares only the *input* A with OUT. Inputs join the cone (a
/// // change of A is an event OUT's cone must see) but are pinned, so
/// // no influence flows across them — FAR stays outside.
/// assert!(!cone[far.index()]);
/// ```
#[must_use]
pub fn interaction_cone(net: &Network, seeds: &[NodeId]) -> Vec<bool> {
    let mut in_cone = vec![false; net.num_nodes()];
    let mut expandable = vec![false; net.num_nodes()];
    let mut stack: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if !in_cone[s.index()] {
            in_cone[s.index()] = true;
        }
        if !expandable[s.index()] {
            expandable[s.index()] = true;
            stack.push(s);
        }
    }
    let add = |n: NodeId,
               in_cone: &mut Vec<bool>,
               expandable: &mut Vec<bool>,
               stack: &mut Vec<NodeId>| {
        in_cone[n.index()] = true;
        if !net.node(n).is_input() && !expandable[n.index()] {
            expandable[n.index()] = true;
            stack.push(n);
        }
    };
    while let Some(v) = stack.pop() {
        for &t in net.channel_transistors(v) {
            let tr = net.transistor(t);
            add(tr.other_end(v), &mut in_cone, &mut expandable, &mut stack);
            add(tr.gate, &mut in_cone, &mut expandable, &mut stack);
        }
        for &t in net.gated_transistors(v) {
            let tr = net.transistor(t);
            add(tr.source, &mut in_cone, &mut expandable, &mut stack);
            add(tr.drain, &mut in_cone, &mut expandable, &mut stack);
        }
    }
    in_cone
}

/// The *observable region*: every node whose state can influence at
/// least one of `outputs`, computed as the backward closure under the
/// same interaction edges as [`interaction_cone`] — the predecessors of
/// a node are its channel neighbours and the gates of its incident
/// channel transistors. A fault all of whose effect terminals lie
/// outside this region can never change an observed value and is
/// therefore undetectable by any stimulus.
///
/// As in the forward closure, inputs enter the region but are not
/// expanded through.
#[must_use]
pub fn observable_region(net: &Network, outputs: &[NodeId]) -> Vec<bool> {
    let mut marked = vec![false; net.num_nodes()];
    let mut stack: Vec<NodeId> = Vec::new();
    for &o in outputs {
        if !marked[o.index()] {
            marked[o.index()] = true;
            stack.push(o);
        }
    }
    while let Some(v) = stack.pop() {
        for &t in net.channel_transistors(v) {
            let tr = net.transistor(t);
            for p in [tr.other_end(v), tr.gate] {
                if !marked[p.index()] {
                    marked[p.index()] = true;
                    if !net.node(p).is_input() {
                        stack.push(p);
                    }
                }
            }
        }
    }
    marked
}

/// The channel-connected component of `start`: every storage node
/// reachable from it through channel edges alone, with input nodes as
/// boundaries (they terminate the walk and are not included). This is
/// the unit of charge sharing — a vicinity can only ever be a subset of
/// one channel-connected component plus its boundary inputs.
///
/// Returns the component in ascending node order; `start` itself is
/// included when it is a storage node, and the result is empty when
/// `start` is an input.
#[must_use]
pub fn channel_component(net: &Network, start: NodeId) -> Vec<NodeId> {
    if net.node(start).is_input() {
        return Vec::new();
    }
    let mut seen = vec![false; net.num_nodes()];
    seen[start.index()] = true;
    let mut stack = vec![start];
    let mut component = vec![start];
    while let Some(v) = stack.pop() {
        for &t in net.channel_transistors(v) {
            let other = net.transistor(t).other_end(v);
            if !seen[other.index()] && !net.node(other).is_input() {
                seen[other.index()] = true;
                component.push(other);
                stack.push(other);
            }
        }
    }
    component.sort_unstable();
    component
}

/// All transistors gated by `n` whose conduction actually depends on
/// the gate state — i.e. the non-depletion devices. Depletion (`d`)
/// transistors conduct unconditionally, so a node that gates only
/// depletion devices has no gate-side influence at all.
pub fn gate_relevant_transistors<'a>(
    net: &'a Network,
    n: NodeId,
) -> impl Iterator<Item = TransistorId> + 'a {
    net.gated_transistors(n)
        .iter()
        .copied()
        .filter(move |&t| net.transistor(t).ttype != crate::ttype::TransistorType::D)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::Logic;
    use crate::strength::{Drive, Size};
    use crate::ttype::TransistorType;

    /// Two independent nMOS inverters: A→OA, B→OB.
    fn two_inverters() -> (Network, [NodeId; 4]) {
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::L);
        let b = net.add_input("B", Logic::L);
        let oa = net.add_storage("OA", Size::S1);
        let ob = net.add_storage("OB", Size::S1);
        for (inp, out) in [(a, oa), (b, ob)] {
            net.add_transistor(TransistorType::D, Drive::D1, out, vdd, out);
            net.add_transistor(TransistorType::N, Drive::D2, inp, out, gnd);
        }
        (net, [a, b, oa, ob])
    }

    #[test]
    fn cone_does_not_cross_unrelated_inputs() {
        let (net, [a, b, oa, ob]) = two_inverters();
        let cone = interaction_cone(&net, &[oa]);
        assert!(cone[oa.index()] && cone[a.index()]);
        // The inverters share only Vdd/Gnd; inputs don't conduct
        // influence, so OB and B stay out of OA's cone.
        assert!(!cone[ob.index()] && !cone[b.index()]);
    }

    #[test]
    fn cone_follows_gate_fanout() {
        // OA additionally gates a pulldown on OB: now OB is downstream.
        let (mut net, [_, _, oa, ob]) = two_inverters();
        let gnd = net.find_node("Gnd").expect("exists");
        net.add_transistor(TransistorType::N, Drive::D2, oa, ob, gnd);
        let cone = interaction_cone(&net, &[oa]);
        assert!(cone[ob.index()], "gate→endpoint edge reaches OB");
        // And backwards: OB's cone must include OA (endpoint→gate),
        // because OA's changes re-trigger OB's vicinity solves.
        let back = interaction_cone(&net, &[ob]);
        assert!(back[oa.index()], "endpoint→gate edge reaches OA");
    }

    #[test]
    fn observable_region_stops_at_unobserved_islands() {
        let (net, [a, b, oa, ob]) = two_inverters();
        let region = observable_region(&net, &[oa]);
        assert!(region[oa.index()] && region[a.index()]);
        assert!(!region[ob.index()] && !region[b.index()]);
    }

    #[test]
    fn channel_component_bounded_by_inputs() {
        // nand-style series chain: OUT –a– MID –b– Gnd.
        let mut net = Network::new();
        let vdd = net.add_input("Vdd", Logic::H);
        let gnd = net.add_input("Gnd", Logic::L);
        let a = net.add_input("A", Logic::L);
        let b = net.add_input("B", Logic::L);
        let out = net.add_storage("OUT", Size::S1);
        let mid = net.add_storage("MID", Size::S1);
        net.add_transistor(TransistorType::D, Drive::D1, out, vdd, out);
        net.add_transistor(TransistorType::N, Drive::D2, a, out, mid);
        net.add_transistor(TransistorType::N, Drive::D2, b, mid, gnd);
        assert_eq!(channel_component(&net, out), vec![out, mid]);
        assert_eq!(channel_component(&net, mid), vec![out, mid]);
        assert!(channel_component(&net, gnd).is_empty(), "inputs: empty");
    }
}
