//! The ternary logic value domain.

use std::fmt;

/// A switch-level logic state: low, high, or indeterminate.
///
/// `X` represents an indeterminate voltage arising from an uninitialized
/// node, a short circuit, or improper charge sharing. In the information
/// ordering, `X` is *less defined* than `L` and `H`; [`Logic::lub`]
/// computes the least upper bound in the *uncertainty* direction
/// (combining conflicting signals yields `X`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Logic {
    /// Logic low (0 volts).
    L,
    /// Logic high (supply voltage).
    H,
    /// Indeterminate voltage.
    #[default]
    X,
}

impl Logic {
    /// All three states, in a fixed order (useful for exhaustive tests).
    pub const ALL: [Logic; 3] = [Logic::L, Logic::H, Logic::X];

    /// Converts a boolean to a definite logic level.
    ///
    /// ```
    /// use fmossim_netlist::Logic;
    /// assert_eq!(Logic::from_bool(true), Logic::H);
    /// assert_eq!(Logic::from_bool(false), Logic::L);
    /// ```
    #[inline]
    #[must_use]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Logic::H
        } else {
            Logic::L
        }
    }

    /// Returns `Some(true)` for `H`, `Some(false)` for `L`, `None` for `X`.
    #[inline]
    #[must_use]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::L => Some(false),
            Logic::H => Some(true),
            Logic::X => None,
        }
    }

    /// True iff the state is `L` or `H`.
    #[inline]
    #[must_use]
    pub fn is_definite(self) -> bool {
        self != Logic::X
    }

    /// Boolean negation extended to ternary logic (`X` stays `X`).
    ///
    /// ```
    /// use fmossim_netlist::Logic;
    /// assert_eq!(Logic::H.not(), Logic::L);
    /// assert_eq!(Logic::X.not(), Logic::X);
    /// ```
    #[inline]
    #[must_use]
    #[allow(clippy::should_implement_trait)] // `std::ops::Not` is also implemented
    pub fn not(self) -> Self {
        match self {
            Logic::L => Logic::H,
            Logic::H => Logic::L,
            Logic::X => Logic::X,
        }
    }

    /// Least upper bound in the uncertainty ordering: combining two
    /// signals of conflicting definite value yields `X`; `X` absorbs
    /// everything.
    ///
    /// ```
    /// use fmossim_netlist::Logic;
    /// assert_eq!(Logic::H.lub(Logic::H), Logic::H);
    /// assert_eq!(Logic::H.lub(Logic::L), Logic::X);
    /// assert_eq!(Logic::L.lub(Logic::X), Logic::X);
    /// ```
    #[inline]
    #[must_use]
    pub fn lub(self, other: Self) -> Self {
        if self == other {
            self
        } else {
            Logic::X
        }
    }

    /// Refinement check: `self` is consistent with (can resolve to)
    /// `definite`. `X` is consistent with every state; a definite state
    /// is consistent only with itself.
    ///
    /// Used by the ternary-monotonicity property tests: if an input is
    /// refined from `X` to a definite value, every node's new state must
    /// be consistent with its old state.
    #[inline]
    #[must_use]
    pub fn admits(self, definite: Self) -> bool {
        self == Logic::X || self == definite
    }

    /// The canonical single-character display used by the netlist format
    /// and trace dumps.
    #[inline]
    #[must_use]
    pub fn to_char(self) -> char {
        match self {
            Logic::L => '0',
            Logic::H => '1',
            Logic::X => 'X',
        }
    }

    /// Parses the canonical single-character form accepted by the
    /// netlist format (`0`, `1`, `X`/`x`).
    #[must_use]
    pub fn from_char(c: char) -> Option<Self> {
        match c {
            '0' => Some(Logic::L),
            '1' => Some(Logic::H),
            'X' | 'x' => Some(Logic::X),
            _ => None,
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl std::ops::Not for Logic {
    type Output = Logic;

    fn not(self) -> Logic {
        Logic::not(self)
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Self {
        Logic::from_bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_is_involution_on_definite() {
        assert_eq!(Logic::L.not().not(), Logic::L);
        assert_eq!(Logic::H.not().not(), Logic::H);
        assert_eq!(Logic::X.not(), Logic::X);
    }

    #[test]
    fn lub_is_commutative_and_idempotent() {
        for a in Logic::ALL {
            assert_eq!(a.lub(a), a);
            for b in Logic::ALL {
                assert_eq!(a.lub(b), b.lub(a));
            }
        }
    }

    #[test]
    fn lub_is_associative() {
        for a in Logic::ALL {
            for b in Logic::ALL {
                for c in Logic::ALL {
                    assert_eq!(a.lub(b).lub(c), a.lub(b.lub(c)));
                }
            }
        }
    }

    #[test]
    fn x_absorbs() {
        for a in Logic::ALL {
            assert_eq!(a.lub(Logic::X), Logic::X);
        }
    }

    #[test]
    fn bool_roundtrip() {
        assert_eq!(Logic::from_bool(true).to_bool(), Some(true));
        assert_eq!(Logic::from_bool(false).to_bool(), Some(false));
        assert_eq!(Logic::X.to_bool(), None);
    }

    #[test]
    fn char_roundtrip() {
        for a in Logic::ALL {
            assert_eq!(Logic::from_char(a.to_char()), Some(a));
        }
        assert_eq!(Logic::from_char('z'), None);
        assert_eq!(Logic::from_char('x'), Some(Logic::X));
    }

    #[test]
    fn admits_rules() {
        assert!(Logic::X.admits(Logic::L));
        assert!(Logic::X.admits(Logic::H));
        assert!(Logic::L.admits(Logic::L));
        assert!(!Logic::L.admits(Logic::H));
    }

    #[test]
    fn default_is_x() {
        assert_eq!(Logic::default(), Logic::X);
    }
}
