//! Hierarchical metrics for the FMOSSIM stack: typed counter / gauge /
//! histogram handles behind a [`Registry`], with Prometheus text-format
//! and JSON exporters. Dependency-free, consistent with the workspace's
//! offline-shims policy.
//!
//! The paper's entire contribution is *performance evaluation* — events
//! per pattern, fraction of time in the good machine, fault-list
//! activity — so the simulator layers publish their activity here:
//! `switch.*` (settles, vicinity solves, solve-group sizes),
//! `core.*` (events scheduled, detections, live faults, tape replay),
//! `par.*` (per-shard seconds, queue wait, merge time) and
//! `campaign.*` (batches, re-plan time, moved faults). Metric names are
//! dot-hierarchical; the Prometheus exporter mangles them to
//! `fmossim_switch_settles`-style identifiers.
//!
//! # Null registries
//!
//! A [`Registry`] is either *active* ([`Registry::new`]) or *null*
//! ([`Registry::null`], also [`Registry::default`]). Handles minted
//! from a null registry are no-ops whose hot-path cost is one branch on
//! an `Option` — instrumented code never checks whether telemetry is
//! enabled, it just calls [`Counter::inc`]. Handles from an active
//! registry update shared atomics, so they are safe (and cheap) to use
//! from worker threads.
//!
//! # Per-shard registries
//!
//! Fault-parallel drivers give every shard its own [`Registry::fork`]
//! and fold the children back with [`Registry::merge`] at report time:
//! counters and histograms add, gauges accumulate by summation (the
//! exported gauges are additive quantities — seconds, moved faults —
//! or last-write ratios where one writer exists).
//!
//! # Example
//!
//! ```
//! use fmossim_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let settles = registry.counter("switch.settles");
//! let sizes = registry.histogram("switch.solve_group.size");
//! settles.inc();
//! sizes.observe(3);
//! let text = registry.to_prometheus();
//! assert!(text.contains("# TYPE fmossim_switch_settles counter"));
//! assert!(text.contains("fmossim_switch_settles 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Upper bucket bounds of every [`Histogram`]: powers of two from 1 to
/// 2^15, plus the implicit `+Inf` overflow bucket. Fixed bounds keep
/// merged histograms well-defined without per-metric configuration.
pub const BUCKET_BOUNDS: [u64; 16] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768,
];

#[derive(Debug, Default)]
struct HistogramCell {
    /// Per-bucket (not cumulative) observation counts;
    /// `buckets[BUCKET_BOUNDS.len()]` is the `+Inf` overflow bucket.
    buckets: [AtomicU64; BUCKET_BOUNDS.len() + 1],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A monotonically increasing event count.
///
/// Cloning shares the underlying cell; a defaulted handle is a no-op
/// (same as one minted from a null [`Registry`]).
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count (0 for a no-op handle).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A floating-point quantity that can be set or accumulated — seconds
/// of work, live-fault levels, imbalance ratios.
///
/// Cloning shares the underlying cell; a defaulted handle is a no-op.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.0 {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `v` to the gauge (compare-and-swap loop; gauges are not on
    /// the per-event hot path).
    #[inline]
    pub fn add(&self, v: f64) {
        if let Some(cell) = &self.0 {
            let mut cur = cell.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + v).to_bits();
                match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// The current value (0.0 for a no-op handle).
    #[must_use]
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |cell| f64::from_bits(cell.load(Ordering::Relaxed)))
    }
}

/// A distribution of integer observations over the fixed
/// [`BUCKET_BOUNDS`] power-of-two buckets.
///
/// Cloning shares the underlying cell; a defaulted handle is a no-op.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCell>>);

impl Histogram {
    /// Records one observation of `v`.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(cell) = &self.0 {
            let slot = BUCKET_BOUNDS.partition_point(|&le| le < v);
            cell.buckets[slot].fetch_add(1, Ordering::Relaxed);
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// The number of observations (0 for a no-op handle).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.count.load(Ordering::Relaxed))
    }

    /// Whether observations land anywhere (`false` for a no-op handle).
    /// Hot loops that accumulate into a [`LocalHistogram`] check this
    /// once to skip the bucketing work entirely when telemetry is off.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Drains a [`LocalHistogram`] into this histogram: every non-empty
    /// local bucket becomes one atomic add (plus count and sum), and the
    /// local accumulator is reset. With a no-op handle the local data is
    /// discarded — the accumulator is still reset so batching code needs
    /// no active/null branch.
    pub fn merge_local(&self, local: &mut LocalHistogram) {
        if let Some(cell) = &self.0 {
            if local.count > 0 {
                for (slot, &n) in local.buckets.iter().enumerate() {
                    if n > 0 {
                        cell.buckets[slot].fetch_add(n, Ordering::Relaxed);
                    }
                }
                cell.count.fetch_add(local.count, Ordering::Relaxed);
                cell.sum.fetch_add(local.sum, Ordering::Relaxed);
            }
        }
        *local = LocalHistogram::default();
    }
}

/// A thread-local, atomics-free histogram accumulator over the same
/// [`BUCKET_BOUNDS`] as [`Histogram`].
///
/// Per-event shared-atomic traffic is the dominant telemetry cost on
/// hot paths (the switch engine observes one solve-group size per
/// vicinity — hundreds of thousands per campaign). Instrumented code
/// that owns its metrics exclusively observes into a `LocalHistogram`
/// (three plain integer updates) and folds the batch into the shared
/// [`Histogram`] at a coarse boundary via [`Histogram::merge_local`];
/// the merged result is identical to observing each value directly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LocalHistogram {
    buckets: [u64; BUCKET_BOUNDS.len() + 1],
    count: u64,
    sum: u64,
}

impl LocalHistogram {
    /// Records one observation of `v` (no atomics).
    #[inline]
    pub fn observe(&mut self, v: u64) {
        let slot = BUCKET_BOUNDS.partition_point(|&le| le < v);
        self.buckets[slot] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// The number of observations accumulated since the last merge.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[derive(Debug)]
enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCell>),
}

#[derive(Debug, Default)]
struct Inner {
    slots: Mutex<BTreeMap<String, Slot>>,
}

/// A hierarchical metric registry.
///
/// Minting a handle ([`Registry::counter`] / [`gauge`](Registry::gauge)
/// / [`histogram`](Registry::histogram)) takes a lock once; the handle
/// itself is lock-free afterwards. Instrumented code should mint
/// handles at attach time, not per event. A *null* registry
/// ([`Registry::null`], the [`Default`]) mints no-op handles — the
/// compiled-in "telemetry off" path.
///
/// `Registry` is `Clone` (clones share the same metric store) and
/// `Send + Sync`.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Registry {
    /// An active registry.
    #[must_use]
    pub fn new() -> Self {
        Registry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A null registry: every minted handle is a no-op. This is also
    /// the [`Default`].
    #[must_use]
    pub fn null() -> Self {
        Registry { inner: None }
    }

    /// Whether this registry records anything.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// A new *empty* registry of the same kind: active if `self` is
    /// active, null otherwise. Fault-parallel drivers fork one child
    /// per shard and [`merge`](Registry::merge) them back.
    #[must_use]
    pub fn fork(&self) -> Registry {
        if self.is_active() {
            Registry::new()
        } else {
            Registry::null()
        }
    }

    /// Mints (or re-fetches) the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter(None);
        };
        let mut slots = inner.slots.lock().expect("registry lock");
        let slot = slots
            .entry(name.to_owned())
            .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))));
        match slot {
            Slot::Counter(cell) => Counter(Some(Arc::clone(cell))),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// Mints (or re-fetches) the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge(None);
        };
        let mut slots = inner.slots.lock().expect("registry lock");
        let slot = slots
            .entry(name.to_owned())
            .or_insert_with(|| Slot::Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))));
        match slot {
            Slot::Gauge(cell) => Gauge(Some(Arc::clone(cell))),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// Mints (or re-fetches) the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram(None);
        };
        let mut slots = inner.slots.lock().expect("registry lock");
        let slot = slots
            .entry(name.to_owned())
            .or_insert_with(|| Slot::Histogram(Arc::new(HistogramCell::default())));
        match slot {
            Slot::Histogram(cell) => Histogram(Some(Arc::clone(cell))),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// A point-in-time copy of every metric. Null registries snapshot
    /// to the empty (default) snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let Some(inner) = &self.inner else {
            return snap;
        };
        let slots = inner.slots.lock().expect("registry lock");
        for (name, slot) in slots.iter() {
            match slot {
                Slot::Counter(cell) => {
                    snap.counters
                        .insert(name.clone(), cell.load(Ordering::Relaxed));
                }
                Slot::Gauge(cell) => {
                    snap.gauges
                        .insert(name.clone(), f64::from_bits(cell.load(Ordering::Relaxed)));
                }
                Slot::Histogram(cell) => {
                    snap.histograms.insert(
                        name.clone(),
                        HistogramSnapshot {
                            buckets: cell
                                .buckets
                                .iter()
                                .map(|b| b.load(Ordering::Relaxed))
                                .collect(),
                            count: cell.count.load(Ordering::Relaxed),
                            sum: cell.sum.load(Ordering::Relaxed),
                        },
                    );
                }
            }
        }
        snap
    }

    /// Folds another registry's current values into this one:
    /// counters, histograms and gauges all add. No-op when either side
    /// is null.
    pub fn merge(&self, other: &Registry) {
        self.merge_snapshot(&other.snapshot());
    }

    /// Folds a snapshot's values into this registry (the merge
    /// primitive [`Registry::merge`] is built on). No-op when `self`
    /// is null.
    pub fn merge_snapshot(&self, snap: &MetricsSnapshot) {
        if !self.is_active() {
            return;
        }
        for (name, &v) in &snap.counters {
            self.counter(name).add(v);
        }
        for (name, &v) in &snap.gauges {
            self.gauge(name).add(v);
        }
        for (name, hist) in &snap.histograms {
            let handle = self.histogram(name);
            if let Some(cell) = &handle.0 {
                for (slot, &n) in hist.buckets.iter().enumerate() {
                    if slot < cell.buckets.len() {
                        cell.buckets[slot].fetch_add(n, Ordering::Relaxed);
                    }
                }
                cell.count.fetch_add(hist.count, Ordering::Relaxed);
                cell.sum.fetch_add(hist.sum, Ordering::Relaxed);
            }
        }
    }

    /// Prometheus text exposition of the current values
    /// ([`MetricsSnapshot::to_prometheus`]).
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }

    /// JSON rendering of the current values
    /// ([`MetricsSnapshot::to_json`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// One histogram's state inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (not cumulative) counts; the entry after the last
    /// [`BUCKET_BOUNDS`] bound is the `+Inf` overflow bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// A point-in-time copy of a [`Registry`]: plain sorted maps, suitable
/// for embedding in a report, comparing in tests, or exporting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by hierarchical name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by hierarchical name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by hierarchical name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Mangles a hierarchical metric name into a Prometheus identifier:
/// `switch.solve_group.size` → `fmossim_switch_solve_group_size`.
#[must_use]
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("fmossim_");
    for ch in name.chars() {
        match ch {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' => out.push(ch),
            _ => out.push('_'),
        }
    }
    out
}

/// Formats an f64 for Prometheus/JSON output: finite values via Rust's
/// shortest round-trip `Display`, non-finite clamped to 0 (neither
/// format transports NaN).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".into()
    }
}

impl MetricsSnapshot {
    /// Whether no metric was ever registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// one `# TYPE` line per metric, histograms expanded to cumulative
    /// `_bucket{le="..."}` series plus `_sum` and `_count`.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, &v) in &self.counters {
            let p = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {p} counter");
            let _ = writeln!(out, "{p} {v}");
        }
        for (name, &v) in &self.gauges {
            let p = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {p} gauge");
            let _ = writeln!(out, "{p} {}", fmt_f64(v));
        }
        for (name, hist) in &self.histograms {
            let p = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {p} histogram");
            let mut cumulative = 0u64;
            for (slot, &le) in BUCKET_BOUNDS.iter().enumerate() {
                cumulative += hist.buckets.get(slot).copied().unwrap_or(0);
                let _ = writeln!(out, "{p}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{p}_bucket{{le=\"+Inf\"}} {}", hist.count);
            let _ = writeln!(out, "{p}_sum {}", hist.sum);
            let _ = writeln!(out, "{p}_count {}", hist.count);
        }
        out
    }

    /// Renders the snapshot as compact JSON with sorted keys:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`. The
    /// rendering is deterministic for a given snapshot.
    #[must_use]
    pub fn to_json(&self) -> String {
        fn quote(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        let mut out = String::from("{\"counters\":{");
        out.push_str(
            &self
                .counters
                .iter()
                .map(|(k, v)| format!("{}:{v}", quote(k)))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str("},\"gauges\":{");
        out.push_str(
            &self
                .gauges
                .iter()
                .map(|(k, &v)| format!("{}:{}", quote(k), fmt_f64(v)))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str("},\"histograms\":{");
        out.push_str(
            &self
                .histograms
                .iter()
                .map(|(k, h)| {
                    format!(
                        "{}:{{\"buckets\":[{}],\"count\":{},\"sum\":{}}}",
                        quote(k),
                        h.buckets
                            .iter()
                            .map(u64::to_string)
                            .collect::<Vec<_>>()
                            .join(","),
                        h.count,
                        h.sum
                    )
                })
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str("}}");
        out
    }

    /// Lints a Prometheus text-format document: every `# TYPE` line
    /// well-formed with a known type, no duplicate `# TYPE` names, and
    /// every sample line `name{labels} value` parseable with its base
    /// name declared by a preceding `# TYPE`.
    ///
    /// # Errors
    ///
    /// Returns `(line_number, message)` for the first violation.
    pub fn lint_prometheus(text: &str) -> Result<(), (usize, String)> {
        fn valid_name(s: &str) -> bool {
            !s.is_empty()
                && s.chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                && s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        }
        let mut declared: BTreeMap<&str, &str> = BTreeMap::new();
        for (idx, line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next())
                else {
                    return Err((lineno, format!("malformed TYPE line: `{line}`")));
                };
                if !valid_name(name) {
                    return Err((lineno, format!("invalid metric name `{name}`")));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err((lineno, format!("unknown metric type `{kind}`")));
                }
                if declared.insert(name, kind).is_some() {
                    return Err((lineno, format!("duplicate TYPE for `{name}`")));
                }
                continue;
            }
            if line.starts_with('#') {
                continue; // other comments (HELP etc.) are free-form
            }
            let (series, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| (lineno, format!("sample without value: `{line}`")))?;
            if value.parse::<f64>().is_err() {
                return Err((lineno, format!("unparseable sample value `{value}`")));
            }
            let name = series.split('{').next().unwrap_or(series);
            if !valid_name(name) {
                return Err((lineno, format!("invalid sample name `{name}`")));
            }
            if series.contains('{') && !series.ends_with('}') {
                return Err((lineno, format!("unterminated label set: `{series}`")));
            }
            let base = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .filter(|base| declared.contains_key(base))
                .unwrap_or(name);
            if !declared.contains_key(base) {
                return Err((lineno, format!("sample `{name}` has no TYPE declaration")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_registry_is_free_and_silent() {
        let registry = Registry::null();
        assert!(!registry.is_active());
        let c = registry.counter("switch.settles");
        let g = registry.gauge("par.shard.seconds");
        let h = registry.histogram("switch.solve_group.size");
        c.add(5);
        g.add(1.5);
        h.observe(7);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        assert!(registry.snapshot().is_empty());
        assert_eq!(registry.to_prometheus(), "");
    }

    #[test]
    fn local_histogram_merges_like_direct_observation() {
        let direct = Registry::new();
        let batched = Registry::new();
        let dh = direct.histogram("switch.solve_group.size");
        let bh = batched.histogram("switch.solve_group.size");
        let mut local = LocalHistogram::default();
        let values = [0, 1, 2, 3, 3, 64, 40_000, 40_000];
        for &v in &values {
            dh.observe(v);
            local.observe(v);
        }
        assert_eq!(local.count(), values.len() as u64);
        bh.merge_local(&mut local);
        assert_eq!(local, LocalHistogram::default());
        assert_eq!(direct.snapshot(), batched.snapshot());
        // A second, empty merge changes nothing.
        bh.merge_local(&mut local);
        assert_eq!(direct.snapshot(), batched.snapshot());
        // A null handle discards but still resets.
        let null = Histogram::default();
        assert!(!null.is_active());
        local.observe(9);
        null.merge_local(&mut local);
        assert_eq!(local, LocalHistogram::default());
    }

    #[test]
    fn handles_share_cells_and_accumulate() {
        let registry = Registry::new();
        let a = registry.counter("core.events_scheduled");
        let b = registry.counter("core.events_scheduled");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        let g = registry.gauge("campaign.replan.seconds");
        g.add(0.25);
        g.add(0.25);
        assert_eq!(g.get(), 0.5);
        g.set(2.0);
        assert_eq!(g.get(), 2.0);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let registry = Registry::new();
        let _ = registry.gauge("x");
        let _ = registry.counter("x");
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let registry = Registry::new();
        let h = registry.histogram("switch.solve_group.size");
        h.observe(1); // le=1
        h.observe(2); // le=2
        h.observe(3); // le=4
        h.observe(40_000); // +Inf
        let snap = registry.snapshot();
        let hist = &snap.histograms["switch.solve_group.size"];
        assert_eq!(hist.count, 4);
        assert_eq!(hist.sum, 40_006);
        assert_eq!(hist.buckets[0], 1);
        assert_eq!(hist.buckets[1], 1);
        assert_eq!(hist.buckets[2], 1);
        assert_eq!(hist.buckets[BUCKET_BOUNDS.len()], 1);
    }

    #[test]
    fn fork_and_merge_sums_everything() {
        let parent = Registry::new();
        parent.counter("core.detections").add(1);
        let child = parent.fork();
        assert!(child.is_active());
        child.counter("core.detections").add(2);
        child.gauge("par.shard.seconds").add(0.5);
        child.histogram("switch.solve_group.size").observe(4);
        parent.merge(&child);
        let snap = parent.snapshot();
        assert_eq!(snap.counters["core.detections"], 3);
        assert_eq!(snap.gauges["par.shard.seconds"], 0.5);
        assert_eq!(snap.histograms["switch.solve_group.size"].count, 1);
        // Null parents fork null children and ignore merges.
        let null = Registry::null();
        assert!(!null.fork().is_active());
        null.merge(&parent);
        assert!(null.snapshot().is_empty());
    }

    #[test]
    fn prometheus_export_lints_clean() {
        let registry = Registry::new();
        registry.counter("switch.settles").add(42);
        registry.gauge("par.shard.seconds").set(1.25);
        let h = registry.histogram("switch.solve_group.size");
        h.observe(2);
        h.observe(9);
        let text = registry.to_prometheus();
        MetricsSnapshot::lint_prometheus(&text).expect("own export lints clean");
        assert!(text.contains("# TYPE fmossim_switch_settles counter"));
        assert!(text.contains("fmossim_par_shard_seconds 1.25"));
        assert!(text.contains("fmossim_switch_solve_group_size_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("fmossim_switch_solve_group_size_sum 11"));
    }

    #[test]
    fn linter_rejects_malformed_documents() {
        let cases = [
            "# TYPE fmossim_x counter\n# TYPE fmossim_x counter\nfmossim_x 1\n",
            "# TYPE fmossim_x wombat\n",
            "fmossim_y 1\n",
            "# TYPE fmossim_x counter\nfmossim_x notanumber\n",
            "# TYPE 9bad counter\n",
        ];
        for text in cases {
            assert!(
                MetricsSnapshot::lint_prometheus(text).is_err(),
                "should reject: {text:?}"
            );
        }
    }

    #[test]
    fn json_export_is_deterministic() {
        let registry = Registry::new();
        registry.counter("b.two").add(2);
        registry.counter("a.one").add(1);
        registry.gauge("g").set(0.5);
        let json = registry.to_json();
        assert_eq!(json, registry.to_json());
        assert!(json.starts_with("{\"counters\":{\"a.one\":1,\"b.two\":2}"));
        assert!(json.contains("\"gauges\":{\"g\":0.5}"));
    }

    #[test]
    fn snapshot_merge_matches_registry_merge() {
        let a = Registry::new();
        a.counter("c").add(1);
        let snap = a.snapshot();
        let b = Registry::new();
        b.merge_snapshot(&snap);
        b.merge_snapshot(&snap);
        assert_eq!(b.snapshot().counters["c"], 2);
    }
}
