//! A synchronous two-phase dynamic shift register — the canonical
//! sequential nMOS structure (a chain of master/slave dynamic latches)
//! and the zoo's "pure pipeline" observability profile: every stage
//! output is a tap, so a fault's effect surfaces a bounded number of
//! clock cycles after it is excited.

use crate::cells::Cells;
use fmossim_netlist::{Logic, Network, NetworkStats, NodeId};

/// Pin map of a [`ShiftRegister`].
#[derive(Clone, Debug)]
pub struct ShiftRegisterIo {
    /// Master-latch clock (data advances into the masters while high).
    pub phi1: NodeId,
    /// Slave-latch clock (data advances to the stage outputs while
    /// high). Must not overlap `phi1`.
    pub phi2: NodeId,
    /// Serial data input.
    pub sin: NodeId,
    /// Restored stage outputs, stage 0 (nearest `sin`) first. The last
    /// tap is the serial output.
    pub taps: Vec<NodeId>,
}

/// An N-stage dynamic shift register.
///
/// Per stage: a PHI1-gated master latch, an inverter pair restoring
/// the stored charge, a PHI2-gated slave latch, and a second inverter
/// pair producing the restored stage output that feeds the next
/// master. One full `PHI1↑ PHI1↓ PHI2↑ PHI2↓` cycle advances the
/// register by one stage.
#[derive(Clone, Debug)]
pub struct ShiftRegister {
    net: Network,
    stages: usize,
    io: ShiftRegisterIo,
}

impl ShiftRegister {
    /// Builds an `stages`-deep shift register (`stages >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `stages == 0`.
    #[must_use]
    pub fn new(stages: usize) -> Self {
        assert!(stages >= 1, "shift register needs at least one stage");
        let mut net = Network::new();
        let mut c = Cells::new(&mut net);
        let phi1 = c.input("PHI1", Logic::L);
        let phi2 = c.input("PHI2", Logic::L);
        let sin = c.input("SIN", Logic::L);

        let mut d = sin;
        let mut taps = Vec::with_capacity(stages);
        for k in 0..stages {
            let m = c.dynamic_latch(&format!("SR{k}.m"), phi1, d);
            let mb = c.inv(&format!("SR{k}.mb"), m);
            let mv = c.inv(&format!("SR{k}.mv"), mb);
            let s = c.dynamic_latch(&format!("SR{k}.s"), phi2, mv);
            let qb = c.inv(&format!("SR{k}.qb"), s);
            let q = c.inv(&format!("Q{k}"), qb);
            taps.push(q);
            d = q;
        }
        let io = ShiftRegisterIo {
            phi1,
            phi2,
            sin,
            taps,
        };
        ShiftRegister { net, stages, io }
    }

    /// The generated network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The pin map.
    #[must_use]
    pub fn io(&self) -> &ShiftRegisterIo {
        &self.io
    }

    /// Number of stages.
    #[must_use]
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// All observable outputs: every stage tap, stage 0 first.
    #[must_use]
    pub fn observed_outputs(&self) -> &[NodeId] {
        &self.io.taps
    }

    /// Summary statistics.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        NetworkStats::of(&self.net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_switch::LogicSim;

    /// One full clock cycle with `bit` on the serial input.
    fn cycle(sim: &mut LogicSim<'_>, sr: &ShiftRegister, bit: bool) {
        let io = sr.io();
        sim.set_input(io.sin, Logic::from_bool(bit));
        sim.set_input(io.phi1, Logic::H);
        sim.settle();
        sim.set_input(io.phi1, Logic::L);
        sim.settle();
        sim.set_input(io.phi2, Logic::H);
        sim.settle();
        sim.set_input(io.phi2, Logic::L);
        sim.settle();
    }

    fn taps(sim: &LogicSim<'_>, sr: &ShiftRegister) -> Vec<Logic> {
        sr.io().taps.iter().map(|&t| sim.get(t)).collect()
    }

    #[test]
    fn bits_advance_one_stage_per_cycle() {
        let sr = ShiftRegister::new(4);
        let mut sim = LogicSim::new(sr.network());
        sim.settle();
        let bits = [true, false, true, true];
        for &b in &bits {
            cycle(&mut sim, &sr, b);
        }
        // After 4 cycles the first bit sits in the last stage.
        let got = taps(&sim, &sr);
        let want: Vec<Logic> = bits.iter().rev().map(|&b| Logic::from_bool(b)).collect();
        assert_eq!(got, want, "taps hold the reversed input window");
    }

    #[test]
    fn unclocked_register_holds_x() {
        let sr = ShiftRegister::new(3);
        let mut sim = LogicSim::new(sr.network());
        sim.settle();
        assert!(
            taps(&sim, &sr).iter().all(|&v| v == Logic::X),
            "no clock, no definite state"
        );
    }

    #[test]
    fn deep_register_flushes_completely() {
        let sr = ShiftRegister::new(8);
        let mut sim = LogicSim::new(sr.network());
        sim.settle();
        for _ in 0..8 {
            cycle(&mut sim, &sr, true);
        }
        assert!(taps(&sim, &sr).iter().all(|&v| v == Logic::H));
        for _ in 0..8 {
            cycle(&mut sim, &sr, false);
        }
        assert!(taps(&sim, &sr).iter().all(|&v| v == Logic::L));
    }

    #[test]
    fn stats_scale_linearly() {
        let s2 = ShiftRegister::new(2).stats();
        let s8 = ShiftRegister::new(8).stats();
        assert!(s8.transistors > 3 * s2.transistors);
        assert!(s8.transistors < 5 * s2.transistors);
        assert_eq!(ShiftRegister::new(5).observed_outputs().len(), 5);
    }
}
