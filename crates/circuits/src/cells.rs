//! An nMOS cell library over a [`Network`] under construction.
//!
//! All gates are ratioed: a weak ([`Drive::D1`]) depletion pull-up
//! against strong ([`Drive::D2`]) enhancement pull-downs, exactly the
//! style the paper's network model section describes ("most nMOS
//! circuits require only two strengths, with pull-up loads assigned a
//! weaker strength than all other transistors").

use fmossim_netlist::{Drive, Logic, Network, NodeId, Size, TransistorType};

/// A builder handle for composing nMOS cells onto a network.
///
/// Keeps the supply rails and hands out named subcircuits. Node names
/// are taken verbatim from the caller (prefix them for uniqueness).
///
/// # Example
///
/// ```
/// use fmossim_netlist::{Network, Logic};
/// use fmossim_circuits::Cells;
/// use fmossim_switch::LogicSim;
///
/// let mut net = Network::new();
/// let mut cells = Cells::new(&mut net);
/// let a = cells.input("A", Logic::H);
/// let out = cells.inv("OUT", a);
/// let mut sim = LogicSim::new(&net);
/// sim.settle();
/// assert_eq!(sim.get(out), Logic::L);
/// ```
#[derive(Debug)]
pub struct Cells<'a> {
    net: &'a mut Network,
    vdd: NodeId,
    gnd: NodeId,
}

impl<'a> Cells<'a> {
    /// Wraps a network, creating the `Vdd`/`Gnd` rails if they do not
    /// exist yet.
    pub fn new(net: &'a mut Network) -> Self {
        let vdd = net
            .find_node("Vdd")
            .unwrap_or_else(|| net.add_input("Vdd", Logic::H));
        let gnd = net
            .find_node("Gnd")
            .unwrap_or_else(|| net.add_input("Gnd", Logic::L));
        Cells { net, vdd, gnd }
    }

    /// The positive supply rail.
    #[must_use]
    pub fn vdd(&self) -> NodeId {
        self.vdd
    }

    /// The ground rail.
    #[must_use]
    pub fn gnd(&self) -> NodeId {
        self.gnd
    }

    /// The network under construction.
    #[must_use]
    pub fn network(&self) -> &Network {
        self.net
    }

    /// Adds an input node.
    pub fn input(&mut self, name: &str, default: Logic) -> NodeId {
        self.net.add_input(name, default)
    }

    /// Adds an ordinary (κ1) storage node.
    pub fn node(&mut self, name: &str) -> NodeId {
        self.net.add_storage(name, Size::S1)
    }

    /// Adds a high-capacitance (κ2) bus node.
    pub fn bus(&mut self, name: &str) -> NodeId {
        self.net.add_storage(name, Size::S2)
    }

    /// Attaches a depletion pull-up load to `node` (gate tied to the
    /// node itself, the standard nMOS load connection).
    pub fn pullup(&mut self, node: NodeId) {
        self.net
            .add_transistor(TransistorType::D, Drive::D1, node, self.vdd, node);
    }

    /// Ratioed inverter: `out = NOT a`.
    pub fn inv(&mut self, name: &str, a: NodeId) -> NodeId {
        let out = self.node(name);
        self.pullup(out);
        self.net
            .add_transistor(TransistorType::N, Drive::D2, a, out, self.gnd);
        out
    }

    /// Two ratioed inverters: `out = a` (a non-inverting buffer).
    pub fn buf(&mut self, name: &str, a: NodeId) -> NodeId {
        let mid = self.inv(&format!("{name}.n"), a);
        self.inv(name, mid)
    }

    /// Ratioed inverter driving an *existing* node: `out = NOT a`.
    ///
    /// The ordinary [`Cells::inv`] creates its output node; this
    /// variant attaches the load and pull-down to a node the caller
    /// already owns — the cell that closes feedback loops (a counter
    /// bit's slave output is consumed by the toggle logic *above* the
    /// point where its inverter can be built).
    pub fn inv_into(&mut self, out: NodeId, a: NodeId) {
        self.pullup(out);
        self.net
            .add_transistor(TransistorType::N, Drive::D2, a, out, self.gnd);
    }

    /// Ratioed 2-input XOR via the NOR network the adder slices use:
    /// `x = NOR(NOR(a, b), AND(a, b))` (creates internal nodes
    /// `<name>.n` and `<name>.a*`).
    pub fn xor2(&mut self, name: &str, a: NodeId, b: NodeId) -> NodeId {
        let nab = self.nor(&format!("{name}.n"), &[a, b]);
        let aab = self.and2(&format!("{name}.a"), a, b);
        self.nor(name, &[nab, aab])
    }

    /// Ratioed 2-input NAND: `out = NOT (a AND b)` via a series
    /// pull-down stack (creates one internal node `<name>.m`).
    pub fn nand2(&mut self, name: &str, a: NodeId, b: NodeId) -> NodeId {
        let out = self.node(name);
        let mid = self.node(&format!("{name}.m"));
        self.pullup(out);
        self.net
            .add_transistor(TransistorType::N, Drive::D2, a, out, mid);
        self.net
            .add_transistor(TransistorType::N, Drive::D2, b, mid, self.gnd);
        out
    }

    /// Ratioed 2-input AND: NAND followed by an inverter.
    pub fn and2(&mut self, name: &str, a: NodeId, b: NodeId) -> NodeId {
        let n = self.nand2(&format!("{name}.nand"), a, b);
        self.inv(name, n)
    }

    /// Ratioed n-input NOR: parallel pull-downs under one load.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn nor(&mut self, name: &str, inputs: &[NodeId]) -> NodeId {
        assert!(!inputs.is_empty(), "NOR needs at least one input");
        let out = self.node(name);
        self.pullup(out);
        for &i in inputs {
            self.net
                .add_transistor(TransistorType::N, Drive::D2, i, out, self.gnd);
        }
        out
    }

    /// Bidirectional n-channel pass transistor between `a` and `b`.
    pub fn pass(&mut self, gate: NodeId, a: NodeId, b: NodeId) {
        self.net
            .add_transistor(TransistorType::N, Drive::D2, gate, a, b);
    }

    /// Precharge device: pulls `node` to Vdd while `clk` is high.
    pub fn precharge(&mut self, clk: NodeId, node: NodeId) {
        self.net
            .add_transistor(TransistorType::N, Drive::D2, clk, self.vdd, node);
    }

    /// Dynamic latch: a storage node that follows `d` while `clk` is
    /// high and holds its charge while `clk` is low.
    pub fn dynamic_latch(&mut self, name: &str, clk: NodeId, d: NodeId) -> NodeId {
        let store = self.node(name);
        self.pass(clk, d, store);
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_switch::LogicSim;

    fn check(
        build: impl FnOnce(&mut Cells<'_>) -> (Vec<NodeId>, NodeId),
        cases: &[(&[Logic], Logic)],
    ) {
        let mut net = Network::new();
        let (inputs, out) = {
            let mut cells = Cells::new(&mut net);
            build(&mut cells)
        };
        let mut sim = LogicSim::new(&net);
        sim.settle();
        for (vals, want) in cases {
            for (&n, &v) in inputs.iter().zip(vals.iter()) {
                sim.set_input(n, v);
            }
            sim.settle();
            assert_eq!(sim.get(out), *want, "inputs {vals:?}");
        }
    }

    use Logic::{H, L, X};

    #[test]
    fn inv_truth_table() {
        check(
            |c| {
                let a = c.input("A", L);
                let out = c.inv("OUT", a);
                (vec![a], out)
            },
            &[(&[L], H), (&[H], L), (&[X], X)],
        );
    }

    #[test]
    fn buf_truth_table() {
        check(
            |c| {
                let a = c.input("A", L);
                let out = c.buf("OUT", a);
                (vec![a], out)
            },
            &[(&[L], L), (&[H], H), (&[X], X)],
        );
    }

    #[test]
    fn nand2_truth_table() {
        check(
            |c| {
                let a = c.input("A", L);
                let b = c.input("B", L);
                let out = c.nand2("OUT", a, b);
                (vec![a, b], out)
            },
            &[
                (&[L, L], H),
                (&[L, H], H),
                (&[H, L], H),
                (&[H, H], L),
                (&[L, X], H),
                (&[H, X], X),
            ],
        );
    }

    #[test]
    fn and2_truth_table() {
        check(
            |c| {
                let a = c.input("A", L);
                let b = c.input("B", L);
                let out = c.and2("OUT", a, b);
                (vec![a, b], out)
            },
            &[(&[L, L], L), (&[H, L], L), (&[H, H], H), (&[L, H], L)],
        );
    }

    #[test]
    fn xor2_truth_table() {
        check(
            |c| {
                let a = c.input("A", L);
                let b = c.input("B", L);
                let out = c.xor2("OUT", a, b);
                (vec![a, b], out)
            },
            &[(&[L, L], L), (&[L, H], H), (&[H, L], H), (&[H, H], L)],
        );
    }

    #[test]
    fn inv_into_drives_existing_node() {
        let mut net = Network::new();
        let (a, out) = {
            let mut c = Cells::new(&mut net);
            let a = c.input("A", L);
            let out = c.node("OUT");
            c.inv_into(out, a);
            (a, out)
        };
        let mut sim = LogicSim::new(&net);
        sim.settle();
        assert_eq!(sim.get(out), H);
        sim.set_input(a, H);
        sim.settle();
        assert_eq!(sim.get(out), L);
    }

    #[test]
    fn nor3_truth_table() {
        check(
            |c| {
                let a = c.input("A", L);
                let b = c.input("B", L);
                let d = c.input("D", L);
                let out = c.nor("OUT", &[a, b, d]);
                (vec![a, b, d], out)
            },
            &[
                (&[L, L, L], H),
                (&[H, L, L], L),
                (&[L, H, L], L),
                (&[L, L, H], L),
                (&[H, H, H], L),
                (&[L, X, L], X),
                (&[H, X, L], L), // one definite pulldown dominates
            ],
        );
    }

    #[test]
    fn dynamic_latch_holds() {
        let mut net = Network::new();
        let (clk, d, q) = {
            let mut c = Cells::new(&mut net);
            let clk = c.input("CLK", H);
            let d = c.input("D", H);
            let q = c.dynamic_latch("Q", clk, d);
            (clk, d, q)
        };
        let mut sim = LogicSim::new(&net);
        sim.settle();
        assert_eq!(sim.get(q), H);
        sim.set_input(clk, L);
        sim.settle();
        sim.set_input(d, L);
        sim.settle();
        assert_eq!(sim.get(q), H, "latch holds across clock-low");
        sim.set_input(clk, H);
        sim.settle();
        assert_eq!(sim.get(q), L);
    }

    #[test]
    fn precharge_and_conditional_discharge() {
        let mut net = Network::new();
        let (clk, en, bus) = {
            let mut c = Cells::new(&mut net);
            let clk = c.input("CLK", L);
            let en = c.input("EN", L);
            let bus = c.bus("BUSN");
            c.precharge(clk, bus);
            let gnd = c.gnd();
            c.pass(en, bus, gnd);
            (clk, en, bus)
        };
        let mut sim = LogicSim::new(&net);
        sim.settle();
        // Precharge high.
        sim.set_input(clk, H);
        sim.settle();
        assert_eq!(sim.get(bus), H);
        sim.set_input(clk, L);
        sim.settle();
        assert_eq!(sim.get(bus), H, "bus holds precharge");
        // Conditionally discharge.
        sim.set_input(en, H);
        sim.settle();
        assert_eq!(sim.get(bus), L);
    }

    #[test]
    fn rails_are_reused() {
        let mut net = Network::new();
        {
            let mut c1 = Cells::new(&mut net);
            let a = c1.input("A", L);
            c1.inv("O1", a);
        }
        {
            let c2 = Cells::new(&mut net);
            assert_eq!(c2.vdd(), c2.network().find_node("Vdd").unwrap());
        }
        assert_eq!(
            net.nodes().filter(|(_, n)| n.name == "Vdd").count(),
            1,
            "only one Vdd rail"
        );
    }
}
