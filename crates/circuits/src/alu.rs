//! A small ALU datapath: the ripple-adder slice plus bitwise
//! AND/OR/XOR function blocks, merged per bit through a pass-gate
//! result multiplexer selected by a NOR-decoded opcode — the "small
//! section of an integrated circuit (such as an ALU)" workload the
//! paper's conclusion names, here with the pass-transistor routing
//! that the plain [`RippleAdder`](crate::RippleAdder) lacks.
//!
//! The mux makes the observability profile interesting for fault
//! grading: every function block computes on every pattern, but only
//! the selected block's result reaches an observed output, so faults
//! in a deselected block are excited yet unobservable until the
//! opcode changes — classic fault-masking structure.

use crate::adder::full_adder;
use crate::cells::Cells;
use crate::decoder::nor_decoder;
use fmossim_netlist::{Logic, Network, NetworkStats, NodeId};

/// The operations of an [`AluDatapath`], in opcode order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AluOp {
    /// `result = a + b + cin` (opcode 0).
    Add,
    /// `result = a AND b` (opcode 1).
    And,
    /// `result = a OR b` (opcode 2).
    Or,
    /// `result = a XOR b` (opcode 3).
    Xor,
}

/// All operations, in opcode order.
pub const ALU_OPS: [AluOp; 4] = [AluOp::Add, AluOp::And, AluOp::Or, AluOp::Xor];

impl AluOp {
    /// The two-bit opcode.
    #[must_use]
    pub fn code(self) -> usize {
        match self {
            AluOp::Add => 0,
            AluOp::And => 1,
            AluOp::Or => 2,
            AluOp::Xor => 3,
        }
    }

    /// The reference model: the masked result word (without the
    /// adder's carry, which [`AluDatapath::expected_cout`] models).
    #[must_use]
    pub fn eval(self, a: u64, b: u64, cin: bool, bits: usize) -> u64 {
        let mask = (1u64 << bits) - 1;
        (match self {
            AluOp::Add => a + b + u64::from(cin),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
        }) & mask
    }
}

/// Pin map of an [`AluDatapath`].
#[derive(Clone, Debug)]
pub struct AluIo {
    /// Operand A, LSB first.
    pub a: Vec<NodeId>,
    /// Operand B, LSB first.
    pub b: Vec<NodeId>,
    /// Carry input into the adder slice.
    pub cin: NodeId,
    /// Opcode bits, LSB first (see [`AluOp::code`]).
    pub op: [NodeId; 2],
    /// Muxed, buffered result bits, LSB first.
    pub result: Vec<NodeId>,
    /// The adder slice's carry out (computed on every pattern,
    /// whatever the opcode).
    pub cout: NodeId,
}

/// An N-bit four-function ALU datapath.
#[derive(Clone, Debug)]
pub struct AluDatapath {
    net: Network,
    bits: usize,
    io: AluIo,
}

impl AluDatapath {
    /// Builds a `bits`-wide ALU (`bits >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    #[must_use]
    pub fn new(bits: usize) -> Self {
        assert!(bits >= 1, "ALU needs at least one bit");
        let mut net = Network::new();
        let mut c = Cells::new(&mut net);
        let a: Vec<NodeId> = (0..bits)
            .map(|i| c.input(&format!("A{i}"), Logic::L))
            .collect();
        let b: Vec<NodeId> = (0..bits)
            .map(|i| c.input(&format!("B{i}"), Logic::L))
            .collect();
        let cin = c.input("CIN", Logic::L);
        let op0 = c.input("OP0", Logic::L);
        let op1 = c.input("OP1", Logic::L);

        // One-hot function select from the opcode, the same NOR
        // decoder the RAM's address path uses.
        let opb: Vec<NodeId> = [op0, op1]
            .iter()
            .enumerate()
            .map(|(i, &o)| c.inv(&format!("OPB{i}"), o))
            .collect();
        let opt: Vec<NodeId> = opb
            .iter()
            .enumerate()
            .map(|(i, &ob)| c.inv(&format!("OPT{i}"), ob))
            .collect();
        let sel = nor_decoder(&mut c, "SEL", &opt, &opb);

        let mut carry = cin;
        let mut result = Vec::with_capacity(bits);
        for i in 0..bits {
            let (sum, cout) = full_adder(&mut c, &format!("FA{i}"), a[i], b[i], carry);
            let nab = c.nor(&format!("F{i}.nor"), &[a[i], b[i]]);
            let or_b = c.inv(&format!("F{i}.or"), nab);
            let and_b = c.and2(&format!("F{i}.and"), a[i], b[i]);
            let xor_b = c.nor(&format!("F{i}.xor"), &[nab, and_b]);
            // Pass-gate result mux: exactly one select line drives the
            // result node; the buffer restores it for observation.
            // The weak depletion pull-up is a level restorer *and* a
            // race filter: a fault that deselects every pass gate
            // would otherwise leave `r` floating on stored charge,
            // whose value is event-schedule-dependent — with the
            // keeper the node always has a driver, so every backend
            // grades the mux identically (the zoo conformance suite
            // relies on this).
            let r = c.node(&format!("R{i}"));
            c.pullup(r);
            c.pass(sel[AluOp::Add.code()], sum, r);
            c.pass(sel[AluOp::And.code()], and_b, r);
            c.pass(sel[AluOp::Or.code()], or_b, r);
            c.pass(sel[AluOp::Xor.code()], xor_b, r);
            result.push(c.buf(&format!("RES{i}"), r));
            carry = cout;
        }

        let io = AluIo {
            a,
            b,
            cin,
            op: [op0, op1],
            result,
            cout: carry,
        };
        AluDatapath { net, bits, io }
    }

    /// The generated network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The pin map.
    #[must_use]
    pub fn io(&self) -> &AluIo {
        &self.io
    }

    /// Operand width.
    #[must_use]
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// All observable outputs: the muxed result bits then the adder's
    /// carry out.
    #[must_use]
    pub fn observed_outputs(&self) -> Vec<NodeId> {
        let mut v = self.io.result.clone();
        v.push(self.io.cout);
        v
    }

    /// Input assignments encoding `op(a, b)` with carry-in `cin`.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit in the datapath width.
    #[must_use]
    pub fn operand_assignments(
        &self,
        op: AluOp,
        a: u64,
        b: u64,
        cin: bool,
    ) -> Vec<(NodeId, Logic)> {
        assert!(
            a < (1 << self.bits) && b < (1 << self.bits),
            "operand too wide"
        );
        let mut v = Vec::with_capacity(2 * self.bits + 3);
        for i in 0..self.bits {
            v.push((self.io.a[i], Logic::from_bool((a >> i) & 1 == 1)));
            v.push((self.io.b[i], Logic::from_bool((b >> i) & 1 == 1)));
        }
        v.push((self.io.cin, Logic::from_bool(cin)));
        v.push((self.io.op[0], Logic::from_bool(op.code() & 1 == 1)));
        v.push((self.io.op[1], Logic::from_bool(op.code() & 2 == 2)));
        v
    }

    /// The reference carry-out: the adder slice computes on every
    /// pattern, so `cout` models `a + b + cin` overflowing regardless
    /// of the selected operation.
    #[must_use]
    pub fn expected_cout(&self, a: u64, b: u64, cin: bool) -> bool {
        a + b + u64::from(cin) > (1u64 << self.bits) - 1
    }

    /// Summary statistics.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        NetworkStats::of(&self.net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_switch::LogicSim;

    fn compute(alu: &AluDatapath, sim: &mut LogicSim<'_>, op: AluOp, a: u64, b: u64) -> u64 {
        for (n, v) in alu.operand_assignments(op, a, b, false) {
            sim.set_input(n, v);
        }
        sim.settle();
        let mut out = 0u64;
        for (i, &r) in alu.io().result.iter().enumerate() {
            match sim.get(r) {
                Logic::H => out |= 1 << i,
                Logic::L => {}
                Logic::X => panic!("{op:?} {a},{b}: result bit {i} is X"),
            }
        }
        out
    }

    #[test]
    fn two_bit_exhaustive_all_ops() {
        let alu = AluDatapath::new(2);
        let mut sim = LogicSim::new(alu.network());
        sim.settle();
        for op in ALU_OPS {
            for a in 0..4u64 {
                for b in 0..4u64 {
                    assert_eq!(
                        compute(&alu, &mut sim, op, a, b),
                        op.eval(a, b, false, 2),
                        "{op:?}({a}, {b})"
                    );
                }
            }
        }
    }

    #[test]
    fn four_bit_spot_checks_and_carry() {
        let alu = AluDatapath::new(4);
        let mut sim = LogicSim::new(alu.network());
        sim.settle();
        for (op, a, b) in [
            (AluOp::Add, 9, 8),
            (AluOp::And, 0b1100, 0b1010),
            (AluOp::Or, 0b1100, 0b1010),
            (AluOp::Xor, 0b1100, 0b1010),
            (AluOp::Add, 15, 15),
        ] {
            assert_eq!(
                compute(&alu, &mut sim, op, a, b),
                op.eval(a, b, false, 4),
                "{op:?}({a}, {b})"
            );
            assert_eq!(
                sim.get(alu.io().cout) == Logic::H,
                alu.expected_cout(a, b, false),
                "cout for {a}+{b}"
            );
        }
    }

    #[test]
    fn opcode_changes_reroute_the_same_operands() {
        // The mux, not the function blocks, changes: same operands,
        // sequentially different results.
        let alu = AluDatapath::new(3);
        let mut sim = LogicSim::new(alu.network());
        sim.settle();
        let (a, b) = (0b101, 0b011);
        assert_eq!(compute(&alu, &mut sim, AluOp::Add, a, b), 0b000);
        assert_eq!(compute(&alu, &mut sim, AluOp::And, a, b), 0b001);
        assert_eq!(compute(&alu, &mut sim, AluOp::Or, a, b), 0b111);
        assert_eq!(compute(&alu, &mut sim, AluOp::Xor, a, b), 0b110);
    }

    #[test]
    fn surfaces() {
        let alu = AluDatapath::new(4);
        assert_eq!(alu.observed_outputs().len(), 5, "4 result bits + cout");
        assert_eq!(alu.bits(), 4);
        assert!(alu.stats().transistors > 0);
    }
}
