//! The paper's benchmark circuit: a 3-transistor dynamic RAM.
//!
//! Organisation (nMOS, two-phase clocks):
//!
//! ```text
//!            A0..        WE  DIN      PHI1 PHI2
//!             │           │   │         │   │
//!      ┌──────┴─────┐   control &  data-in latch
//!      │ row/column │   strobe logic     │
//!      │ NOR decode │      │             ▼
//!      └──────┬─────┘   wsel/rsel    write bus ──┬─ column pass ─ WBL
//!             │         per row                  │
//!             ▼                                  ▼
//!        3T cell array:      WBL ─T1(wsel)─ S ─gate─ T2
//!        R rows × C cols     RBL ─T3(rsel)─ mid ─T2─ Gnd
//!             │
//!        RBL (precharged by PHI1) ─ column pass ─ read bus ─ sense inv
//!                                                  │
//!                                   output latch (PHI2) ─ buffer ─ DOUT
//! ```
//!
//! A memory operation is one paper *pattern* = six input settings (see
//! `fmossim-testgen`): set address/data/WE and raise PHI1 (precharge +
//! data latch), drop PHI1, raise PHI2 (row/column strobes fire: write
//! or read), drop PHI2, raise PHI3 (output latch grabs the stable
//! sensed value), drop PHI3 and observe. The third clock exists so the
//! output latch is never transparent while the read bus is still
//! discharging — a latch-while-sensing hazard would otherwise let
//! event-order-dependent glitches reach floating nodes in faulty
//! circuits.
//!
//! `Ram::new(8, 8)` reproduces RAM64's scale (paper: 378 transistors,
//! 229 nodes), `Ram::new(16, 16)` RAM256's (1148 transistors, 695
//! nodes); exact counts differ slightly because the authors' layout is
//! not published — EXPERIMENTS.md records ours next to theirs.

use crate::cells::Cells;
use crate::decoder::nor_decoder;
use fmossim_netlist::{Logic, Network, NetworkStats, NodeId};

/// The externally visible nodes of a [`Ram`].
#[derive(Clone, Debug)]
pub struct RamIo {
    /// Precharge / data-latch clock.
    pub phi1: NodeId,
    /// Access-strobe clock.
    pub phi2: NodeId,
    /// Output-latch clock (raised after PHI2 has fallen, when the read
    /// bus is stable).
    pub phi3: NodeId,
    /// Write enable (high = write, low = read).
    pub we: NodeId,
    /// Data input pin.
    pub din: NodeId,
    /// Address pins, row bits first (LSB first), then column bits.
    pub addr: Vec<NodeId>,
    /// The single data output pin (the paper: "their observability is
    /// low, because there is only a single output").
    pub dout: NodeId,
}

/// A generated R×C×1 three-transistor dynamic RAM.
#[derive(Clone, Debug)]
pub struct Ram {
    net: Network,
    rows: usize,
    cols: usize,
    row_bits: usize,
    col_bits: usize,
    io: RamIo,
    /// Per column: (write bit line, read bit line).
    bit_lines: Vec<(NodeId, NodeId)>,
    /// Cell storage nodes, indexed `[row][col]`.
    cells: Vec<Vec<NodeId>>,
    outputs: Vec<NodeId>,
}

impl Ram {
    /// Builds an `rows × cols` RAM. Both dimensions must be powers of
    /// two, at least 2.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is not a power of two or is less than 2.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows.is_power_of_two() && rows >= 2,
            "rows must be a power of two >= 2"
        );
        assert!(
            cols.is_power_of_two() && cols >= 2,
            "cols must be a power of two >= 2"
        );
        let row_bits = rows.trailing_zeros() as usize;
        let col_bits = cols.trailing_zeros() as usize;

        let mut net = Network::new();
        let mut c = Cells::new(&mut net);

        // ---- pins -------------------------------------------------
        let phi1 = c.input("PHI1", Logic::L);
        let phi2 = c.input("PHI2", Logic::L);
        let phi3 = c.input("PHI3", Logic::L);
        let we = c.input("WE", Logic::L);
        let din = c.input("DIN", Logic::L);
        let addr: Vec<NodeId> = (0..row_bits + col_bits)
            .map(|i| c.input(&format!("A{i}"), Logic::L))
            .collect();

        // ---- address buffers (true + complement per bit) -----------
        let acomp: Vec<NodeId> = addr
            .iter()
            .enumerate()
            .map(|(i, &a)| c.inv(&format!("AB{i}"), a))
            .collect();
        let atrue: Vec<NodeId> = acomp
            .iter()
            .enumerate()
            .map(|(i, &ab)| c.inv(&format!("AT{i}"), ab))
            .collect();

        // ---- decoders ----------------------------------------------
        let row_sel = nor_decoder(&mut c, "ROW", &atrue[..row_bits], &acomp[..row_bits]);
        let col_sel = nor_decoder(&mut c, "COL", &atrue[row_bits..], &acomp[row_bits..]);

        // ---- control strobes ---------------------------------------
        let nwe = c.inv("NWE", we);
        let webuf = c.inv("WEB", nwe);
        let wstrobe = c.and2("WSTR", phi2, webuf);
        let rstrobe = c.and2("RSTR", phi2, nwe);
        let wsel: Vec<NodeId> = row_sel
            .iter()
            .enumerate()
            .map(|(r, &row)| c.and2(&format!("WSEL{r}"), row, wstrobe))
            .collect();
        let rsel: Vec<NodeId> = row_sel
            .iter()
            .enumerate()
            .map(|(r, &row)| c.and2(&format!("RSEL{r}"), row, rstrobe))
            .collect();

        // ---- write data path ---------------------------------------
        let dlatch = c.dynamic_latch("DLAT", phi1, din);
        let dlatch_n = c.inv("DLATN", dlatch);
        let wbus = c.bus("WBUS");
        // Drive the write bus with an inverter whose output *is* the
        // bus node: load plus pull-down attached directly.
        c.pullup(wbus);
        {
            let gnd = c.gnd();
            c.pass(dlatch_n, wbus, gnd);
        }

        // ---- bit lines, column muxes, precharge --------------------
        let rbus = c.bus("RBUS");
        c.precharge(phi1, rbus);
        let mut bit_lines = Vec::with_capacity(cols);
        for (j, &col) in col_sel.iter().enumerate() {
            let wbl = c.bus(&format!("WBL{j}"));
            let rbl = c.bus(&format!("RBL{j}"));
            c.precharge(phi1, rbl);
            c.pass(col, wbus, wbl);
            c.pass(col, rbl, rbus);
            bit_lines.push((wbl, rbl));
        }

        // ---- cell array ---------------------------------------------
        let gnd = c.gnd();
        let mut cell_nodes = Vec::with_capacity(rows);
        for r in 0..rows {
            let mut row_nodes = Vec::with_capacity(cols);
            for (j, &(wbl, rbl)) in bit_lines.iter().enumerate() {
                let s = c.node(&format!("S{r}_{j}"));
                let mid = c.node(&format!("M{r}_{j}"));
                c.pass(wsel[r], wbl, s); // T1: write access
                c.pass(s, mid, gnd); // T2: storage readout
                c.pass(rsel[r], rbl, mid); // T3: read access
                row_nodes.push(s);
            }
            cell_nodes.push(row_nodes);
        }

        // ---- read data path -----------------------------------------
        let sense = c.inv("SENSE", rbus);
        let dstore = c.dynamic_latch("DSTORE", phi3, sense);
        let dout = c.buf("DOUT", dstore);

        let io = RamIo {
            phi1,
            phi2,
            phi3,
            we,
            din,
            addr,
            dout,
        };
        Ram {
            net,
            rows,
            cols,
            row_bits,
            col_bits,
            io,
            bit_lines,
            cells: cell_nodes,
            outputs: vec![dout],
        }
    }

    /// The generated network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the network, for post-generation fault
    /// insertion (bridges, breakable segments). Ids already handed out
    /// stay valid — the network is append-only.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// The I/O pin map.
    #[must_use]
    pub fn io(&self) -> &RamIo {
        &self.io
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Word capacity (rows × cols; one bit per word).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.rows * self.cols
    }

    /// `(row_bits, col_bits)` of the address pins.
    #[must_use]
    pub fn addr_bits(&self) -> (usize, usize) {
        (self.row_bits, self.col_bits)
    }

    /// The nodes compared between good and faulty circuits — just the
    /// data output pin, as in the paper.
    #[must_use]
    pub fn observed_outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// The storage node of cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn cell(&self, row: usize, col: usize) -> NodeId {
        self.cells[row][col]
    }

    /// Per-column `(write bit line, read bit line)` nodes.
    #[must_use]
    pub fn bit_lines(&self) -> &[(NodeId, NodeId)] {
        &self.bit_lines
    }

    /// Pairs of physically adjacent bit lines — the paper's "single
    /// pairs of adjacent bit lines shorted together" fault class.
    /// Assumes the column layout `… WBLj RBLj WBL(j+1) RBL(j+1) …`:
    /// within a column WBL–RBL are adjacent, and across columns
    /// RBLj–WBL(j+1).
    #[must_use]
    pub fn adjacent_bitline_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut pairs = Vec::new();
        for j in 0..self.cols {
            let (wbl, rbl) = self.bit_lines[j];
            pairs.push((wbl, rbl));
            if j + 1 < self.cols {
                pairs.push((rbl, self.bit_lines[j + 1].0));
            }
        }
        pairs
    }

    /// Address pin assignments for a flat cell index
    /// (`word = row * cols + col`).
    ///
    /// # Panics
    ///
    /// Panics if `word >= capacity()`.
    #[must_use]
    pub fn addr_assignments(&self, word: usize) -> Vec<(NodeId, Logic)> {
        assert!(word < self.capacity(), "address out of range");
        let row = word / self.cols;
        let col = word % self.cols;
        let mut v = Vec::with_capacity(self.io.addr.len());
        for b in 0..self.row_bits {
            v.push((self.io.addr[b], Logic::from_bool((row >> b) & 1 == 1)));
        }
        for b in 0..self.col_bits {
            v.push((
                self.io.addr[self.row_bits + b],
                Logic::from_bool((col >> b) & 1 == 1),
            ));
        }
        v
    }

    /// Summary statistics (compare with the paper's circuit sizes).
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        NetworkStats::of(&self.net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_switch::LogicSim;

    /// Drive one memory operation through the six clock settings.
    fn op(sim: &mut LogicSim<'_>, ram: &Ram, word: usize, write: Option<bool>) -> Logic {
        let io = ram.io();
        for (n, v) in ram.addr_assignments(word) {
            sim.set_input(n, v);
        }
        sim.set_input(io.we, Logic::from_bool(write.is_some()));
        if let Some(d) = write {
            sim.set_input(io.din, Logic::from_bool(d));
        }
        sim.set_input(io.phi1, Logic::H);
        sim.settle();
        sim.set_input(io.phi1, Logic::L);
        sim.settle();
        sim.set_input(io.phi2, Logic::H);
        sim.settle();
        sim.set_input(io.phi2, Logic::L);
        sim.settle();
        sim.set_input(io.phi3, Logic::H);
        sim.settle();
        sim.set_input(io.phi3, Logic::L);
        sim.settle();
        sim.get(io.dout)
    }

    #[test]
    fn ram_4x4_write_read_all_cells() {
        let ram = Ram::new(4, 4);
        let mut sim = LogicSim::new(ram.network());
        sim.settle();
        // Write a checkerboard, then read it back.
        for w in 0..ram.capacity() {
            op(&mut sim, &ram, w, Some(w % 2 == 0));
        }
        for w in 0..ram.capacity() {
            let got = op(&mut sim, &ram, w, None);
            assert_eq!(
                got,
                Logic::from_bool(w % 2 == 0),
                "read back word {w} of checkerboard"
            );
        }
        // And the inverse pattern.
        for w in 0..ram.capacity() {
            op(&mut sim, &ram, w, Some(w % 2 == 1));
        }
        for w in 0..ram.capacity() {
            let got = op(&mut sim, &ram, w, None);
            assert_eq!(got, Logic::from_bool(w % 2 == 1), "inverse word {w}");
        }
    }

    #[test]
    fn cells_retain_charge_across_other_operations() {
        let ram = Ram::new(4, 4);
        let mut sim = LogicSim::new(ram.network());
        sim.settle();
        op(&mut sim, &ram, 0, Some(true));
        // Hammer a different word many times.
        for _ in 0..5 {
            op(&mut sim, &ram, 5, Some(false));
            op(&mut sim, &ram, 5, None);
        }
        assert_eq!(op(&mut sim, &ram, 0, None), Logic::H, "word 0 retained");
    }

    #[test]
    fn unwritten_cell_reads_x() {
        let ram = Ram::new(4, 4);
        let mut sim = LogicSim::new(ram.network());
        sim.settle();
        op(&mut sim, &ram, 1, Some(true)); // initialize something else
        assert_eq!(op(&mut sim, &ram, 9, None), Logic::X, "uninitialized cell");
    }

    #[test]
    fn cell_state_matches_dout() {
        let ram = Ram::new(4, 4);
        let mut sim = LogicSim::new(ram.network());
        sim.settle();
        op(&mut sim, &ram, 6, Some(true));
        assert_eq!(sim.get(ram.cell(1, 2)), Logic::H, "cell (1,2) holds 1");
        op(&mut sim, &ram, 6, Some(false));
        assert_eq!(sim.get(ram.cell(1, 2)), Logic::L, "cell (1,2) holds 0");
    }

    #[test]
    fn ram64_matches_paper_scale() {
        let ram = Ram::new(8, 8);
        let s = ram.stats();
        // Paper: 378 transistors, 229 nodes. Our layout lands nearby.
        assert!(
            (300..500).contains(&s.transistors),
            "RAM64-scale transistor count, got {}",
            s.transistors
        );
        assert!(
            (180..320).contains(&s.nodes),
            "RAM64-scale node count, got {}",
            s.nodes
        );
    }

    #[test]
    fn ram256_matches_paper_scale() {
        let ram = Ram::new(16, 16);
        let s = ram.stats();
        // Paper: 1148 transistors, 695 nodes.
        assert!(
            (950..1500).contains(&s.transistors),
            "RAM256-scale transistor count, got {}",
            s.transistors
        );
        assert!(
            (500..900).contains(&s.nodes),
            "RAM256-scale node count, got {}",
            s.nodes
        );
    }

    #[test]
    fn bitline_pairs_cover_all_columns() {
        let ram = Ram::new(4, 4);
        let pairs = ram.adjacent_bitline_pairs();
        assert_eq!(pairs.len(), 2 * 4 - 1);
        // All pair members are bit lines.
        let lines: Vec<NodeId> = ram.bit_lines().iter().flat_map(|&(w, r)| [w, r]).collect();
        for (a, b) in pairs {
            assert!(lines.contains(&a) && lines.contains(&b));
            assert_ne!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Ram::new(3, 4);
    }

    #[test]
    fn addr_assignments_roundtrip() {
        let ram = Ram::new(4, 8);
        assert_eq!(ram.addr_bits(), (2, 3));
        let a = ram.addr_assignments(4 * 8 - 1);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|&(_, v)| v == Logic::H));
        let a = ram.addr_assignments(0);
        assert!(a.iter().all(|&(_, v)| v == Logic::L));
    }
}
