//! A clocked binary counter with a rippling carry-enable chain.
//!
//! Each bit is a master/slave toggle stage on the external two-phase
//! clock; bit `k` toggles when the enable input and every lower bit
//! are high, the enable rippling through an AND chain exactly like a
//! ripple-carry adder's carry. (Deriving each stage's clock from the
//! previous bit — the asynchronous ripple-counter textbook form — is a
//! race under two-phase switch-level timing: the master and slave
//! latches of a stage would be transparent simultaneously while the
//! derived clock and its in-network complement cross. The rippling
//! enable keeps the counting chain but clocks every stage safely.)
//!
//! For the fault-simulation zoo this is the "deep state feedback"
//! profile: every bit's next value depends on the whole lower half of
//! the register, so a stuck fault in bit 0 corrupts the entire count
//! sequence — the opposite of the shift register's bounded-latency
//! fault propagation.

use crate::cells::Cells;
use fmossim_netlist::{Logic, Network, NetworkStats, NodeId};

/// Pin map of a [`RippleCounter`].
#[derive(Clone, Debug)]
pub struct RippleCounterIo {
    /// Master-latch clock.
    pub phi1: NodeId,
    /// Slave-latch clock. Must not overlap `phi1`.
    pub phi2: NodeId,
    /// Count enable: the counter increments on clock cycles with `en`
    /// high and holds its value otherwise.
    pub en: NodeId,
    /// Synchronous clear: one clock cycle with `clr` high zeroes every
    /// bit (and wins over `en`).
    pub clr: NodeId,
    /// Counter state, LSB first (restored, directly observable).
    pub q: Vec<NodeId>,
}

/// An N-bit synchronous counter with ripple carry-enable.
#[derive(Clone, Debug)]
pub struct RippleCounter {
    net: Network,
    bits: usize,
    io: RippleCounterIo,
}

impl RippleCounter {
    /// Builds a `bits`-wide counter (`bits >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    #[must_use]
    pub fn new(bits: usize) -> Self {
        assert!(bits >= 1, "counter needs at least one bit");
        let mut net = Network::new();
        let mut c = Cells::new(&mut net);
        let phi1 = c.input("PHI1", Logic::L);
        let phi2 = c.input("PHI2", Logic::L);
        let en = c.input("EN", Logic::L);
        let clr = c.input("CLR", Logic::L);

        let mut toggle = en;
        let mut q_bits = Vec::with_capacity(bits);
        for k in 0..bits {
            // The slave output feeds the toggle logic above it, so the
            // node pair is forward-declared and wired with `inv_into`.
            let q = c.node(&format!("Q{k}"));
            let qb = c.node(&format!("QB{k}"));
            let next = c.xor2(&format!("CB{k}.x"), q, toggle);
            // Synchronous clear: d = next AND NOT clr.
            let nextb = c.inv(&format!("CB{k}.nb"), next);
            let d = c.nor(&format!("CB{k}.d"), &[nextb, clr]);
            let m = c.dynamic_latch(&format!("CB{k}.m"), phi1, d);
            let mb = c.inv(&format!("CB{k}.mb"), m);
            let mv = c.inv(&format!("CB{k}.mv"), mb);
            let s = c.dynamic_latch(&format!("CB{k}.s"), phi2, mv);
            c.inv_into(qb, s);
            c.inv_into(q, qb);
            q_bits.push(q);
            if k + 1 < bits {
                toggle = c.and2(&format!("T{}", k + 1), toggle, q);
            }
        }
        let io = RippleCounterIo {
            phi1,
            phi2,
            en,
            clr,
            q: q_bits,
        };
        RippleCounter { net, bits, io }
    }

    /// The generated network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The pin map.
    #[must_use]
    pub fn io(&self) -> &RippleCounterIo {
        &self.io
    }

    /// Counter width in bits.
    #[must_use]
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// All observable outputs: every counter bit, LSB first.
    #[must_use]
    pub fn observed_outputs(&self) -> &[NodeId] {
        &self.io.q
    }

    /// Summary statistics.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        NetworkStats::of(&self.net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_switch::LogicSim;

    /// One clock cycle with the given control inputs.
    fn cycle(sim: &mut LogicSim<'_>, c: &RippleCounter, en: bool, clr: bool) {
        let io = c.io();
        sim.set_input(io.en, Logic::from_bool(en));
        sim.set_input(io.clr, Logic::from_bool(clr));
        sim.set_input(io.phi1, Logic::H);
        sim.settle();
        sim.set_input(io.phi1, Logic::L);
        sim.settle();
        sim.set_input(io.phi2, Logic::H);
        sim.settle();
        sim.set_input(io.phi2, Logic::L);
        sim.settle();
    }

    fn value(sim: &LogicSim<'_>, c: &RippleCounter) -> Option<u64> {
        let mut v = 0u64;
        for (k, &q) in c.io().q.iter().enumerate() {
            match sim.get(q).to_bool() {
                Some(true) => v |= 1 << k,
                Some(false) => {}
                None => return None,
            }
        }
        Some(v)
    }

    #[test]
    fn clear_then_count_wraps() {
        let counter = RippleCounter::new(3);
        let mut sim = LogicSim::new(counter.network());
        sim.settle();
        assert_eq!(value(&sim, &counter), None, "unclocked state is X");
        cycle(&mut sim, &counter, false, true);
        assert_eq!(value(&sim, &counter), Some(0), "clear zeroes every bit");
        for want in 1..=9u64 {
            cycle(&mut sim, &counter, true, false);
            assert_eq!(value(&sim, &counter), Some(want % 8), "count {want}");
        }
    }

    #[test]
    fn enable_low_holds_the_count() {
        let counter = RippleCounter::new(4);
        let mut sim = LogicSim::new(counter.network());
        sim.settle();
        cycle(&mut sim, &counter, false, true);
        for _ in 0..5 {
            cycle(&mut sim, &counter, true, false);
        }
        assert_eq!(value(&sim, &counter), Some(5));
        for _ in 0..3 {
            cycle(&mut sim, &counter, false, false);
        }
        assert_eq!(value(&sim, &counter), Some(5), "EN low freezes the count");
    }

    #[test]
    fn clear_wins_over_enable() {
        let counter = RippleCounter::new(4);
        let mut sim = LogicSim::new(counter.network());
        sim.settle();
        cycle(&mut sim, &counter, false, true);
        for _ in 0..7 {
            cycle(&mut sim, &counter, true, false);
        }
        assert_eq!(value(&sim, &counter), Some(7));
        cycle(&mut sim, &counter, true, true);
        assert_eq!(value(&sim, &counter), Some(0));
    }

    #[test]
    fn carry_ripples_the_full_width() {
        let counter = RippleCounter::new(5);
        let mut sim = LogicSim::new(counter.network());
        sim.settle();
        cycle(&mut sim, &counter, false, true);
        for _ in 0..16 {
            cycle(&mut sim, &counter, true, false);
        }
        assert_eq!(value(&sim, &counter), Some(16), "carry into the MSB");
        assert_eq!(counter.observed_outputs().len(), 5);
        assert!(counter.stats().transistors > 0);
    }
}
