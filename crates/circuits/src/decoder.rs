//! NOR-based address decoding.

use crate::cells::Cells;
use fmossim_netlist::NodeId;

/// Builds a `2^k`-output NOR address decoder from `k` address bits
/// given in both polarities (`addr_true[i]`, `addr_comp[i]`).
///
/// Output `i` is high exactly when the address equals `i`: it is the
/// NOR of, per bit, the *complement* literal of the bit's value in `i`
/// (all literals low ⇔ address matches). This is the classic nMOS
/// decoder structure — one load plus `k` parallel pull-downs per
/// output.
///
/// `addr_true[0]` is the least-significant bit.
///
/// # Panics
///
/// Panics if the two literal slices have different lengths or are
/// empty.
pub fn nor_decoder(
    cells: &mut Cells<'_>,
    name: &str,
    addr_true: &[NodeId],
    addr_comp: &[NodeId],
) -> Vec<NodeId> {
    assert_eq!(addr_true.len(), addr_comp.len(), "mismatched literal sets");
    assert!(!addr_true.is_empty(), "decoder needs at least one bit");
    let k = addr_true.len();
    let mut outputs = Vec::with_capacity(1 << k);
    for i in 0..(1usize << k) {
        let literals: Vec<NodeId> = (0..k)
            .map(|b| {
                if (i >> b) & 1 == 1 {
                    addr_comp[b] // bit must be 1: complement literal low
                } else {
                    addr_true[b] // bit must be 0: true literal low
                }
            })
            .collect();
        outputs.push(cells.nor(&format!("{name}{i}"), &literals));
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_netlist::{Logic, Network};
    use fmossim_switch::LogicSim;

    #[test]
    fn three_bit_decoder_selects_exactly_one() {
        let mut net = Network::new();
        let (addr, outputs) = {
            let mut cells = Cells::new(&mut net);
            let addr: Vec<NodeId> = (0..3)
                .map(|i| cells.input(&format!("A{i}"), Logic::L))
                .collect();
            let comp: Vec<NodeId> = addr
                .iter()
                .enumerate()
                .map(|(i, &a)| cells.inv(&format!("A{i}b"), a))
                .collect();
            let outputs = nor_decoder(&mut cells, "ROW", &addr, &comp);
            (addr, outputs)
        };
        assert_eq!(outputs.len(), 8);
        let mut sim = LogicSim::new(&net);
        sim.settle();
        for want in 0..8usize {
            for (b, &a) in addr.iter().enumerate() {
                sim.set_input(a, Logic::from_bool((want >> b) & 1 == 1));
            }
            sim.settle();
            for (i, &o) in outputs.iter().enumerate() {
                let expect = Logic::from_bool(i == want);
                assert_eq!(sim.get(o), expect, "addr={want} line={i}");
            }
        }
    }

    #[test]
    fn x_address_floats_candidate_lines() {
        let mut net = Network::new();
        let (a0, outputs) = {
            let mut cells = Cells::new(&mut net);
            let a0 = cells.input("A0", Logic::L);
            let a0b = cells.inv("A0b", a0);
            let outputs = nor_decoder(&mut cells, "ROW", &[a0], &[a0b]);
            (a0, outputs)
        };
        let mut sim = LogicSim::new(&net);
        sim.settle();
        sim.set_input(a0, Logic::X);
        sim.settle();
        // Both lines could be selected or not: X on both.
        assert_eq!(sim.get(outputs[0]), Logic::X);
        assert_eq!(sim.get(outputs[1]), Logic::X);
    }

    #[test]
    #[should_panic(expected = "mismatched literal sets")]
    fn mismatched_literals_panic() {
        let mut net = Network::new();
        let mut cells = Cells::new(&mut net);
        let a = cells.input("A0", Logic::L);
        nor_decoder(&mut cells, "ROW", &[a], &[]);
    }
}
