//! A dynamic-logic PLA: precharged NOR–NOR AND/OR planes, evaluated on
//! a three-phase clock.
//!
//! The zoo's "wide shallow dynamic logic" profile — every node is a
//! precharged line whose final value depends on a whole plane of
//! pull-downs, the structure the paper's charge-sharing and dynamic-
//! node machinery exists for (the RAM exercises the same mechanisms
//! only along its bit lines).
//!
//! ```text
//!   x0..xI ──┬── inverters ──┐
//!            ▼               ▼
//!   AND plane: product lines, precharged by PHI1, discharged while
//!   PHI2 is high through (literal, PHI2) pull-down pairs — a product
//!   line stays high iff its term is satisfied.
//!            │
//!   OR plane: output lines, precharged by PHI1, discharged while PHI3
//!   is high through (product, PHI3) pairs — an output line falls iff
//!   any selected product fired; a sense inverter restores OUTo.
//! ```
//!
//! The OR plane evaluates on its own later phase (PHI3) because the
//! two planes must not race: at the instant PHI2 rises every product
//! line is still precharged high, and an OR pull-down that evaluated
//! concurrently would discharge its output line before the false
//! products have fallen — dynamic charge never comes back. (This is
//! the same hazard that gives the RAM its third clock.)

use crate::cells::Cells;
use fmossim_netlist::{Logic, Network, NetworkStats, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The programming of a [`Pla`]: its two planes as truth tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlaSpec {
    /// Number of input pins.
    pub inputs: usize,
    /// One row per product term; `and_plane[j][i]` is the literal of
    /// input `i` in product `j` — `Some(true)` requires `x_i = 1`,
    /// `Some(false)` requires `x_i = 0`, `None` is a don't-care.
    pub and_plane: Vec<Vec<Option<bool>>>,
    /// One row per output; `or_plane[o][j]` selects product `j` into
    /// output `o`.
    pub or_plane: Vec<Vec<bool>>,
}

impl PlaSpec {
    /// A seeded random programming: `products` terms over `inputs`
    /// pins feeding `outputs` OR lines. Every product carries at least
    /// one literal and every output selects at least one product, so
    /// no plane row is degenerate; the same seed always yields the
    /// same spec.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn random(inputs: usize, products: usize, outputs: usize, seed: u64) -> Self {
        assert!(
            inputs >= 1 && products >= 1 && outputs >= 1,
            "PLA dimensions must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let and_plane = (0..products)
            .map(|_| {
                let mut row: Vec<Option<bool>> = (0..inputs)
                    .map(|_| {
                        if rng.gen_bool(0.5) {
                            Some(rng.gen_bool(0.5))
                        } else {
                            None
                        }
                    })
                    .collect();
                if row.iter().all(Option::is_none) {
                    let i = rng.gen_range(0..inputs);
                    row[i] = Some(rng.gen_bool(0.5));
                }
                row
            })
            .collect();
        let or_plane = (0..outputs)
            .map(|_| {
                let mut row: Vec<bool> = (0..products).map(|_| rng.gen_bool(0.4)).collect();
                if !row.iter().any(|&s| s) {
                    let j = rng.gen_range(0..products);
                    row[j] = true;
                }
                row
            })
            .collect();
        PlaSpec {
            inputs,
            and_plane,
            or_plane,
        }
    }

    /// Number of product terms.
    #[must_use]
    pub fn products(&self) -> usize {
        self.and_plane.len()
    }

    /// Number of outputs.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.or_plane.len()
    }

    /// The programmed function, evaluated on boolean inputs — the
    /// reference model the circuit is tested against.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    #[must_use]
    pub fn eval(&self, x: &[bool]) -> Vec<bool> {
        assert_eq!(x.len(), self.inputs, "input width mismatch");
        let product: Vec<bool> = self
            .and_plane
            .iter()
            .map(|row| {
                row.iter()
                    .zip(x)
                    .all(|(lit, &xi)| lit.is_none_or(|want| xi == want))
            })
            .collect();
        self.or_plane
            .iter()
            .map(|row| row.iter().zip(&product).any(|(&sel, &p)| sel && p))
            .collect()
    }

    /// Checks the plane dimensions agree.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatched row.
    pub fn validate(&self) -> Result<(), String> {
        for (j, row) in self.and_plane.iter().enumerate() {
            if row.len() != self.inputs {
                return Err(format!(
                    "product {j} has {} literals, expected {}",
                    row.len(),
                    self.inputs
                ));
            }
        }
        let products = self.and_plane.len();
        for (o, row) in self.or_plane.iter().enumerate() {
            if row.len() != products {
                return Err(format!(
                    "output {o} selects over {} products, expected {products}",
                    row.len()
                ));
            }
        }
        Ok(())
    }
}

/// Pin map of a [`Pla`].
#[derive(Clone, Debug)]
pub struct PlaIo {
    /// Precharge clock (both planes).
    pub phi1: NodeId,
    /// AND-plane evaluate clock.
    pub phi2: NodeId,
    /// OR-plane evaluate clock (raised after PHI2 has fallen).
    pub phi3: NodeId,
    /// Data inputs.
    pub x: Vec<NodeId>,
    /// Restored outputs (sense inverters on the OR lines).
    pub out: Vec<NodeId>,
}

/// A generated dynamic PLA.
#[derive(Clone, Debug)]
pub struct Pla {
    net: Network,
    spec: PlaSpec,
    io: PlaIo,
    /// Product-term lines, for observability experiments.
    products: Vec<NodeId>,
}

impl Pla {
    /// Builds the PLA for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`PlaSpec::validate`].
    #[must_use]
    pub fn new(spec: PlaSpec) -> Self {
        spec.validate().expect("consistent PLA spec");
        let mut net = Network::new();
        let mut c = Cells::new(&mut net);
        let phi1 = c.input("PHI1", Logic::L);
        let phi2 = c.input("PHI2", Logic::L);
        let phi3 = c.input("PHI3", Logic::L);
        let x: Vec<NodeId> = (0..spec.inputs)
            .map(|i| c.input(&format!("X{i}"), Logic::L))
            .collect();
        let xb: Vec<NodeId> = x
            .iter()
            .enumerate()
            .map(|(i, &xi)| c.inv(&format!("XB{i}"), xi))
            .collect();

        // AND plane: product line high after evaluation iff the term
        // is satisfied. A pull-down pair fires when its literal is
        // *violated* (true literal → gated by the complement).
        let gnd = c.gnd();
        let mut products = Vec::with_capacity(spec.products());
        for (j, row) in spec.and_plane.iter().enumerate() {
            let p = c.bus(&format!("P{j}"));
            c.precharge(phi1, p);
            for (i, lit) in row.iter().enumerate() {
                let Some(want) = *lit else { continue };
                let gate = if want { xb[i] } else { x[i] };
                let mid = c.node(&format!("P{j}.m{i}"));
                c.pass(gate, p, mid);
                c.pass(phi2, mid, gnd);
            }
            products.push(p);
        }

        // OR plane: output line falls iff a selected product stayed
        // high; the sense inverter restores the positive sense.
        let mut out = Vec::with_capacity(spec.outputs());
        for (o, row) in spec.or_plane.iter().enumerate() {
            let line = c.bus(&format!("OB{o}"));
            c.precharge(phi1, line);
            for (j, &sel) in row.iter().enumerate() {
                if !sel {
                    continue;
                }
                let mid = c.node(&format!("OB{o}.m{j}"));
                c.pass(products[j], line, mid);
                c.pass(phi3, mid, gnd);
            }
            out.push(c.inv(&format!("OUT{o}"), line));
        }

        let io = PlaIo {
            phi1,
            phi2,
            phi3,
            x,
            out,
        };
        Pla {
            net,
            spec,
            io,
            products,
        }
    }

    /// The generated network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The pin map.
    #[must_use]
    pub fn io(&self) -> &PlaIo {
        &self.io
    }

    /// The programming this PLA was built from.
    #[must_use]
    pub fn spec(&self) -> &PlaSpec {
        &self.spec
    }

    /// The product-term lines (AND-plane outputs), in product order.
    #[must_use]
    pub fn product_lines(&self) -> &[NodeId] {
        &self.products
    }

    /// All observable outputs: the restored OR-plane outputs.
    #[must_use]
    pub fn observed_outputs(&self) -> &[NodeId] {
        &self.io.out
    }

    /// Input assignments for the data pins.
    ///
    /// # Panics
    ///
    /// Panics if `bits` has the wrong width.
    #[must_use]
    pub fn input_assignments(&self, bits: &[bool]) -> Vec<(NodeId, Logic)> {
        assert_eq!(bits.len(), self.spec.inputs, "input width mismatch");
        self.io
            .x
            .iter()
            .zip(bits)
            .map(|(&n, &b)| (n, Logic::from_bool(b)))
            .collect()
    }

    /// Summary statistics.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        NetworkStats::of(&self.net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_switch::LogicSim;

    /// One full evaluate cycle with the given input vector.
    fn evaluate(sim: &mut LogicSim<'_>, pla: &Pla, bits: &[bool]) -> Vec<Option<bool>> {
        let io = pla.io();
        for (n, v) in pla.input_assignments(bits) {
            sim.set_input(n, v);
        }
        for (clk, v) in [
            (io.phi1, Logic::H),
            (io.phi1, Logic::L),
            (io.phi2, Logic::H),
            (io.phi2, Logic::L),
            (io.phi3, Logic::H),
            (io.phi3, Logic::L),
        ] {
            sim.set_input(clk, v);
            sim.settle();
        }
        io.out.iter().map(|&o| sim.get(o).to_bool()).collect()
    }

    fn bits_of(v: usize, width: usize) -> Vec<bool> {
        (0..width).map(|i| (v >> i) & 1 == 1).collect()
    }

    #[test]
    fn fixed_program_matches_model_exhaustively() {
        // out0 = (x0 & ~x1) | (x1 & x2); out1 = ~x0 & ~x2.
        let spec = PlaSpec {
            inputs: 3,
            and_plane: vec![
                vec![Some(true), Some(false), None],
                vec![None, Some(true), Some(true)],
                vec![Some(false), None, Some(false)],
            ],
            or_plane: vec![vec![true, true, false], vec![false, false, true]],
        };
        let pla = Pla::new(spec);
        let mut sim = LogicSim::new(pla.network());
        sim.settle();
        for v in 0..8usize {
            let bits = bits_of(v, 3);
            let want: Vec<Option<bool>> = pla.spec().eval(&bits).into_iter().map(Some).collect();
            assert_eq!(evaluate(&mut sim, &pla, &bits), want, "x={bits:?}");
        }
    }

    #[test]
    fn random_program_matches_model_exhaustively() {
        let pla = Pla::new(PlaSpec::random(4, 6, 3, 850_715));
        let mut sim = LogicSim::new(pla.network());
        sim.settle();
        for v in 0..16usize {
            let bits = bits_of(v, 4);
            let want: Vec<Option<bool>> = pla.spec().eval(&bits).into_iter().map(Some).collect();
            assert_eq!(evaluate(&mut sim, &pla, &bits), want, "x={bits:?}");
        }
    }

    #[test]
    fn random_spec_is_reproducible_and_nondegenerate() {
        let a = PlaSpec::random(5, 8, 4, 7);
        let b = PlaSpec::random(5, 8, 4, 7);
        assert_eq!(a, b, "same seed, same programming");
        let c = PlaSpec::random(5, 8, 4, 8);
        assert_ne!(a, c, "different seeds differ");
        assert!(a
            .and_plane
            .iter()
            .all(|row| row.iter().any(Option::is_some)));
        assert!(a.or_plane.iter().all(|row| row.iter().any(|&s| s)));
        a.validate().expect("random specs validate");
    }

    #[test]
    fn validate_rejects_ragged_planes() {
        let spec = PlaSpec {
            inputs: 2,
            and_plane: vec![vec![Some(true)]],
            or_plane: vec![vec![true]],
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn products_stay_precharged_between_cycles() {
        let pla = Pla::new(PlaSpec::random(3, 4, 2, 1));
        let mut sim = LogicSim::new(pla.network());
        sim.settle();
        let io = pla.io();
        sim.set_input(io.phi1, Logic::H);
        sim.settle();
        sim.set_input(io.phi1, Logic::L);
        sim.settle();
        for &p in pla.product_lines() {
            assert_eq!(sim.get(p), Logic::H, "precharge holds on the bus node");
        }
    }
}
