//! A small register file — the paper's conclusion names register
//! arrays as a typical target for fault-directed test development.
//!
//! `W` words of `B` bits, one write port and one read port, built from
//! dynamic storage cells behind pass transistors with a NOR-decoded
//! word select. Level-sensitive: while `WR` is high the addressed word
//! follows `DIN`; read data appears on precharge-free static outputs
//! (buffered inverter pairs), so unlike the RAM every bit is directly
//! observable — a deliberately contrasting observability profile for
//! experiments.

use crate::cells::Cells;
use crate::decoder::nor_decoder;
use fmossim_netlist::{Logic, Network, NetworkStats, NodeId};

/// Pin map of a [`RegisterFile`].
#[derive(Clone, Debug)]
pub struct RegisterFileIo {
    /// Write strobe (level sensitive).
    pub wr: NodeId,
    /// Data inputs, one per bit.
    pub din: Vec<NodeId>,
    /// Address pins (LSB first), shared by read and write.
    pub addr: Vec<NodeId>,
    /// Data outputs, one per bit.
    pub dout: Vec<NodeId>,
}

/// A W-word × B-bit register file.
#[derive(Clone, Debug)]
pub struct RegisterFile {
    net: Network,
    words: usize,
    bits: usize,
    io: RegisterFileIo,
    cells: Vec<Vec<NodeId>>,
}

impl RegisterFile {
    /// Builds a `words × bits` register file. `words` must be a power
    /// of two ≥ 2; `bits` ≥ 1.
    ///
    /// # Panics
    ///
    /// Panics on invalid dimensions.
    #[must_use]
    pub fn new(words: usize, bits: usize) -> Self {
        assert!(
            words.is_power_of_two() && words >= 2,
            "words must be a power of two >= 2"
        );
        assert!(bits >= 1, "bits must be >= 1");
        let abits = words.trailing_zeros() as usize;
        let mut net = Network::new();
        let mut c = Cells::new(&mut net);

        let wr = c.input("WR", Logic::L);
        let din: Vec<NodeId> = (0..bits)
            .map(|b| c.input(&format!("DIN{b}"), Logic::L))
            .collect();
        let addr: Vec<NodeId> = (0..abits)
            .map(|i| c.input(&format!("A{i}"), Logic::L))
            .collect();
        let acomp: Vec<NodeId> = addr
            .iter()
            .enumerate()
            .map(|(i, &a)| c.inv(&format!("AB{i}"), a))
            .collect();
        let atrue: Vec<NodeId> = acomp
            .iter()
            .enumerate()
            .map(|(i, &ab)| c.inv(&format!("AT{i}"), ab))
            .collect();
        let word_sel = nor_decoder(&mut c, "W", &atrue, &acomp);

        // Write-qualified selects.
        let wsel: Vec<NodeId> = word_sel
            .iter()
            .enumerate()
            .map(|(w, &sel)| c.and2(&format!("WS{w}"), sel, wr))
            .collect();

        // Cells and read path: per bit, a shared read bus pulled by the
        // selected word's cell through a select pass transistor.
        let mut cells_nodes: Vec<Vec<NodeId>> = vec![Vec::new(); words];
        let mut dout = Vec::with_capacity(bits);
        #[allow(clippy::needless_range_loop)] // `b` also names cells and buses
        for b in 0..bits {
            let rbus = c.bus(&format!("RB{b}"));
            for (w, row) in cells_nodes.iter_mut().enumerate() {
                let s = c.node(&format!("C{w}_{b}"));
                c.pass(wsel[w], din[b], s);
                // Read: inverter per cell drives through a select pass.
                let sn = c.inv(&format!("CN{w}_{b}"), s);
                c.pass(word_sel[w], sn, rbus);
                row.push(s);
            }
            // rbus carries the complement; invert and buffer.
            dout.push(c.inv(&format!("DOUT{b}"), rbus));
        }

        let io = RegisterFileIo {
            wr,
            din,
            addr,
            dout,
        };
        RegisterFile {
            net,
            words,
            bits,
            io,
            cells: cells_nodes,
        }
    }

    /// The generated network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The pin map.
    #[must_use]
    pub fn io(&self) -> &RegisterFileIo {
        &self.io
    }

    /// Word count.
    #[must_use]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Bits per word.
    #[must_use]
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The storage node of bit `b` of word `w`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn cell(&self, w: usize, b: usize) -> NodeId {
        self.cells[w][b]
    }

    /// All data outputs (every bit is observable).
    #[must_use]
    pub fn observed_outputs(&self) -> &[NodeId] {
        &self.io.dout
    }

    /// Address assignments for word `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w >= words()`.
    #[must_use]
    pub fn addr_assignments(&self, w: usize) -> Vec<(NodeId, Logic)> {
        assert!(w < self.words, "word out of range");
        self.io
            .addr
            .iter()
            .enumerate()
            .map(|(b, &a)| (a, Logic::from_bool((w >> b) & 1 == 1)))
            .collect()
    }

    /// Summary statistics.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        NetworkStats::of(&self.net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_switch::LogicSim;

    fn write(sim: &mut LogicSim<'_>, rf: &RegisterFile, w: usize, value: u32) {
        for (n, v) in rf.addr_assignments(w) {
            sim.set_input(n, v);
        }
        for (b, &d) in rf.io().din.iter().enumerate() {
            sim.set_input(d, Logic::from_bool((value >> b) & 1 == 1));
        }
        sim.settle();
        sim.set_input(rf.io().wr, Logic::H);
        sim.settle();
        sim.set_input(rf.io().wr, Logic::L);
        sim.settle();
    }

    fn read(sim: &mut LogicSim<'_>, rf: &RegisterFile, w: usize) -> Option<u32> {
        for (n, v) in rf.addr_assignments(w) {
            sim.set_input(n, v);
        }
        sim.settle();
        let mut value = 0;
        for (b, &q) in rf.io().dout.iter().enumerate() {
            match sim.get(q).to_bool() {
                Some(true) => value |= 1 << b,
                Some(false) => {}
                None => return None,
            }
        }
        Some(value)
    }

    #[test]
    fn write_read_all_words() {
        let rf = RegisterFile::new(4, 4);
        let mut sim = LogicSim::new(rf.network());
        sim.settle();
        for w in 0..4 {
            write(&mut sim, &rf, w, (w as u32 * 5) & 0xF);
        }
        for w in 0..4 {
            assert_eq!(
                read(&mut sim, &rf, w),
                Some((w as u32 * 5) & 0xF),
                "word {w}"
            );
        }
    }

    #[test]
    fn overwrite_changes_only_target_word() {
        let rf = RegisterFile::new(4, 2);
        let mut sim = LogicSim::new(rf.network());
        sim.settle();
        write(&mut sim, &rf, 0, 0b11);
        write(&mut sim, &rf, 1, 0b01);
        write(&mut sim, &rf, 0, 0b00);
        assert_eq!(read(&mut sim, &rf, 0), Some(0b00));
        assert_eq!(read(&mut sim, &rf, 1), Some(0b01));
    }

    #[test]
    fn unwritten_word_reads_x() {
        let rf = RegisterFile::new(4, 2);
        let mut sim = LogicSim::new(rf.network());
        sim.settle();
        write(&mut sim, &rf, 2, 0b10);
        assert_eq!(read(&mut sim, &rf, 3), None, "uninitialized word is X");
    }

    #[test]
    fn every_bit_is_observable() {
        let rf = RegisterFile::new(2, 3);
        assert_eq!(rf.observed_outputs().len(), 3);
        assert!(rf.stats().transistors > 0);
        assert_eq!(rf.words(), 2);
        assert_eq!(rf.bits(), 3);
    }
}
