//! A ripple-carry adder built from nMOS gates — the "small section of
//! an integrated circuit (such as an ALU)" use case from the paper's
//! conclusion. Fully combinational, every sum bit observable; a
//! contrast to the RAM's sequential, single-output structure.

use crate::cells::Cells;
use fmossim_netlist::{Logic, Network, NetworkStats, NodeId};

/// Pin map of a [`RippleAdder`].
#[derive(Clone, Debug)]
pub struct RippleAdderIo {
    /// Operand A, LSB first.
    pub a: Vec<NodeId>,
    /// Operand B, LSB first.
    pub b: Vec<NodeId>,
    /// Carry input into bit 0.
    pub cin: NodeId,
    /// Sum bits, LSB first.
    pub sum: Vec<NodeId>,
    /// Carry out of the last bit.
    pub cout: NodeId,
}

/// An N-bit ripple-carry adder.
///
/// Per bit: `p = NOR(a, b)`, `g = NOR(ab', a'b)`-style nMOS gate
/// network computing `sum = a ⊕ b ⊕ c` and `carry = maj(a, b, c)` from
/// NOR/NAND/inverter cells (2 × XOR via NOR trees plus a majority
/// gate).
#[derive(Clone, Debug)]
pub struct RippleAdder {
    net: Network,
    bits: usize,
    io: RippleAdderIo,
}

impl RippleAdder {
    /// Builds an `bits`-wide adder (`bits >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    #[must_use]
    pub fn new(bits: usize) -> Self {
        assert!(bits >= 1, "adder needs at least one bit");
        let mut net = Network::new();
        let mut c = Cells::new(&mut net);
        let a: Vec<NodeId> = (0..bits)
            .map(|i| c.input(&format!("A{i}"), Logic::L))
            .collect();
        let b: Vec<NodeId> = (0..bits)
            .map(|i| c.input(&format!("B{i}"), Logic::L))
            .collect();
        let cin = c.input("CIN", Logic::L);

        let mut carry = cin;
        let mut sum = Vec::with_capacity(bits);
        for i in 0..bits {
            let (s, cout) = full_adder(&mut c, &format!("FA{i}"), a[i], b[i], carry);
            sum.push(s);
            carry = cout;
        }
        let io = RippleAdderIo {
            a,
            b,
            cin,
            sum,
            cout: carry,
        };
        RippleAdder { net, bits, io }
    }

    /// The generated network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The pin map.
    #[must_use]
    pub fn io(&self) -> &RippleAdderIo {
        &self.io
    }

    /// Operand width.
    #[must_use]
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// All observable outputs: the sum bits then the carry out.
    #[must_use]
    pub fn observed_outputs(&self) -> Vec<NodeId> {
        let mut v = self.io.sum.clone();
        v.push(self.io.cout);
        v
    }

    /// Input assignments encoding `a + b + cin`.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit in the adder width.
    #[must_use]
    pub fn operand_assignments(&self, a: u64, b: u64, cin: bool) -> Vec<(NodeId, Logic)> {
        assert!(
            a < (1 << self.bits) && b < (1 << self.bits),
            "operand too wide"
        );
        let mut v = Vec::with_capacity(2 * self.bits + 1);
        for i in 0..self.bits {
            v.push((self.io.a[i], Logic::from_bool((a >> i) & 1 == 1)));
            v.push((self.io.b[i], Logic::from_bool((b >> i) & 1 == 1)));
        }
        v.push((self.io.cin, Logic::from_bool(cin)));
        v
    }

    /// Summary statistics.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        NetworkStats::of(&self.net)
    }
}

/// One full-adder slice from NOR/NAND/inverter cells:
/// `sum = a⊕b⊕c`, `cout = ab + bc + ca` (majority). Shared with the
/// ALU datapath, which embeds the same slice behind its result mux.
pub(crate) fn full_adder(
    c: &mut Cells<'_>,
    name: &str,
    a: NodeId,
    b: NodeId,
    cin: NodeId,
) -> (NodeId, NodeId) {
    // XOR via NOR network: x = a⊕b = NOR(NOR(a,b), AND(a,b)).
    let nab = c.nor(&format!("{name}.nab"), &[a, b]);
    let aab = c.and2(&format!("{name}.aab"), a, b);
    let x = c.nor(&format!("{name}.x"), &[nab, aab]);
    // sum = x⊕cin, same structure.
    let nxc = c.nor(&format!("{name}.nxc"), &[x, cin]);
    let axc = c.and2(&format!("{name}.axc"), x, cin);
    let sum = c.nor(&format!("{name}.sum"), &[nxc, axc]);
    // cout = ab + cin·(a⊕b): NOR-invert form.
    let cx = c.and2(&format!("{name}.cx"), cin, x);
    let ncarry = c.nor(&format!("{name}.nc"), &[aab, cx]);
    let cout = c.inv(&format!("{name}.cout"), ncarry);
    (sum, cout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmossim_switch::LogicSim;

    fn compute(adder: &RippleAdder, sim: &mut LogicSim<'_>, a: u64, b: u64, cin: bool) -> u64 {
        for (n, v) in adder.operand_assignments(a, b, cin) {
            sim.set_input(n, v);
        }
        sim.settle();
        let mut out = 0u64;
        for (i, &s) in adder.io().sum.iter().enumerate() {
            if sim.get(s) == Logic::H {
                out |= 1 << i;
            } else {
                assert_eq!(sim.get(s), Logic::L, "definite sum bit {i}");
            }
        }
        if sim.get(adder.io().cout) == Logic::H {
            out |= 1 << adder.bits();
        }
        out
    }

    #[test]
    fn one_bit_exhaustive() {
        let adder = RippleAdder::new(1);
        let mut sim = LogicSim::new(adder.network());
        sim.settle();
        for a in 0..2u64 {
            for b in 0..2u64 {
                for cin in [false, true] {
                    assert_eq!(
                        compute(&adder, &mut sim, a, b, cin),
                        a + b + u64::from(cin),
                        "{a}+{b}+{cin}"
                    );
                }
            }
        }
    }

    #[test]
    fn four_bit_exhaustive() {
        let adder = RippleAdder::new(4);
        let mut sim = LogicSim::new(adder.network());
        sim.settle();
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(compute(&adder, &mut sim, a, b, false), a + b, "{a}+{b}");
            }
        }
    }

    #[test]
    fn carry_ripples_full_length() {
        let adder = RippleAdder::new(8);
        let mut sim = LogicSim::new(adder.network());
        sim.settle();
        // 0xFF + 1 ripples a carry through every stage.
        assert_eq!(compute(&adder, &mut sim, 0xFF, 0, true), 0x100);
        assert_eq!(compute(&adder, &mut sim, 0xAA, 0x55, false), 0xFF);
        assert_eq!(compute(&adder, &mut sim, 0xAB, 0x55, false), 0x100);
    }

    #[test]
    fn x_operand_gives_x_sum_where_it_matters() {
        let adder = RippleAdder::new(2);
        let mut sim = LogicSim::new(adder.network());
        sim.settle();
        for (n, v) in adder.operand_assignments(0, 0, false) {
            sim.set_input(n, v);
        }
        sim.set_input(adder.io().a[0], Logic::X);
        sim.settle();
        assert_eq!(sim.get(adder.io().sum[0]), Logic::X, "sum bit 0 unknown");
        // With B=0, cin=0 the X cannot generate a carry into bit 1…
        // a⊕b with a=X: carry = a·b = 0 definite.
        assert_eq!(sim.get(adder.io().sum[1]), Logic::L, "no carry possible");
    }

    #[test]
    fn stats_scale_linearly() {
        let s2 = RippleAdder::new(2).stats();
        let s8 = RippleAdder::new(8).stats();
        assert!(s8.transistors > 3 * s2.transistors);
        assert!(s8.transistors < 5 * s2.transistors);
    }
}
