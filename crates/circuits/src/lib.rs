//! MOS circuit generators for the FMOSSIM reproduction.
//!
//! The DAC-85 paper evaluates FMOSSIM on two dynamic RAM circuits —
//! RAM64 (378 transistors, 229 nodes) and RAM256 (1148 transistors,
//! 695 nodes) — chosen because "they could easily be scaled in size"
//! and "could be fully tested by test sequences consisting of special
//! tests of the control and peripheral logic followed by a marching
//! test of the memory array". The pattern-count arithmetic of the paper
//! (407 = 7 + 40 + 40 + 320 for RAM64, 1447 = 7 + 80 + 80 + 1280 for
//! RAM256, with a 5·N march) identifies the organisations as 8×8 and
//! 16×16 single-bit arrays.
//!
//! This crate rebuilds those circuits from scratch in the same
//! technology style (nMOS, depletion pull-up loads, two-phase clocks):
//!
//! * [`Cells`] — an nMOS cell library: ratioed inverters/NAND/NOR,
//!   pass transistors, precharge devices, dynamic latches.
//! * [`nor_decoder`] — NOR-based address decoders.
//! * [`Ram`] — the parameterised 3-transistor dynamic RAM with row and
//!   column decoders, precharged read bit lines, write bit lines,
//!   pass-transistor column multiplexers, data-in latch, sense
//!   inverter and dynamic output latch: `Ram::new(8, 8)` is RAM64,
//!   `Ram::new(16, 16)` is RAM256.
//! * [`RegisterFile`] — a small register array (the paper's conclusion
//!   names register arrays as a typical use case), used by the examples
//!   and extra tests.
//!
//! Beyond the paper's two RAMs, the **benchmark zoo** adds workloads
//! with deliberately different structure and observability profiles,
//! so the evaluation suite (`evalsuite` in `fmossim-bench`) measures
//! the simulator across the spread of MOS circuit styles the paper's
//! methodology calls for:
//!
//! * [`ShiftRegister`] — a two-phase dynamic master/slave pipeline:
//!   pure sequential dataflow, every stage observable.
//! * [`RippleCounter`] — a clocked binary counter with a rippling
//!   carry-enable chain: deep state feedback, every bit observable.
//! * [`Pla`] — a dynamic NOR–NOR PLA with precharged AND/OR planes on
//!   a three-phase clock, programmable via [`PlaSpec`] (including
//!   seeded random programmings).
//! * [`AluDatapath`] — the adder slice plus AND/OR/XOR blocks behind a
//!   pass-gate result mux: combinational, with opcode-dependent fault
//!   masking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adder;
mod alu;
mod cells;
mod counter;
mod decoder;
mod pla;
mod ram;
mod regfile;
mod shift;

pub use adder::{RippleAdder, RippleAdderIo};
pub use alu::{AluDatapath, AluIo, AluOp, ALU_OPS};
pub use cells::Cells;
pub use counter::{RippleCounter, RippleCounterIo};
pub use decoder::nor_decoder;
pub use pla::{Pla, PlaIo, PlaSpec};
pub use ram::{Ram, RamIo};
pub use regfile::{RegisterFile, RegisterFileIo};
pub use shift::{ShiftRegister, ShiftRegisterIo};
