//! Detection records and run reports — the measurements behind the
//! paper's figures.

use fmossim_faults::FaultId;
use fmossim_netlist::Logic;

/// When is a good/faulty output difference a *detection*?
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DetectionPolicy {
    /// Any difference on an observed output detects the fault,
    /// including `X` vs. definite — the paper's rule ("produces a
    /// result on the output data pin different than the good circuit").
    #[default]
    AnyDifference,
    /// Only definite, opposite values (`0` vs `1`) detect; `X`
    /// differences are recorded as *potential* detections but the
    /// circuit keeps simulating.
    DefiniteOnly,
}

/// One fault detection event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Detection {
    /// Which fault was detected.
    pub fault: FaultId,
    /// Zero-based index of the detecting pattern.
    pub pattern: usize,
    /// Zero-based phase index within the pattern.
    pub phase: usize,
    /// The good circuit's output value at the strobe.
    pub good: Logic,
    /// The faulty circuit's output value at the strobe.
    pub faulty: Logic,
}

impl Detection {
    /// True iff the difference involved an `X` (a *potential* rather
    /// than definite detection).
    #[must_use]
    pub fn is_potential(&self) -> bool {
        !(self.good.is_definite() && self.faulty.is_definite())
    }

    /// The canonical textual key of this detection —
    /// `f<fault> p<pattern> ph<phase> <good>-><faulty>` — the single
    /// definition of "the same detection" that the cross-backend
    /// conformance tests (`tests/zoo_equivalence.rs`,
    /// `tests/adaptive_equivalence.rs`, `tests/replay_equivalence.rs`)
    /// and the `evalsuite` parity fingerprint all compare on.
    #[must_use]
    pub fn canonical_key(&self) -> String {
        format!(
            "f{} p{} ph{} {}->{}",
            self.fault.index(),
            self.pattern,
            self.phase,
            self.good,
            self.faulty
        )
    }
}

/// Per-pattern measurements, mirroring the two curves of the paper's
/// Figures 1 and 2.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PatternStats {
    /// Wall-clock seconds spent simulating this pattern (all phases,
    /// good + all live faulty circuits).
    pub seconds: f64,
    /// Faults detected during this pattern.
    pub detected: usize,
    /// Faulty circuits alive when the pattern started.
    pub live_before: usize,
    /// Vicinities solved for the good circuit.
    pub good_groups: usize,
    /// Vicinities solved across all faulty circuits.
    pub faulty_groups: usize,
    /// Faulty circuit settles executed (events processed).
    pub circuit_settles: usize,
    /// True iff any settle (good or faulty) hit the oscillation cap and
    /// was X-damped during this pattern.
    pub damped: bool,
}

impl PatternStats {
    /// Folds another shard's statistics for the same pattern into this
    /// one: counters add up (`seconds` becomes aggregate CPU seconds
    /// across shards), `damped` ors.
    pub fn absorb(&mut self, other: &PatternStats) {
        self.seconds += other.seconds;
        self.detected += other.detected;
        self.live_before += other.live_before;
        self.good_groups += other.good_groups;
        self.faulty_groups += other.faulty_groups;
        self.circuit_settles += other.circuit_settles;
        self.damped |= other.damped;
    }
}

/// The result of a full concurrent fault-simulation run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Per-pattern statistics, in pattern order.
    pub patterns: Vec<PatternStats>,
    /// All detections, in occurrence order.
    pub detections: Vec<Detection>,
    /// Total number of faults simulated.
    pub num_faults: usize,
    /// Total wall-clock seconds.
    pub total_seconds: f64,
}

impl RunReport {
    /// Number of faults detected.
    #[must_use]
    pub fn detected(&self) -> usize {
        self.detections.len()
    }

    /// Fault coverage in `[0, 1]` (detected / simulated).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.num_faults == 0 {
            0.0
        } else {
            self.detected() as f64 / self.num_faults as f64
        }
    }

    /// The rising curve of Figures 1/2: cumulative detections after
    /// each pattern.
    #[must_use]
    pub fn cumulative_detections(&self) -> Vec<usize> {
        let mut acc = 0;
        self.patterns
            .iter()
            .map(|p| {
                acc += p.detected;
                acc
            })
            .collect()
    }

    /// The falling curve of Figures 1/2: seconds per pattern.
    #[must_use]
    pub fn seconds_per_pattern(&self) -> Vec<f64> {
        self.patterns.iter().map(|p| p.seconds).collect()
    }

    /// Seconds consumed by the first `head` patterns as a fraction of
    /// the total (the paper: "71% of the time consumed during the first
    /// 87 patterns").
    #[must_use]
    pub fn head_time_fraction(&self, head: usize) -> f64 {
        if self.total_seconds == 0.0 {
            return 0.0;
        }
        let head_secs: f64 = self.patterns.iter().take(head).map(|p| p.seconds).sum();
        head_secs / self.total_seconds
    }

    /// Rewrites every detection's fault id through `map` — used by
    /// shard runners to translate shard-local ids (fault `k` of the
    /// shard universe) back to ids in the parent universe before
    /// merging.
    pub fn relabel_faults(&mut self, map: impl Fn(FaultId) -> FaultId) {
        for d in &mut self.detections {
            d.fault = map(d.fault);
        }
    }

    /// Folds per-shard reports of the *same pattern sequence* over
    /// disjoint fault sets into one report:
    ///
    /// * `num_faults` adds up (the shards partition one universe);
    /// * per-pattern statistics are absorbed element-wise
    ///   ([`PatternStats::absorb`] — `seconds` becomes aggregate CPU
    ///   seconds across shards);
    /// * detections are concatenated and canonically ordered by
    ///   `(pattern, phase, fault)`, so the merged detection list is
    ///   independent of how the universe was sharded;
    /// * `total_seconds` is the maximum over shards (the makespan when
    ///   shards run concurrently); drivers that measured real
    ///   wall-clock time should overwrite it.
    ///
    /// Callers must [`RunReport::relabel_faults`] first if shard
    /// reports carry shard-local ids.
    #[must_use]
    pub fn merge(reports: impl IntoIterator<Item = RunReport>) -> RunReport {
        let mut merged = RunReport::default();
        for rep in reports {
            merged.num_faults += rep.num_faults;
            if merged.patterns.len() < rep.patterns.len() {
                merged
                    .patterns
                    .resize(rep.patterns.len(), PatternStats::default());
            }
            for (acc, p) in merged.patterns.iter_mut().zip(&rep.patterns) {
                acc.absorb(p);
            }
            merged.detections.extend(rep.detections);
            merged.total_seconds = merged.total_seconds.max(rep.total_seconds);
        }
        merged
            .detections
            .sort_by_key(|d| (d.pattern, d.phase, d.fault.index()));
        merged
    }

    /// For each fault: the number of patterns until detection, or
    /// `patterns.len()` if never detected — the quantity the paper's
    /// serial-time estimator integrates.
    #[must_use]
    pub fn patterns_to_detect(&self) -> Vec<usize> {
        let total = self.patterns.len();
        let mut out = vec![total; self.num_faults];
        for d in &self.detections {
            out[d.fault.index()] = d.pattern + 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            patterns: vec![
                PatternStats {
                    seconds: 3.0,
                    detected: 2,
                    live_before: 4,
                    ..PatternStats::default()
                },
                PatternStats {
                    seconds: 1.0,
                    detected: 0,
                    live_before: 2,
                    ..PatternStats::default()
                },
                PatternStats {
                    seconds: 1.0,
                    detected: 1,
                    live_before: 2,
                    ..PatternStats::default()
                },
            ],
            detections: vec![
                Detection {
                    fault: FaultId(0),
                    pattern: 0,
                    phase: 5,
                    good: Logic::H,
                    faulty: Logic::L,
                },
                Detection {
                    fault: FaultId(2),
                    pattern: 0,
                    phase: 5,
                    good: Logic::H,
                    faulty: Logic::X,
                },
                Detection {
                    fault: FaultId(1),
                    pattern: 2,
                    phase: 5,
                    good: Logic::L,
                    faulty: Logic::H,
                },
            ],
            num_faults: 4,
            total_seconds: 5.0,
        }
    }

    #[test]
    fn aggregates() {
        let r = report();
        assert_eq!(r.detected(), 3);
        assert!((r.coverage() - 0.75).abs() < 1e-12);
        assert_eq!(r.cumulative_detections(), vec![2, 2, 3]);
        assert_eq!(r.seconds_per_pattern(), vec![3.0, 1.0, 1.0]);
        assert!((r.head_time_fraction(1) - 0.6).abs() < 1e-12);
        assert_eq!(r.patterns_to_detect(), vec![1, 3, 1, 3]);
    }

    #[test]
    fn potential_detection_flag() {
        let r = report();
        assert!(!r.detections[0].is_potential());
        assert!(r.detections[1].is_potential());
    }

    #[test]
    fn merge_folds_shard_reports() {
        let mut a = report();
        // Pretend `a` came from a shard whose local faults 0..3 are
        // global faults 4..7.
        let map = [FaultId(4), FaultId(5), FaultId(6), FaultId(7)];
        a.relabel_faults(|f| map[f.index()]);
        let b = report();
        let merged = RunReport::merge(vec![b, a]);
        assert_eq!(merged.num_faults, 8);
        assert_eq!(merged.detected(), 6);
        assert!((merged.coverage() - 0.75).abs() < 1e-12);
        assert_eq!(merged.patterns.len(), 3);
        assert_eq!(merged.patterns[0].detected, 4);
        assert!((merged.patterns[0].seconds - 6.0).abs() < 1e-12);
        assert_eq!(merged.patterns[0].live_before, 8);
        assert!((merged.total_seconds - 5.0).abs() < 1e-12, "max, not sum");
        // Canonical order: (pattern, phase, fault id).
        let order: Vec<(usize, usize, usize)> = merged
            .detections
            .iter()
            .map(|d| (d.pattern, d.phase, d.fault.index()))
            .collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
        assert_eq!(merged.cumulative_detections(), vec![4, 4, 6]);
    }

    /// Shards complete in scheduling-dependent order under
    /// `run_streaming`; the driver sorts by shard index before
    /// merging, but `merge` itself must already be input-order
    /// invariant for everything the reports promise — canonical
    /// detections, integer counters, and (for exactly representable
    /// seconds) the per-pattern sums. Regression guard for the
    /// relabel-then-merge pipeline.
    #[test]
    fn merge_is_invariant_under_shard_completion_order() {
        // Three disjoint "shards": local reports relabelled to global
        // ids 0..4, 4..8, 8..12, with power-of-two seconds so float
        // sums are exact under any association.
        let shard = |base: u32, secs: f64| {
            let mut r = report();
            r.relabel_faults(|f| FaultId(base + f.0));
            for p in &mut r.patterns {
                p.seconds = secs;
            }
            r
        };
        let shards = [shard(0, 0.25), shard(4, 0.5), shard(8, 2.0)];
        let in_order = RunReport::merge(shards.clone());
        for permutation in [[2, 1, 0], [1, 2, 0], [0, 2, 1], [2, 0, 1], [1, 0, 2]] {
            let scrambled = RunReport::merge(permutation.map(|i| shards[i].clone()));
            assert_eq!(
                scrambled, in_order,
                "merge depends on completion order: {permutation:?}"
            );
        }
        // The merged detections really are canonical and globally
        // relabelled: strictly sorted, ids spanning every shard.
        let keys: Vec<_> = in_order
            .detections
            .iter()
            .map(|d| (d.pattern, d.phase, d.fault.index()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted, "canonical order with no duplicates");
        assert!(in_order.detections.iter().any(|d| d.fault.index() >= 8));
        assert_eq!(in_order.num_faults, 12);
    }

    #[test]
    fn merge_pads_shorter_pattern_lists() {
        let a = report();
        let b = RunReport {
            patterns: vec![PatternStats {
                seconds: 1.0,
                ..PatternStats::default()
            }],
            num_faults: 1,
            ..RunReport::default()
        };
        let merged = RunReport::merge(vec![b, a]);
        assert_eq!(merged.patterns.len(), 3);
        assert!((merged.patterns[0].seconds - 4.0).abs() < 1e-12);
        assert!((merged.patterns[2].seconds - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report() {
        let r = RunReport::default();
        assert_eq!(r.detected(), 0);
        assert_eq!(r.coverage(), 0.0);
        assert_eq!(r.head_time_fraction(5), 0.0);
    }
}
