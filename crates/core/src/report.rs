//! Detection records and run reports — the measurements behind the
//! paper's figures.

use fmossim_faults::FaultId;
use fmossim_netlist::Logic;

/// When is a good/faulty output difference a *detection*?
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DetectionPolicy {
    /// Any difference on an observed output detects the fault,
    /// including `X` vs. definite — the paper's rule ("produces a
    /// result on the output data pin different than the good circuit").
    #[default]
    AnyDifference,
    /// Only definite, opposite values (`0` vs `1`) detect; `X`
    /// differences are recorded as *potential* detections but the
    /// circuit keeps simulating.
    DefiniteOnly,
}

/// One fault detection event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Detection {
    /// Which fault was detected.
    pub fault: FaultId,
    /// Zero-based index of the detecting pattern.
    pub pattern: usize,
    /// Zero-based phase index within the pattern.
    pub phase: usize,
    /// The good circuit's output value at the strobe.
    pub good: Logic,
    /// The faulty circuit's output value at the strobe.
    pub faulty: Logic,
}

impl Detection {
    /// True iff the difference involved an `X` (a *potential* rather
    /// than definite detection).
    #[must_use]
    pub fn is_potential(&self) -> bool {
        !(self.good.is_definite() && self.faulty.is_definite())
    }
}

/// Per-pattern measurements, mirroring the two curves of the paper's
/// Figures 1 and 2.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PatternStats {
    /// Wall-clock seconds spent simulating this pattern (all phases,
    /// good + all live faulty circuits).
    pub seconds: f64,
    /// Faults detected during this pattern.
    pub detected: usize,
    /// Faulty circuits alive when the pattern started.
    pub live_before: usize,
    /// Vicinities solved for the good circuit.
    pub good_groups: usize,
    /// Vicinities solved across all faulty circuits.
    pub faulty_groups: usize,
    /// Faulty circuit settles executed (events processed).
    pub circuit_settles: usize,
    /// True iff any settle (good or faulty) hit the oscillation cap and
    /// was X-damped during this pattern.
    pub damped: bool,
}

/// The result of a full concurrent fault-simulation run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Per-pattern statistics, in pattern order.
    pub patterns: Vec<PatternStats>,
    /// All detections, in occurrence order.
    pub detections: Vec<Detection>,
    /// Total number of faults simulated.
    pub num_faults: usize,
    /// Total wall-clock seconds.
    pub total_seconds: f64,
}

impl RunReport {
    /// Number of faults detected.
    #[must_use]
    pub fn detected(&self) -> usize {
        self.detections.len()
    }

    /// Fault coverage in `[0, 1]` (detected / simulated).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.num_faults == 0 {
            0.0
        } else {
            self.detected() as f64 / self.num_faults as f64
        }
    }

    /// The rising curve of Figures 1/2: cumulative detections after
    /// each pattern.
    #[must_use]
    pub fn cumulative_detections(&self) -> Vec<usize> {
        let mut acc = 0;
        self.patterns
            .iter()
            .map(|p| {
                acc += p.detected;
                acc
            })
            .collect()
    }

    /// The falling curve of Figures 1/2: seconds per pattern.
    #[must_use]
    pub fn seconds_per_pattern(&self) -> Vec<f64> {
        self.patterns.iter().map(|p| p.seconds).collect()
    }

    /// Seconds consumed by the first `head` patterns as a fraction of
    /// the total (the paper: "71% of the time consumed during the first
    /// 87 patterns").
    #[must_use]
    pub fn head_time_fraction(&self, head: usize) -> f64 {
        if self.total_seconds == 0.0 {
            return 0.0;
        }
        let head_secs: f64 = self.patterns.iter().take(head).map(|p| p.seconds).sum();
        head_secs / self.total_seconds
    }

    /// For each fault: the number of patterns until detection, or
    /// `patterns.len()` if never detected — the quantity the paper's
    /// serial-time estimator integrates.
    #[must_use]
    pub fn patterns_to_detect(&self) -> Vec<usize> {
        let total = self.patterns.len();
        let mut out = vec![total; self.num_faults];
        for d in &self.detections {
            out[d.fault.index()] = d.pattern + 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            patterns: vec![
                PatternStats {
                    seconds: 3.0,
                    detected: 2,
                    live_before: 4,
                    ..PatternStats::default()
                },
                PatternStats {
                    seconds: 1.0,
                    detected: 0,
                    live_before: 2,
                    ..PatternStats::default()
                },
                PatternStats {
                    seconds: 1.0,
                    detected: 1,
                    live_before: 2,
                    ..PatternStats::default()
                },
            ],
            detections: vec![
                Detection {
                    fault: FaultId(0),
                    pattern: 0,
                    phase: 5,
                    good: Logic::H,
                    faulty: Logic::L,
                },
                Detection {
                    fault: FaultId(2),
                    pattern: 0,
                    phase: 5,
                    good: Logic::H,
                    faulty: Logic::X,
                },
                Detection {
                    fault: FaultId(1),
                    pattern: 2,
                    phase: 5,
                    good: Logic::L,
                    faulty: Logic::H,
                },
            ],
            num_faults: 4,
            total_seconds: 5.0,
        }
    }

    #[test]
    fn aggregates() {
        let r = report();
        assert_eq!(r.detected(), 3);
        assert!((r.coverage() - 0.75).abs() < 1e-12);
        assert_eq!(r.cumulative_detections(), vec![2, 2, 3]);
        assert_eq!(r.seconds_per_pattern(), vec![3.0, 1.0, 1.0]);
        assert!((r.head_time_fraction(1) - 0.6).abs() < 1e-12);
        assert_eq!(r.patterns_to_detect(), vec![1, 3, 1, 3]);
    }

    #[test]
    fn potential_detection_flag() {
        let r = report();
        assert!(!r.detections[0].is_potential());
        assert!(r.detections[1].is_potential());
    }

    #[test]
    fn empty_report() {
        let r = RunReport::default();
        assert_eq!(r.detected(), 0);
        assert_eq!(r.coverage(), 0.0);
        assert_eq!(r.head_time_fraction(5), 0.0);
    }
}
